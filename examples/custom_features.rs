//! Extending the feature pipeline (§4.4: "more domain-specific features can
//! also be appended to the vector representation of behavioral features").
//!
//! Adds a "session position" feature to the standard four and compares the
//! resulting TS-PPR model against the stock one, plus the paper's Fig. 7
//! single-feature ablations.
//!
//! ```sh
//! cargo run --release --example custom_features
//! ```

use repeat_rec::features::{Feature, FeatureContext};
use repeat_rec::prelude::*;

/// A toy domain feature: how deep into the (synthetic) session the user is,
/// proxied by window fill. In a real deployment this could be time of day,
/// distance to a venue, genre similarity, etc.
struct SessionDepth;

impl Feature for SessionDepth {
    fn name(&self) -> &'static str {
        "SESSION"
    }
    fn value(&self, ctx: &FeatureContext<'_>, _item: ItemId) -> f64 {
        ctx.window.len() as f64 / ctx.window.capacity() as f64
    }
}

fn train_and_score(
    label: &str,
    build: impl Fn() -> FeaturePipeline,
    split: &SplitDataset,
    stats: &TrainStats,
    window: usize,
    omega: usize,
) -> (String, f64) {
    let pipeline = build();
    let training = TrainingSet::build(
        &split.train,
        stats,
        &pipeline,
        &SamplingConfig {
            window,
            omega,
            negatives_per_positive: 10,
            seed: 2,
        },
    );
    let (model, _) = TsPprTrainer::new(
        TsPprConfig::new(split.train.num_users(), split.train.num_items())
            .with_k(16)
            .with_max_sweeps(15),
    )
    .train(&training);
    let rec = TsPprRecommender::new(model, build());
    let res = evaluate(&rec, split, stats, &EvalConfig { window, omega }, 10);
    (label.to_string(), res.maap())
}

fn main() {
    let window = 100;
    let omega = 10;
    let data = GeneratorConfig::gowalla_like(0.008)
        .with_seed(31)
        .generate();
    let data = data.filter_min_train_len(0.7, window);
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, window);
    println!(
        "dataset: {} users, {} events\n",
        data.num_users(),
        data.total_consumptions()
    );

    let mut results = Vec::new();
    results.push(train_and_score(
        "All (IP+IR+RE+DF)",
        FeaturePipeline::standard,
        &split,
        &stats,
        window,
        omega,
    ));
    for removed in ["IP", "IR", "RE", "DF"] {
        results.push(train_and_score(
            &format!("-{removed}"),
            || FeaturePipeline::standard().without(removed),
            &split,
            &stats,
            window,
            omega,
        ));
    }
    results.push(train_and_score(
        "All + SESSION (custom)",
        || FeaturePipeline::standard().with(SessionDepth),
        &split,
        &stats,
        window,
        omega,
    ));

    println!("{:<24} {:>8}", "feature set", "MaAP@10");
    for (label, maap) in &results {
        println!("{label:<24} {maap:>8.4}");
    }
    println!(
        "\n(The Fig. 7 finding — removing IR hurts most — should be visible\n\
         above; the custom feature demonstrates pipeline extensibility.)"
    );
}
