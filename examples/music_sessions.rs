//! Music-session scenario (the paper's Last.fm motivation): a listening
//! service where ~77% of plays are repeats. Trains the full pipeline —
//! STREC decides *whether* the next play will be a repeat, TS-PPR decides
//! *which* track to resurface — and walks one user's live session.
//!
//! ```sh
//! cargo run --release --example music_sessions
//! ```

use repeat_rec::prelude::*;
use repeat_rec::strec::StrecFeatureState;

fn main() {
    let window = 100;
    let omega = 10;
    let data = GeneratorConfig::lastfm_like(0.02)
        .with_users(24)
        .with_seed(99)
        .generate();
    let data = data.filter_min_train_len(0.7, window);
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, window);

    let dstats = DatasetStats::compute(&data, window, 1);
    println!(
        "listening log: {} users, {} tracks, {} plays, {:.1}% repeats",
        dstats.users,
        dstats.items,
        dstats.consumptions,
        dstats.repeat_fraction() * 100.0
    );

    // Gate: will the next play be a repeat at all?
    let strec = StrecClassifier::fit(&split.train, &stats, window, &LassoConfig::default())
        .expect("training examples exist");

    // Ranker: which previously-played track to resurface.
    let pipeline = FeaturePipeline::standard();
    let training = TrainingSet::build(
        &split.train,
        &stats,
        &pipeline,
        &SamplingConfig {
            window,
            omega,
            negatives_per_positive: 10,
            seed: 3,
        },
    );
    let config = TsPprConfig::lastfm_defaults(data.num_users(), data.num_items())
        .with_k(16)
        .with_max_sweeps(15);
    let (model, _) = TsPprTrainer::new(config).train(&training);
    let tsppr = TsPprRecommender::new(model, FeaturePipeline::standard());

    // Walk one user's held-out session live.
    let user = UserId(0);
    let mut win = WindowState::warmed(window, split.train.sequence(user).events());
    let mut state = StrecFeatureState::default();
    println!("\nlive session for {user} (first 15 plays of the test suffix):");
    println!(
        "{:<6} {:<8} {:>14} {:<14} top-3 resurfaced",
        "step", "track", "P(repeat)", "actual"
    );
    for (i, &track) in split
        .test_sequence(user)
        .events()
        .iter()
        .take(15)
        .enumerate()
    {
        let p_repeat = strec.predict_proba(&win, &stats, &state);
        let actual = if win.contains(track) {
            "repeat"
        } else {
            "novel"
        };
        let suggestion = if p_repeat >= 0.5 {
            let ctx = RecContext {
                user,
                window: &win,
                stats: &stats,
                omega,
            };
            format!("{:?}", tsppr.recommend(&ctx, 3))
        } else {
            "- (novel expected)".to_string()
        };
        println!(
            "{:<6} {:<8} {:>13.1}% {:<14} {}",
            i,
            track.to_string(),
            p_repeat * 100.0,
            actual,
            suggestion
        );
        state.observe(win.time(), win.contains(track));
        win.push(track);
    }

    // End-to-end Table-5-style numbers on the full test split.
    let cfg = EvalConfig { window, omega };
    let combined = evaluate_combined(&strec, &tsppr, &split, &stats, &cfg, &[1, 5, 10]);
    println!(
        "\nSTREC accuracy: {:.4}; conditional MaAP@10: {:.4}; end-to-end ≈ {:.4}",
        combined.strec_accuracy(),
        combined.conditional[2].maap(),
        combined.end_to_end_maap(2)
    );
}
