//! Check-in scenario (the paper's Gowalla motivation): a location-based
//! service recommending places to *revisit*. Trains every method in the
//! paper's comparison and prints a Fig. 5-style accuracy table.
//!
//! ```sh
//! cargo run --release --example checkin_rrc
//! ```

use repeat_rec::eval::format_table;
use repeat_rec::prelude::*;

fn main() {
    let window = 100;
    let omega = 10;
    let data = GeneratorConfig::gowalla_like(0.012).with_seed(5).generate();
    let data = data.filter_min_train_len(0.7, window);
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, window);
    println!(
        "check-in log: {} users, {} venues, {} check-ins",
        data.num_users(),
        data.num_items(),
        data.total_consumptions()
    );

    let cfg = EvalConfig { window, omega };
    let ns = [1, 5, 10];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |name: &str, rec: &dyn Recommender| {
        let res = evaluate_multi(rec, &split, &stats, &cfg, &ns);
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", res[0].maap()),
            format!("{:.4}", res[1].maap()),
            format!("{:.4}", res[2].maap()),
            format!("{:.4}", res[2].miap()),
        ]);
    };

    add("Random", &RandomRecommender::default());
    add("Pop", &PopRecommender);
    add("Recency", &RecencyRecommender);

    let dyrc = DyrcTrainer::new(DyrcConfig {
        window,
        omega,
        ..DyrcConfig::default()
    })
    .train(&split.train, &stats);
    add("DYRC", &DyrcRecommender::new(dyrc));

    let fpmc = FpmcTrainer::new(FpmcConfig {
        window,
        omega,
        k: 16,
        max_sweeps: 10,
        ..FpmcConfig::new(data.num_users(), data.num_items())
    })
    .train(&split.train);
    add("FPMC", &FpmcRecommender::new(fpmc));

    match SurvivalRecommender::fit(&split.train, &stats, window, &CoxConfig::default()) {
        Ok(survival) => add("Survival", &survival),
        Err(e) => eprintln!("survival baseline skipped: {e}"),
    }

    let pipeline = FeaturePipeline::standard();
    let training = TrainingSet::build(
        &split.train,
        &stats,
        &pipeline,
        &SamplingConfig {
            window,
            omega,
            negatives_per_positive: 10,
            seed: 11,
        },
    );
    let (model, _) = TsPprTrainer::new(
        TsPprConfig::gowalla_defaults(data.num_users(), data.num_items())
            .with_k(16)
            .with_max_sweeps(20),
    )
    .train(&training);
    add(
        "TS-PPR",
        &TsPprRecommender::new(model, FeaturePipeline::standard()),
    );

    println!(
        "\n{}",
        format_table(&["method", "MaAP@1", "MaAP@5", "MaAP@10", "MiAP@10"], &rows)
    );
}
