//! Survival analysis of reconsumption gaps — the substrate behind the
//! paper's Survival baseline, usable on its own: when will a user return
//! to an item?
//!
//! ```sh
//! cargo run --release --example survival_analysis
//! ```

use repeat_rec::prelude::*;
use repeat_rec::survival::{gap_observations, Exponential, KaplanMeier, Weibull};
use repeat_rec::survival::{CoxConfig, CoxModel};

fn main() {
    let window = 100;
    let data = GeneratorConfig::gowalla_like(0.01).with_seed(3).generate();
    let stats = TrainStats::compute(&data, window);
    let observations = gap_observations(&data, &stats, window);
    let events = observations.iter().filter(|o| o.event).count();
    println!(
        "gap observations: {} total, {} events, {} censored",
        observations.len(),
        events,
        observations.len() - events
    );

    // Nonparametric view: the Kaplan–Meier return curve.
    let km_input: Vec<(f64, bool)> = observations.iter().map(|o| (o.duration, o.event)).collect();
    let km = KaplanMeier::fit(&km_input);
    println!("\nKaplan–Meier P(not yet returned) at selected gaps:");
    for t in [5.0, 10.0, 25.0, 50.0, 100.0, 200.0] {
        println!("  S({t:>5}) = {:.3}", km.survival_at(t));
    }
    if let Some(median) = km.median() {
        println!("  median return gap: {median}");
    }

    // Parametric fits.
    if let Some(exp) = Exponential::fit(&km_input) {
        println!(
            "\nExponential fit: rate λ = {:.4} (mean gap {:.1})",
            exp.rate(),
            exp.mean()
        );
    }
    if let Some(weibull) = Weibull::fit(&km_input) {
        println!(
            "Weibull fit: shape k = {:.3} ({}), scale λ = {:.1}",
            weibull.shape(),
            if weibull.shape() < 1.0 {
                "decreasing hazard: the longer away, the less likely to return"
            } else {
                "increasing hazard"
            },
            weibull.scale()
        );
    }

    // Semi-parametric: Cox proportional hazards with the behavioral
    // covariates of the Survival baseline.
    match CoxModel::fit(&observations, &CoxConfig::default()) {
        Ok(cox) => {
            println!("\nCox proportional hazards (β per covariate):");
            for (name, beta) in repeat_rec::survival::COVARIATE_NAMES.iter().zip(cox.beta()) {
                let direction = if *beta > 0.0 {
                    "faster return"
                } else {
                    "slower return"
                };
                println!("  {name:<12} β = {beta:>8.3}  ({direction})");
            }
            println!(
                "  partial log-likelihood {:.1} after {} Newton iterations",
                cox.log_likelihood(),
                cox.iterations()
            );
            // Compare return probabilities for a high- vs low-quality item.
            let hi = [1.0, 0.8, 0.2, 0.5];
            let lo = [0.1, 0.1, 0.0, 0.0];
            println!(
                "\n  P(returned within 30 steps): high-signal item {:.3}, low-signal item {:.3}",
                1.0 - cox.survival(30.0, &hi),
                1.0 - cox.survival(30.0, &lo)
            );
        }
        Err(e) => println!("Cox fit failed: {e}"),
    }
}
