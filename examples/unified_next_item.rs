//! The full next-item pipeline the paper's conclusion envisions: STREC
//! decides whether the next consumption will be a repeat; TS-PPR ranks the
//! window candidates when it is, and a novel-item TS-PPR (trained per §4.3
//! on first-time consumptions) ranks unseen items when it is not.
//!
//! ```sh
//! cargo run --release --example unified_next_item
//! ```

use repeat_rec::prelude::*;

fn main() {
    let window = 100;
    let omega = 10;
    let data = GeneratorConfig::gowalla_like(0.008)
        .with_seed(77)
        .generate();
    let data = data.filter_min_train_len(0.7, window);
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, window);
    println!(
        "dataset: {} users, {} items, {} events",
        data.num_users(),
        data.num_items(),
        data.total_consumptions()
    );

    // Gate.
    let gate = StrecClassifier::fit(&split.train, &stats, window, &LassoConfig::default())
        .expect("training data yields STREC examples");

    // Repeat-side TS-PPR.
    let repeat_training = TrainingSet::build(
        &split.train,
        &stats,
        &FeaturePipeline::standard(),
        &SamplingConfig {
            window,
            omega,
            negatives_per_positive: 10,
            seed: 5,
        },
    );
    let base_cfg = TsPprConfig::gowalla_defaults(data.num_users(), data.num_items())
        .with_k(16)
        .with_max_sweeps(20);
    let (repeat_model, _) = TsPprTrainer::new(base_cfg.clone()).train(&repeat_training);
    let repeat_rec = TsPprRecommender::new(repeat_model, FeaturePipeline::standard());

    // Novel-side TS-PPR (§4.3): positives are first-time consumptions,
    // negatives sampled from the unconsumed catalogue.
    let novel_training = build_novel_training_set(
        &split.train,
        &stats,
        &FeaturePipeline::standard(),
        &NovelSamplingConfig {
            window,
            negatives_per_positive: 10,
            seed: 6,
            max_attempts: 64,
        },
    );
    let (novel_model, _) = TsPprTrainer::new(base_cfg).train(&novel_training);
    let novel_rec = TsPprRecommender::new(novel_model, FeaturePipeline::standard());

    let cfg = EvalConfig { window, omega };
    let ns = [1, 5, 10];

    // How well does each side do on its own turf?
    let repeat_only = evaluate_multi(&repeat_rec, &split, &stats, &cfg, &ns);
    let novel_only = evaluate_novel(&novel_rec, &split, &stats, &cfg, &ns);
    println!(
        "\nrepeat-side (eligible repeats):  MaAP@1/5/10 = {:.4} / {:.4} / {:.4}",
        repeat_only[0].maap(),
        repeat_only[1].maap(),
        repeat_only[2].maap()
    );
    println!(
        "novel-side  (first-time items):  MaAP@1/5/10 = {:.4} / {:.4} / {:.4}",
        novel_only[0].maap(),
        novel_only[1].maap(),
        novel_only[2].maap()
    );

    // The unified pipeline over every test event.
    let unified = evaluate_unified(&gate, &repeat_rec, &novel_rec, &split, &stats, &cfg, &ns);
    println!(
        "\nunified next-item accuracy (ALL {} test events, {} routed repeat / {} novel):",
        unified.results[0].opportunities(),
        unified.routed_repeat,
        unified.routed_novel
    );
    println!(
        "  MaAP@1/5/10 = {:.4} / {:.4} / {:.4}",
        unified.results[0].maap(),
        unified.results[1].maap(),
        unified.results[2].maap()
    );
    println!(
        "\n(Novel-item accuracy is intrinsically much lower — the candidate set is\n\
         the whole unseen catalogue, not a ≤{window}-item window.)"
    );
}
