//! Quickstart: train TS-PPR on a synthetic check-in log and compare it with
//! the Pop and Random baselines on held-out data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use repeat_rec::prelude::*;

fn main() {
    // -- 1. Data ------------------------------------------------------------
    // A small Gowalla-like check-in log (synthetic; see DESIGN.md). Swap in
    // your own log with `repeat_rec::sequence::io::read_events`.
    let window = 100;
    let omega = 10;
    let data = GeneratorConfig::gowalla_like(0.01).with_seed(42).generate();
    let data = data.filter_min_train_len(0.7, window);
    let split = data.split(0.7);
    println!(
        "dataset: {} users, {} items, {} events",
        data.num_users(),
        data.num_items(),
        data.total_consumptions()
    );

    // -- 2. Features and training quadruples ---------------------------------
    let stats = TrainStats::compute(&split.train, window);
    let pipeline = FeaturePipeline::standard();
    let sampling = SamplingConfig {
        window,
        omega,
        negatives_per_positive: 10,
        seed: 7,
    };
    let training = TrainingSet::build(&split.train, &stats, &pipeline, &sampling);
    println!(
        "training set: {} positives, {} quadruples",
        training.num_positives(),
        training.num_quadruples()
    );

    // -- 3. Train TS-PPR ------------------------------------------------------
    let config = TsPprConfig::gowalla_defaults(data.num_users(), data.num_items())
        .with_k(16)
        .with_max_sweeps(20)
        .with_seed(1);
    let (model, report) = TsPprTrainer::new(config).train(&training);
    println!(
        "trained: {} SGD steps, converged = {}, final r̃ = {:.4}",
        report.steps,
        report.converged,
        report.final_r_tilde()
    );
    let tsppr = TsPprRecommender::new(model, FeaturePipeline::standard());

    // -- 4. Evaluate against the baselines ------------------------------------
    let cfg = EvalConfig { window, omega };
    let ns = [1, 5, 10];
    println!(
        "\n{:<10} {:>8} {:>8} {:>8}",
        "method", "MaAP@1", "MaAP@5", "MaAP@10"
    );
    for (name, results) in [
        ("TS-PPR", evaluate_multi(&tsppr, &split, &stats, &cfg, &ns)),
        (
            "Pop",
            evaluate_multi(&PopRecommender, &split, &stats, &cfg, &ns),
        ),
        (
            "Random",
            evaluate_multi(&RandomRecommender::default(), &split, &stats, &cfg, &ns),
        ),
    ] {
        println!(
            "{:<10} {:>8.4} {:>8.4} {:>8.4}",
            name,
            results[0].maap(),
            results[1].maap(),
            results[2].maap()
        );
    }

    // -- 5. A live recommendation ---------------------------------------------
    let user = UserId(0);
    let window_state = WindowState::warmed(window, split.train.sequence(user).events());
    let ctx = RecContext {
        user,
        window: &window_state,
        stats: &stats,
        omega,
    };
    let top = tsppr.recommend(&ctx, 5);
    println!("\nTop-5 repeat recommendations for {user}: {top:?}");
}
