//! `rrc` — command-line interface for repeat-consumption recommendation on
//! plain `user<TAB>item` event logs.
//!
//! ```sh
//! rrc generate --preset gowalla --scale 0.01 --output events.tsv
//! rrc stats    --input events.tsv
//! rrc train    --input events.tsv --model model.txt
//! rrc evaluate --input events.tsv --model model.txt --top 10
//! rrc recommend --input events.tsv --model model.txt --user 0 --top 5
//! ```

use repeat_rec::prelude::*;
use repeat_rec::store;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: rrc <COMMAND> [OPTIONS]\n\n\
         commands:\n\
         \x20 generate   synthesize an event log        (--preset gowalla|lastfm|tiny --scale F --seed N --output FILE)\n\
         \x20 stats      dataset statistics             (--input FILE [--window N --omega N])\n\
         \x20 train      train TS-PPR on the 70% prefix (--input FILE --model FILE [--window N --omega N --s N --k N --sweeps N --seed N])\n\
         \x20 evaluate   MaAP/MiAP on the 30% suffix    (--input FILE --model FILE [--window N --omega N --top N])\n\
         \x20 recommend  top-N for one user's history   (--input FILE --model FILE --user DENSE_ID [--window N --omega N --top N])"
    );
    exit(2);
}

struct Args {
    command: String,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut argv = std::env::args().skip(1);
        let command = argv.next().unwrap_or_else(|| usage());
        let mut flags = HashMap::new();
        let mut argv = argv.peekable();
        while let Some(flag) = argv.next() {
            if !flag.starts_with("--") {
                eprintln!("unexpected argument {flag:?}");
                usage();
            }
            let value = argv.next().unwrap_or_else(|| usage());
            flags.insert(flag.trim_start_matches("--").to_string(), value);
        }
        Args { command, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required option --{key}");
            usage();
        })
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v:?}");
                usage();
            }),
        }
    }
}

fn load_dataset(path: &str) -> Dataset {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    repeat_rec::sequence::io::read_events(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

/// Save a model: binary container when the path ends in `.rrcm`, the
/// line-oriented debug text format otherwise (matching the `model.txt`
/// examples in the usage string).
fn save_model_file(model: &TsPprModel, path: &str) {
    let result = if path.ends_with(".rrcm") {
        store::save_model(model, &[("source".into(), "rrc-cli".into())], path)
            .map(|_| ())
            .map_err(|e| e.to_string())
    } else {
        store::text::save_to_path(model, path).map_err(|e| e.to_string())
    };
    if let Err(e) = result {
        eprintln!("cannot write {path}: {e}");
        exit(1);
    }
}

/// Load a model saved by either format: try the binary container first and
/// fall back to the text format when the magic doesn't match.
fn load_model_file(path: &str) -> TsPprModel {
    let result = match store::load_model(path) {
        Ok(model) => Ok(model),
        Err(StoreError::BadMagic) => store::text::load_from_path(path),
        Err(e) => Err(e),
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot load model: {e}");
        exit(1);
    })
}

fn main() {
    let args = Args::parse();
    let window: usize = args.num("window", 100);
    let omega: usize = args.num("omega", 10);
    if omega >= window {
        eprintln!("--omega must be smaller than --window");
        exit(1);
    }

    match args.command.as_str() {
        "generate" => {
            let scale: f64 = args.num("scale", 0.01);
            let seed: u64 = args.num("seed", 42);
            let config = match args.get("preset").unwrap_or("gowalla") {
                "gowalla" => GeneratorConfig::gowalla_like(scale),
                "lastfm" => GeneratorConfig::lastfm_like(scale),
                "tiny" => GeneratorConfig::tiny(),
                other => {
                    eprintln!("unknown preset {other:?}");
                    usage();
                }
            }
            .with_seed(seed);
            let data = config.generate();
            let out = args.require("output");
            let file = File::create(out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1);
            });
            repeat_rec::sequence::io::write_events(&data, BufWriter::new(file)).unwrap();
            eprintln!(
                "wrote {} events ({} users, {} items) to {out}",
                data.total_consumptions(),
                data.num_users(),
                data.num_items()
            );
        }
        "stats" => {
            let data = load_dataset(args.require("input"));
            let stats = DatasetStats::compute(&data, window, omega);
            println!("users:             {}", stats.users);
            println!("items consumed:    {}", stats.items);
            println!("consumptions:      {}", stats.consumptions);
            println!("mean sequence len: {:.1}", stats.mean_sequence_len);
            println!(
                "sequence len:      {}..{}",
                stats.min_sequence_len, stats.max_sequence_len
            );
            println!(
                "repeat fraction:   {:.2}% (|W|={window})",
                stats.repeat_fraction() * 100.0
            );
            println!(
                "eligible repeats:  {:.2}% (Ω={omega})",
                stats.eligible_fraction() * 100.0
            );
        }
        "train" => {
            let data = load_dataset(args.require("input"));
            let data = data.filter_min_train_len(0.7, window);
            if data.num_users() == 0 {
                eprintln!("no user has enough history (need 70% × |S_u| ≥ {window})");
                exit(1);
            }
            let split = data.split(0.7);
            let stats = TrainStats::compute(&split.train, window);
            let training = TrainingSet::build(
                &split.train,
                &stats,
                &FeaturePipeline::standard(),
                &SamplingConfig {
                    window,
                    omega,
                    negatives_per_positive: args.num("s", 10),
                    seed: args.num("seed", 7u64),
                },
            );
            eprintln!(
                "training on {} users, {} quadruples",
                data.num_users(),
                training.num_quadruples()
            );
            let config = TsPprConfig::new(data.num_users(), data.num_items())
                .with_k(args.num("k", 40))
                .with_max_sweeps(args.num("sweeps", 40))
                .with_seed(args.num("seed", 7u64));
            let (model, report) = TsPprTrainer::new(config).train(&training);
            eprintln!(
                "done: {} steps, converged = {}, r̃ = {:.4}",
                report.steps,
                report.converged,
                report.final_r_tilde()
            );
            let out = args.require("model");
            save_model_file(&model, out);
            eprintln!("model saved to {out}");
        }
        "evaluate" => {
            let data = load_dataset(args.require("input"));
            let data = data.filter_min_train_len(0.7, window);
            let split = data.split(0.7);
            let stats = TrainStats::compute(&split.train, window);
            let model = load_model_file(args.require("model"));
            if model.num_users() != data.num_users() || model.num_items() != data.num_items() {
                eprintln!(
                    "model shape ({} users, {} items) does not match the filtered dataset \
                     ({} users, {} items); train and evaluate on the same input",
                    model.num_users(),
                    model.num_items(),
                    data.num_users(),
                    data.num_items()
                );
                exit(1);
            }
            let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
            let top: usize = args.num("top", 10);
            let cfg = EvalConfig { window, omega };
            let results = evaluate_multi(&rec, &split, &stats, &cfg, &[top]);
            println!("opportunities: {}", results[0].opportunities());
            println!("MaAP@{top}: {:.4}", results[0].maap());
            println!("MiAP@{top}: {:.4}", results[0].miap());
        }
        "recommend" => {
            let data = load_dataset(args.require("input"));
            let data = data.filter_min_train_len(0.7, window);
            let stats = TrainStats::compute(&data, window);
            let model = load_model_file(args.require("model"));
            let user_idx: u32 = args.num("user", 0u32);
            if user_idx as usize >= data.num_users() {
                eprintln!("user {user_idx} out of range (0..{})", data.num_users());
                exit(1);
            }
            let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
            let user = UserId(user_idx);
            let window_state = WindowState::warmed(window, data.sequence(user).events());
            let ctx = RecContext {
                user,
                window: &window_state,
                stats: &stats,
                omega,
            };
            let top: usize = args.num("top", 10);
            for (rank, item) in rec.recommend(&ctx, top).iter().enumerate() {
                println!("{:>3}. item {}", rank + 1, item.0);
            }
        }
        _ => usage(),
    }
}
