//! # repeat-rec
//!
//! A production-quality Rust reproduction of **"Recommendation for Repeat
//! Consumption from User Implicit Feedback"** (Chen, Wang, Wang & Yu, ICDE
//! 2017): the TS-PPR model, every baseline the paper compares against, the
//! substrates they need (dense linear algebra, Cox proportional hazards,
//! STREC), synthetic Gowalla/Last.fm-like workload generators, and a full
//! experiment harness regenerating every table and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and offers a [`prelude`] for application code.
//!
//! ```
//! use repeat_rec::prelude::*;
//!
//! // 1. Data: synthetic check-in log (or load your own with rrc_sequence::io).
//! let data = GeneratorConfig::tiny().generate();
//! let split = data.split(0.7);
//!
//! // 2. Features and pre-sampled training quadruples.
//! let stats = TrainStats::compute(&split.train, 30);
//! let pipeline = FeaturePipeline::standard();
//! let sampling = SamplingConfig { window: 30, omega: 5, negatives_per_positive: 5, seed: 1 };
//! let training = TrainingSet::build(&split.train, &stats, &pipeline, &sampling);
//!
//! // 3. Train TS-PPR and recommend.
//! let config = TsPprConfig::new(data.num_users(), data.num_items())
//!     .with_k(8)
//!     .with_max_sweeps(3);
//! let (model, _report) = TsPprTrainer::new(config).train(&training);
//! let recommender = TsPprRecommender::new(model, FeaturePipeline::standard());
//!
//! // 4. Evaluate on the held-out suffixes.
//! let cfg = EvalConfig { window: 30, omega: 5 };
//! let result = evaluate(&recommender, &split, &stats, &cfg, 10);
//! assert!(result.maap() >= 0.0);
//! ```

pub use rrc_baselines as baselines;
pub use rrc_core as core;
pub use rrc_datagen as datagen;
pub use rrc_eval as eval;
pub use rrc_features as features;
pub use rrc_linalg as linalg;
pub use rrc_sequence as sequence;
pub use rrc_serve as serve;
pub use rrc_store as store;
pub use rrc_strec as strec;
pub use rrc_survival as survival;

/// The names most applications need, in one import.
pub mod prelude {
    pub use rrc_baselines::{
        DyrcConfig, DyrcRecommender, DyrcTrainer, FpmcConfig, FpmcRecommender, FpmcTrainer,
        PopRecommender, RandomRecommender, RecencyRecommender,
    };
    pub use rrc_core::{
        OnlineConfig, OnlineTsPpr, PprConfig, PprRecommender, PprTrainer, TsPprConfig, TsPprModel,
        TsPprRecommender, TsPprTrainer,
    };
    pub use rrc_datagen::{DatasetKind, GeneratorConfig};
    pub use rrc_eval::{
        evaluate, evaluate_combined, evaluate_multi, evaluate_multi_parallel, evaluate_novel,
        evaluate_unified, measure_latency, EvalConfig, EvalResult,
    };
    pub use rrc_features::{
        build_novel_training_set, Feature, FeatureContext, FeaturePipeline, NovelSamplingConfig,
        RecContext, Recommender, SamplingConfig, TrainStats, TrainingSet,
    };
    pub use rrc_sequence::{
        ConsumptionKind, Dataset, DatasetBuilder, DatasetStats, ItemId, Sequence, SplitDataset,
        UserId, WindowState,
    };
    pub use rrc_serve::{MetricsReport, RegistryWatcher, ServeEngine};
    pub use rrc_store::{load_model, save_model, ModelRegistry, StoreError};
    pub use rrc_strec::{LassoConfig, StrecClassifier};
    pub use rrc_survival::{CoxConfig, SurvivalRecommender};
}
