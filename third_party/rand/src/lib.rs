//! Offline stand-in for the `rand` crate (see CONTRIBUTING.md, *Offline
//! builds*). The build host for this workspace has no access to a cargo
//! registry, so the workspace vendors the *subset* of the `rand 0.8` API
//! that its crates actually use, implemented on a high-quality deterministic
//! generator:
//!
//! * [`rngs::StdRng`] — **xoshiro256++** seeded via SplitMix64. The real
//!   `rand::rngs::StdRng` makes no cross-version stream guarantees, so
//!   depending only on "deterministic given a seed" (as this workspace's
//!   tests do) keeps the swap sound. Streams differ from upstream `rand`.
//! * [`Rng`] — `gen`, `gen_bool`, `gen_range` over integer/float ranges.
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`.
//!
//! Everything is `no_std`-style pure computation (no OS entropy): there is
//! deliberately **no** `thread_rng`/`from_entropy`, matching the
//! workspace's determinism policy (CONTRIBUTING.md).

/// A source of random `u64`s. Object-safe; everything else builds on it.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG via `rng.gen()`.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by widening multiply (Lemire-style, with
/// rejection to remove bias). `span = 0` means the full 2^64 range.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span <= 1 << 64);
    if span == 0 || span == 1 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing RNG trait: blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Uniform draw from an integer or float range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the standard
    /// recommendation of the xoshiro authors).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut out = splitmix64(&mut state);
            for b in chunk.iter_mut() {
                *b = out as u8;
                out >>= 8;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — 256-bit state, passes BigCrush, ~1ns/draw.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Snapshot of the full 256-bit generator state.
        ///
        /// Workspace extension over the upstream `rand` API: checkpointed
        /// training runs (`rrc-store`) persist RNG streams so a resumed run
        /// replays the exact draw sequence an uninterrupted run would.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        /// Panics on the all-zero state, which a running xoshiro generator
        /// can never produce (it is the one fixed point of the recurrence) —
        /// hitting it means the snapshot is corrupt, not merely stale.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s != [0; 4],
                "all-zero xoshiro state is unreachable; corrupt snapshot"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it
            // through SplitMix64 like seed_from_u64(0) would.
            if s == [0; 4] {
                let mut st = 0u64;
                for slot in &mut s {
                    *slot = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace doesn't distinguish small/std generators.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.state();
        let upcoming: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let replayed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(upcoming, replayed);
    }

    #[test]
    #[should_panic(expected = "all-zero xoshiro state")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn gen_range_int_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.gen_range(0usize..7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let k = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&k));
        }
        for _ in 0..1_000 {
            let k = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&k));
        }
    }

    #[test]
    fn gen_range_float_stays_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.05f64..0.05);
            assert!((-0.05..0.05).contains(&x));
            let y = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = takes_dynish(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn from_seed_zero_is_not_stuck() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
