//! Value-generation strategies: numeric ranges, tuples, map, and filter.

use crate::test_runner::TestRng;
use rand::Rng;

/// How many values a [`Filter`] may reject before the strategy gives up.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the per-case RNG.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` labels the filter in
    /// the give-up panic message.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// A strategy is usable behind a reference (parity with upstream).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {} consecutive values",
            self.whence, MAX_FILTER_RETRIES
        );
    }
}

/// Always produces a clone of the given value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
