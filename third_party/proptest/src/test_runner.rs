//! The deterministic case runner behind [`proptest!`](crate::proptest).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG handed to strategies for one test case.
pub type TestRng = StdRng;

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Successful cases required per property.
    pub cases: u32,
    /// Upper bound on discarded (`prop_assume!` / filter) cases before the
    /// property errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input is outside the property's domain (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic RNG for case number `iteration` of test `name`.
///
/// Seeds derive from an FNV-1a hash of the test name, so every run and
/// every machine explores the same inputs — a conscious trade of coverage
/// diversity for the workspace's bit-for-bit reproducibility policy.
pub fn rng_for(name: &str, iteration: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Drive one property: generate + run cases until `config.cases` pass,
/// panicking on the first failure with enough context to reproduce.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut iteration = 0u64;
    while passed < config.cases {
        let mut rng = rng_for(name, iteration);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}` rejected {rejected} cases \
                         (passed {passed}/{} before giving up)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case {iteration} of property `{name}` failed \
                     (deterministic; re-run reproduces it):\n{msg}"
                );
            }
        }
        iteration += 1;
    }
}
