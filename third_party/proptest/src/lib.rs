//! Offline stand-in for the `proptest` crate (see CONTRIBUTING.md,
//! *Offline builds*). Implements the subset of the proptest API this
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro (optionally with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * [`Strategy`](strategy::Strategy) for numeric ranges, tuples,
//!   `any::<T>()`, `prop::collection::vec`, `prop_map`, and `prop_filter`.
//!
//! Differences from upstream, on purpose:
//!
//! * **No shrinking.** A failing case reports its case number, derived
//!   seed, and the `prop_assert*` message instead of a minimised input.
//! * **Fully deterministic.** Case seeds derive from the test name, so a
//!   failure reproduces on every run and every machine — matching the
//!   workspace's determinism policy — rather than from OS entropy.
//! * Default cases per property: 64 (upstream: 256) to keep the debug-mode
//!   tier-1 suite fast.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define deterministic property tests. Each `fn name(arg in strategy, ..)
/// { body }` item becomes a `#[test]` that runs the body over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(config, stringify!($name), |__rrc_rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rrc_rng);)+
                    let mut __rrc_body = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    __rrc_body()
                });
            }
        )*
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l, __r, format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n {}",
            __l, format!($($fmt)*)
        );
    }};
}

/// Discard the current case (it counts as neither pass nor fail) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((0u32..5, any::<bool>()), 1..20),
            k in (0u64..100).prop_map(|z| z * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _) in &v {
                prop_assert!(*a < 5);
            }
            prop_assert_eq!(k % 2, 0);
        }

        #[test]
        fn filters_apply(x in (0i64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0, "x={}", x);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0u32..10) {
            if x > 5 {
                return Ok(());
            }
            prop_assert!(x <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_parses(x in 0u32..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::rng_for("exact_size_vec", 0);
        let v = crate::collection::vec(crate::arbitrary::any::<bool>(), 40).new_value(&mut rng);
        assert_eq!(v.len(), 40);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run(
            crate::test_runner::ProptestConfig::with_cases(1),
            "always_fails",
            |_| Err(crate::test_runner::TestCaseError::fail("nope")),
        );
    }
}
