//! `any::<T>()` — the whole-domain strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic whole-domain stand-in (upstream
    /// draws from all finite floats; no workspace test relies on that).
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
