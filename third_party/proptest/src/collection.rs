//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec`]: an exact size or a half-open /
/// inclusive range of sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `Vec` strategy: each element drawn from `element`, length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
