//! Offline stand-in for the `criterion` crate (see CONTRIBUTING.md,
//! *Offline builds*). Supports the subset of the Criterion API the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, throughput annotation, `Bencher::iter` — with a
//! simple but honest measurement loop:
//!
//! * each benchmark is warmed up (~0.5 s), then timed over adaptively
//!   sized batches for ~2 s;
//! * the report prints best / median / mean per-iteration time, and
//!   throughput (elem/s or B/s) when [`Throughput`] was set;
//! * no statistics beyond that — no outlier analysis, HTML reports, or
//!   baseline comparison.
//!
//! `cargo bench` therefore still gives comparable before/after numbers on
//! the same machine, which is what the workspace's perf work needs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(500);
const MEASURE: Duration = Duration::from_secs(2);
/// Timing samples collected per benchmark.
const SAMPLES: usize = 30;

/// Work units per iteration; turns time into rates in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure of `bench_function`; drives the timing loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: &'a mut u64,
}

impl<'a> Bencher<'a> {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while sizing the batch so each sample runs long enough
        // to dominate timer overhead.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP / 4 || iters >= 1 << 20 {
                let target = MEASURE / SAMPLES as u32;
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let sized = (target.as_secs_f64() / per_iter.max(1e-12)).ceil() as u64;
                iters = sized.clamp(1, 1 << 24);
                break;
            }
            iters *= 2;
        }
        *self.iters_per_sample = iters;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benchmarks with a work-per-iteration figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the stub sizes samples by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity (upstream: flat vs auto sampling).
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::with_capacity(SAMPLES);
        let mut iters_per_sample = 1u64;
        {
            let mut b = Bencher {
                samples: &mut samples,
                iters_per_sample: &mut iters_per_sample,
            };
            f(&mut b);
        }
        report(
            &self.name,
            &id.to_string(),
            &samples,
            iters_per_sample,
            self.throughput,
        );
        self
    }

    /// Run one benchmark that borrows a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints a separator).
    pub fn finish(&mut self) {
        eprintln!();
    }
}

/// Sampling mode (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

fn report(
    group: &str,
    id: &str,
    samples: &[Duration],
    iters_per_sample: u64,
    throughput: Option<Throughput>,
) {
    if samples.is_empty() {
        eprintln!("{group}/{id}: no samples collected");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|d| d.as_secs_f64() / iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let best = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12}/s", si(n as f64 / median)),
        Some(Throughput::Bytes(n)) => format!("  {:>11}B/s", si(n as f64 / median)),
        None => String::new(),
    };
    eprintln!(
        "{group}/{id}: best {:>10}  median {:>10}  mean {:>10}{rate}   ({} iters x {} samples)",
        fmt_time(best),
        fmt_time(median),
        fmt_time(mean),
        iters_per_sample,
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Collect benchmark functions into a group runner (upstream-compatible
/// call forms; configuration arguments are accepted and ignored).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(
            BenchmarkId::from_parameter("gowalla").to_string(),
            "gowalla"
        );
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_time(3.25e-6), "3.25 µs");
        assert_eq!(fmt_time(1.5e-3), "1.50 ms");
        assert_eq!(fmt_time(2.0), "2.000 s");
    }
}
