//! Offline stand-in for the `crossbeam` crate (see CONTRIBUTING.md,
//! *Offline builds*). Provides the two crossbeam facilities this workspace
//! uses, implemented on the standard library:
//!
//! * [`thread::scope`] — crossbeam-style scoped threads (the closure gets a
//!   scope argument, panics surface as `Err`) over [`std::thread::scope`].
//! * [`channel`] — MPSC channels with the crossbeam names
//!   (`unbounded`/`bounded`, `Sender`/`Receiver`) over [`std::sync::mpsc`].
//!   One intentional narrowing: `Receiver` is single-consumer (not `Clone`),
//!   which is all the serving engine's shard/reply topology needs.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`, wrapping the std scope so
    /// spawned closures can themselves spawn.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to `'env` borrows. As in crossbeam, the
        /// closure receives the scope (ignored as `|_|` by most callers).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. A panic in an unjoined thread (or in `f`) yields `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable, `Send`).
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Flavor::Unbounded(s) => Flavor::Unbounded(s.clone()),
                Flavor::Bounded(s) => Flavor::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. `Err` iff the
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(s) => s.send(value),
                Flavor::Bounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half (single consumer).
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(Flavor::Unbounded(s)), Receiver(r))
    }

    /// Channel that blocks senders once `cap` messages are queued.
    /// `cap = 0` gives a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(s)), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let total: usize = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(total, 60);
    }

    #[test]
    fn scope_surfaces_panics_as_err() {
        let res = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn channels_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded();
        let (done_tx, done_rx) = channel::bounded(1);
        std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        std::thread::spawn(move || {
            done_tx.send("done").unwrap();
        });
        let got: Vec<i32> = rx.iter().take(100).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(done_rx.recv().unwrap(), "done");
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
