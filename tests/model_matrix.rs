//! Cross-model behavioural matrix: every recommender family on one shared
//! generated workload, checking the orderings the library is supposed to
//! deliver plus statistical-utility integration.

use repeat_rec::baselines::{
    ForgettingMarkovModel, ForgettingMarkovRecommender, MarkovChainModel, MarkovRecommender,
    TuckerFpmcConfig, TuckerFpmcRecommender, TuckerFpmcTrainer,
};
use repeat_rec::eval::{bootstrap_metrics, evaluate_ranking, permutation_test};
use repeat_rec::prelude::*;

const WINDOW: usize = 30;
const OMEGA: usize = 5;

struct Fixture {
    split: SplitDataset,
    stats: TrainStats,
}

fn fixture() -> Fixture {
    let data = GeneratorConfig::tiny()
        .with_seed(2024)
        .with_users(12)
        .with_events_per_user(220, 260)
        .generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    Fixture { split, stats }
}

fn cfg() -> EvalConfig {
    EvalConfig {
        window: WINDOW,
        omega: OMEGA,
    }
}

#[test]
fn forgetting_markov_beats_plain_markov() {
    let f = fixture();
    let markov = MarkovRecommender::new(MarkovChainModel::fit(&f.split.train, 0.1));
    let ifm = ForgettingMarkovRecommender::new(ForgettingMarkovModel::fit(&f.split.train, 0.1));
    let plain = evaluate(&markov, &f.split, &f.stats, &cfg(), 10);
    let forgetting = evaluate(&ifm, &f.split, &f.stats, &cfg(), 10);
    assert!(plain.opportunities() > 0);
    // Hyperbolic forgetting pools evidence from the whole window; the
    // single-source chain cannot. Allow a small tolerance for tiny data.
    assert!(
        forgetting.maap() >= plain.maap() - 0.02,
        "IF-Markov {} vs Markov {}",
        forgetting.maap(),
        plain.maap()
    );
}

#[test]
fn tucker_fpmc_trains_and_evaluates() {
    let f = fixture();
    let model = TuckerFpmcTrainer::new(TuckerFpmcConfig {
        core: (6, 6, 6),
        window: WINDOW,
        omega: OMEGA,
        max_sweeps: 10,
        negatives_per_positive: 5,
        ..TuckerFpmcConfig::new(f.split.train.num_users(), f.split.train.num_items())
    })
    .train(&f.split.train);
    let rec = TuckerFpmcRecommender::new(model);
    let result = evaluate(&rec, &f.split, &f.stats, &cfg(), 10);
    let random = evaluate(
        &RandomRecommender::default(),
        &f.split,
        &f.stats,
        &cfg(),
        10,
    );
    assert_eq!(result.opportunities(), random.opportunities());
    assert!(result.maap() > 0.0);
}

#[test]
fn permutation_test_confirms_tsppr_over_random() {
    let f = fixture();
    let training = TrainingSet::build(
        &f.split.train,
        &f.stats,
        &FeaturePipeline::standard(),
        &SamplingConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_positive: 5,
            seed: 3,
        },
    );
    let (model, _) = TsPprTrainer::new(
        TsPprConfig::new(f.split.train.num_users(), f.split.train.num_items())
            .with_k(8)
            .with_max_sweeps(40),
    )
    .train(&training);
    let tsppr = TsPprRecommender::new(model, FeaturePipeline::standard());

    // Top-1 is where TS-PPR's learned preference is far above Random's
    // 1/|candidates| — the strongest contrast for a small-sample test.
    let a = evaluate(&tsppr, &f.split, &f.stats, &cfg(), 1);
    let b = evaluate(&RandomRecommender::default(), &f.split, &f.stats, &cfg(), 1);
    let test = permutation_test(&a, &b, 1000, 9);
    assert!(
        test.observed_diff > 0.0,
        "TS-PPR@1 {} should beat Random@1 {}",
        a.maap(),
        b.maap()
    );
    assert!(test.p_value < 0.2, "p = {}", test.p_value);

    // Bootstrap interval is coherent with the point estimate.
    let a10 = evaluate(&tsppr, &f.split, &f.stats, &cfg(), 10);
    let boot = bootstrap_metrics(&a10, 300, 0.9, 4);
    assert!(boot.maap.contains(a10.maap()));
}

#[test]
fn ranking_metrics_cohere_with_precision() {
    let f = fixture();
    let ranking = evaluate_ranking(&PopRecommender, &f.split, &f.stats, &cfg(), 10);
    let precision = evaluate(&PopRecommender, &f.split, &f.stats, &cfg(), 10);
    assert_eq!(ranking.opportunities, precision.opportunities());
    // Hit rate at N equals MaAP@N by construction.
    assert!((ranking.hit_rate() - precision.maap()).abs() < 1e-12);
    assert!(ranking.mrr() <= ranking.ndcg() + 1e-12);
    assert!(ranking.ndcg() <= ranking.hit_rate() + 1e-12);
}

#[test]
fn novel_and_repeat_pipelines_partition_events() {
    let f = fixture();
    let gate = StrecClassifier::fit(&f.split.train, &f.stats, WINDOW, &LassoConfig::default())
        .expect("examples exist");
    let repeat_results = evaluate(&PopRecommender, &f.split, &f.stats, &cfg(), 10);
    let novel_results = evaluate_novel(&PopRecommender, &f.split, &f.stats, &cfg(), &[10]);
    let unified = evaluate_unified(
        &gate,
        &PopRecommender,
        &PopRecommender,
        &f.split,
        &f.stats,
        &cfg(),
        &[10],
    );
    // The unified walk sees every test event; repeat/novel opportunities are
    // each strict subsets (eligible repeats ∪ first-time novelties do not
    // cover recent repeats and already-seen novelties).
    let total: u64 = f.split.test.iter().map(|s| s.len() as u64).sum();
    assert_eq!(unified.results[0].opportunities(), total);
    assert!(repeat_results.opportunities() < total);
    assert!(novel_results[0].opportunities() < total);
    assert_eq!(unified.routed_repeat + unified.routed_novel, total);
}
