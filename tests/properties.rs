//! Cross-crate property tests: invariants that must hold for any generated
//! workload and any model.

use proptest::prelude::*;
use repeat_rec::prelude::*;

fn any_tiny_dataset() -> impl Strategy<Value = Dataset> {
    (0u64..1000).prop_map(|seed| {
        GeneratorConfig::tiny()
            .with_seed(seed)
            .with_users(4)
            .with_events_per_user(60, 90)
            .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn training_set_invariants(data in any_tiny_dataset(), s in 1usize..8) {
        let stats = TrainStats::compute(&data, 20);
        let training = TrainingSet::build(
            &data,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig { window: 20, omega: 4, negatives_per_positive: s, seed: 1 },
        );
        for q in training.iter_quadruples() {
            // A quadruple never pairs an item with itself.
            prop_assert_ne!(q.pos, q.neg);
            // Features are in [0, 1] (all standard features are normalised).
            for &v in q.f_pos.iter().chain(q.f_neg.iter()) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            // Positive recency is bounded by 1/omega: the positive is at
            // least omega steps old at consumption time.
            prop_assert!(q.f_pos[2] <= 1.0 / 4.0 + 1e-12);
        }
        // No positive has more than S negatives.
        for p in training.positives() {
            prop_assert!(training.negatives_of(p).len() <= s);
            prop_assert!(!training.negatives_of(p).is_empty());
        }
    }

    #[test]
    fn eval_metrics_bounded(data in any_tiny_dataset()) {
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 20);
        let cfg = EvalConfig { window: 20, omega: 4 };
        let results = evaluate_multi(&PopRecommender, &split, &stats, &cfg, &[1, 5, 10]);
        for r in &results {
            prop_assert!((0.0..=1.0).contains(&r.maap()));
            prop_assert!((0.0..=1.0).contains(&r.miap()));
            prop_assert!(r.hits() <= r.opportunities());
        }
        // Monotone in N.
        prop_assert!(results[0].maap() <= results[1].maap() + 1e-12);
        prop_assert!(results[1].maap() <= results[2].maap() + 1e-12);
        // The full candidate set always contains the answer: at N = window
        // the precision is 1 on every opportunity (every eligible repeat is
        // by definition an eligible candidate).
        let full = evaluate(&PopRecommender, &split, &stats, &cfg, 20);
        if full.opportunities() > 0 {
            prop_assert!((full.maap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn window_scan_consistency_on_generated_data(data in any_tiny_dataset()) {
        // The number of eligible repeats found by RepeatSummary equals the
        // number of evaluation opportunities when the test split is the
        // whole sequence and the window starts empty.
        let split = SplitDataset {
            train: Dataset::new(vec![Sequence::new(); data.num_users()], data.num_items()),
            test: data.sequences().to_vec(),
        };
        let stats = TrainStats::compute(&split.train, 20);
        let cfg = EvalConfig { window: 20, omega: 4 };
        let res = evaluate(&PopRecommender, &split, &stats, &cfg, 1);
        let mut eligible = 0u64;
        for (_, seq) in data.iter() {
            eligible += repeat_rec::sequence::RepeatSummary::of(seq.events(), 20, 4)
                .eligible_repeat as u64;
        }
        prop_assert_eq!(res.opportunities(), eligible);
    }

    #[test]
    fn tsppr_scores_are_finite(data in any_tiny_dataset()) {
        let stats = TrainStats::compute(&data, 20);
        let training = TrainingSet::build(
            &data,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig { window: 20, omega: 4, negatives_per_positive: 3, seed: 2 },
        );
        let (model, _) = TsPprTrainer::new(
            TsPprConfig::new(data.num_users(), data.num_items())
                .with_k(4)
                .with_max_sweeps(3),
        )
        .train(&training);
        prop_assert!(model.is_finite());
        let rec = TsPprRecommender::new(model, FeaturePipeline::standard());
        let user = UserId(0);
        let window = WindowState::warmed(20, data.sequence(user).events());
        let ctx = RecContext { user, window: &window, stats: &stats, omega: 4 };
        for v in ctx.candidates() {
            prop_assert!(rec.score(&ctx, v).is_finite());
        }
    }
}
