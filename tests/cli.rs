//! End-to-end test of the `rrc` command-line interface: generate → stats →
//! train → evaluate → recommend, through the real binary.

use std::path::PathBuf;
use std::process::Command;

fn rrc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rrc"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrc_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_round_trip() {
    let dir = temp_dir("round_trip");
    let events = dir.join("events.tsv");
    let model = dir.join("model.txt");

    // generate
    let out = rrc()
        .args([
            "generate",
            "--preset",
            "tiny",
            "--seed",
            "9",
            "--output",
            events.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "generate failed: {out:?}");
    assert!(events.exists());

    // stats
    let out = rrc()
        .args([
            "stats",
            "--input",
            events.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stats failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("users:"), "{text}");
    assert!(text.contains("repeat fraction:"), "{text}");

    // train
    let out = rrc()
        .args([
            "train",
            "--input",
            events.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
            "--k",
            "8",
            "--sweeps",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {out:?}");
    assert!(model.exists());

    // evaluate
    let out = rrc()
        .args([
            "evaluate",
            "--input",
            events.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
            "--top",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "evaluate failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("MaAP@5:"), "{text}");
    assert!(text.contains("MiAP@5:"), "{text}");

    // recommend
    let out = rrc()
        .args([
            "recommend",
            "--input",
            events.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
            "--user",
            "0",
            "--top",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "recommend failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1. item"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_input() {
    // Unknown command exits non-zero.
    let out = rrc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing required option.
    let out = rrc().arg("stats").output().unwrap();
    assert!(!out.status.success());

    // omega >= window rejected.
    let dir = temp_dir("bad_input");
    let events = dir.join("e.tsv");
    std::fs::write(&events, "1 1\n1 2\n").unwrap();
    let out = rrc()
        .args([
            "stats",
            "--input",
            events.to_str().unwrap(),
            "--window",
            "5",
            "--omega",
            "5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_detects_model_shape_mismatch() {
    let dir = temp_dir("mismatch");
    let events_a = dir.join("a.tsv");
    let events_b = dir.join("b.tsv");
    let model = dir.join("model.txt");
    for (path, seed) in [(&events_a, "1"), (&events_b, "2")] {
        let out = rrc()
            .args([
                "generate",
                "--preset",
                "tiny",
                "--seed",
                seed,
                "--output",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let out = rrc()
        .args([
            "train",
            "--input",
            events_a.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
            "--k",
            "4",
            "--sweeps",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Evaluating with a *different* dataset of different shape must fail
    // cleanly. (Different seeds give different item universes.)
    let out = rrc()
        .args([
            "evaluate",
            "--input",
            events_b.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--window",
            "30",
            "--omega",
            "5",
        ])
        .output()
        .unwrap();
    if !out.status.success() {
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(text.contains("does not match"), "{text}");
    }
    // (If the shapes happen to coincide the command may succeed; the
    // assertion above only fires on the mismatch path.)
    std::fs::remove_dir_all(&dir).ok();
}
