//! Cross-crate integration: the full pipeline from data generation to
//! evaluated recommendations, exercised through the facade crate.

use repeat_rec::prelude::*;

const WINDOW: usize = 30;
const OMEGA: usize = 5;

fn pipeline_fixture() -> (Dataset, SplitDataset, TrainStats, TrainingSet) {
    // Seed chosen so the tiny workload is discriminative under the vendored
    // deterministic RNG (third_party/rand): TS-PPR must clear Random by a
    // real margin in `tsppr_beats_random_end_to_end`.
    let data = GeneratorConfig::tiny().with_seed(2024).generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    let training = TrainingSet::build(
        &split.train,
        &stats,
        &FeaturePipeline::standard(),
        &SamplingConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_positive: 5,
            seed: 3,
        },
    );
    (data, split, stats, training)
}

fn train_tsppr(data: &Dataset, training: &TrainingSet, seed: u64) -> TsPprRecommender {
    let config = TsPprConfig::new(data.num_users(), data.num_items())
        .with_k(8)
        .with_max_sweeps(15)
        .with_seed(seed);
    let (model, report) = TsPprTrainer::new(config).train(training);
    assert!(report.steps > 0);
    TsPprRecommender::new(model, FeaturePipeline::standard())
}

#[test]
fn tsppr_beats_random_end_to_end() {
    let (data, split, stats, training) = pipeline_fixture();
    let tsppr = train_tsppr(&data, &training, 9);
    let cfg = EvalConfig {
        window: WINDOW,
        omega: OMEGA,
    };
    let ts = evaluate(&tsppr, &split, &stats, &cfg, 5);
    let rnd = evaluate(&RandomRecommender::default(), &split, &stats, &cfg, 5);
    assert!(ts.opportunities() > 0, "no evaluation opportunities");
    assert_eq!(ts.opportunities(), rnd.opportunities());
    assert!(
        ts.maap() > rnd.maap(),
        "TS-PPR {} should beat Random {}",
        ts.maap(),
        rnd.maap()
    );
}

#[test]
fn evaluation_is_deterministic_and_parallel_safe() {
    let (data, split, stats, training) = pipeline_fixture();
    let tsppr = train_tsppr(&data, &training, 5);
    let cfg = EvalConfig {
        window: WINDOW,
        omega: OMEGA,
    };
    let serial = evaluate_multi(&tsppr, &split, &stats, &cfg, &[1, 5, 10]);
    let parallel = evaluate_multi_parallel(&tsppr, &split, &stats, &cfg, &[1, 5, 10], 4);
    assert_eq!(serial, parallel);
    // Precision is monotone in N.
    assert!(serial[0].maap() <= serial[1].maap());
    assert!(serial[1].maap() <= serial[2].maap());
}

#[test]
fn model_persistence_round_trips_through_facade() {
    let (data, split, stats, training) = pipeline_fixture();
    let config = TsPprConfig::new(data.num_users(), data.num_items())
        .with_k(6)
        .with_max_sweeps(5);
    let (model, _) = TsPprTrainer::new(config).train(&training);

    // Text debug format round-trip...
    let mut buf = Vec::new();
    repeat_rec::store::text::save(&model, &mut buf).unwrap();
    let loaded = repeat_rec::store::text::load(buf.as_slice()).unwrap();
    assert_eq!(model, loaded);

    // ...and the binary container agrees bitwise.
    let bytes = repeat_rec::store::model::encode_model(&model, &[]);
    let view = repeat_rec::store::ModelView::from_bytes(&bytes).unwrap();
    assert_eq!(model, view.to_model());

    // The loaded model scores identically inside the evaluation harness.
    let cfg = EvalConfig {
        window: WINDOW,
        omega: OMEGA,
    };
    let a = evaluate(
        &TsPprRecommender::new(model, FeaturePipeline::standard()),
        &split,
        &stats,
        &cfg,
        5,
    );
    let b = evaluate(
        &TsPprRecommender::new(loaded, FeaturePipeline::standard()),
        &split,
        &stats,
        &cfg,
        5,
    );
    assert_eq!(a, b);
}

#[test]
fn all_methods_produce_valid_recommendations() {
    let (data, split, stats, training) = pipeline_fixture();
    let tsppr = train_tsppr(&data, &training, 2);
    let dyrc = DyrcRecommender::new(
        DyrcTrainer::new(DyrcConfig {
            window: WINDOW,
            omega: OMEGA,
            ..DyrcConfig::default()
        })
        .train(&split.train, &stats),
    );
    let fpmc = FpmcRecommender::new(
        FpmcTrainer::new(FpmcConfig {
            window: WINDOW,
            omega: OMEGA,
            k: 8,
            max_sweeps: 5,
            ..FpmcConfig::new(data.num_users(), data.num_items())
        })
        .train(&split.train),
    );
    let survival =
        SurvivalRecommender::fit(&split.train, &stats, WINDOW, &CoxConfig::default()).unwrap();
    let ppr = PprRecommender::new(
        PprTrainer::new(PprConfig {
            k: 8,
            max_sweeps: 5,
            ..PprConfig::new(data.num_users(), data.num_items())
        })
        .train(&training),
    );

    let random = RandomRecommender::default();
    let methods: Vec<&dyn Recommender> = vec![
        &random as &dyn Recommender,
        &PopRecommender,
        &RecencyRecommender,
        &dyrc,
        &fpmc,
        &survival,
        &ppr,
        &tsppr,
    ];
    for user_idx in 0..split.num_users().min(3) {
        let user = UserId(user_idx as u32);
        let window = WindowState::warmed(WINDOW, split.train.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: OMEGA,
        };
        let candidates = ctx.candidates();
        for rec in &methods {
            let list = rec.recommend(&ctx, 10);
            // Lists only contain eligible candidates, without duplicates.
            let mut seen = std::collections::HashSet::new();
            for v in &list {
                assert!(
                    candidates.contains(v),
                    "{} recommended {v} out of set",
                    rec.name()
                );
                assert!(seen.insert(*v), "{} duplicated {v}", rec.name());
            }
            assert!(list.len() <= 10.min(candidates.len()));
        }
    }
}

#[test]
fn strec_gated_pipeline_runs() {
    let (data, split, stats, training) = pipeline_fixture();
    let tsppr = train_tsppr(&data, &training, 8);
    let clf = StrecClassifier::fit(&split.train, &stats, WINDOW, &LassoConfig::default())
        .expect("examples exist");
    let cfg = EvalConfig {
        window: WINDOW,
        omega: OMEGA,
    };
    let combined = evaluate_combined(&clf, &tsppr, &split, &stats, &cfg, &[1, 5, 10]);
    assert!(combined.strec_total > 0);
    let acc = combined.strec_accuracy();
    assert!((0.0..=1.0).contains(&acc));
    // End-to-end accuracy = gate accuracy × conditional precision.
    let e2e = combined.end_to_end_maap(2);
    assert!(e2e <= acc + 1e-12);
}

#[test]
fn dataset_io_round_trips_generated_data() {
    let data = GeneratorConfig::tiny().with_seed(77).generate();
    let mut buf = Vec::new();
    repeat_rec::sequence::io::write_events(&data, &mut buf).unwrap();
    let reloaded = repeat_rec::sequence::io::read_events(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(reloaded.num_users(), data.num_users());
    assert_eq!(reloaded.total_consumptions(), data.total_consumptions());
    // Dense ids are assigned in first-appearance order, so sequences are
    // isomorphic but not necessarily identical; lengths must match.
    for (u, seq) in data.iter() {
        assert_eq!(reloaded.sequence(u).len(), seq.len());
    }
}
