//! The sliding time window `W_{ut}` of Definition 1, maintained
//! incrementally.
//!
//! Every model in the workspace walks consumption sequences while asking the
//! same queries at each step — "is this item in the window?", "how many
//! times?", "when was it last consumed?", "which window items are at least Ω
//! steps old?" — so this structure keeps:
//!
//! * a ring buffer of the last `capacity` events (the window contents),
//! * a multiplicity map over the window (for O(1) membership / counts, and
//!   the dynamic-familiarity feature of Eq. 21),
//! * a *global* last-seen map over the whole pushed history (for the
//!   recency features of Eqs. 19–20, which look back past the window).
//!
//! `push` is O(1) amortised; all queries are O(1) except candidate
//! enumeration, which is O(distinct items in window).

use crate::ids::ItemId;
use std::collections::{HashMap, VecDeque};

/// An incrementally-maintained time window over a consumption stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowState {
    capacity: usize,
    buf: VecDeque<ItemId>,
    counts: HashMap<ItemId, u32>,
    last_seen: HashMap<ItemId, usize>,
    t: usize,
}

impl WindowState {
    /// A new empty window of the given capacity `|W|`.
    ///
    /// # Panics
    /// Panics if `capacity == 0` (a zero-length window makes every event
    /// novel and the RRC problem vacuous).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        WindowState {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            counts: HashMap::new(),
            last_seen: HashMap::new(),
            t: 0,
        }
    }

    /// Push the consumption at the current time step and advance time.
    pub fn push(&mut self, item: ItemId) {
        if self.buf.len() == self.capacity {
            let evicted = self.buf.pop_front().expect("non-empty at capacity");
            match self.counts.get_mut(&evicted) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.counts.remove(&evicted);
                }
            }
        }
        self.buf.push_back(item);
        *self.counts.entry(item).or_insert(0) += 1;
        self.last_seen.insert(item, self.t);
        self.t += 1;
    }

    /// The current time step: the number of events pushed so far. The window
    /// at this point is `W_{u, t-1}` in the paper's notation — the context
    /// for predicting the *next* consumption `x_t`.
    #[inline]
    pub fn time(&self) -> usize {
        self.t
    }

    /// Number of events currently inside the window (≤ capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff no events have been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity `|W|`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True iff `item` occurs in the current window.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.counts.contains_key(&item)
    }

    /// Multiplicity of `item` in the current window (0 if absent) — the
    /// numerator of the dynamic-familiarity feature.
    #[inline]
    pub fn count(&self, item: ItemId) -> u32 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// The time step of the user's most recent consumption of `item`
    /// anywhere in the pushed history (not just the window), or `None` if
    /// never consumed. This is `l_ut(v)` of Eq. 19.
    #[inline]
    pub fn last_seen(&self, item: ItemId) -> Option<usize> {
        self.last_seen.get(&item).copied()
    }

    /// True iff `item` was consumed within the last `omega` pushed events,
    /// i.e. at a step `≥ t − omega`.
    #[inline]
    pub fn in_last(&self, item: ItemId, omega: usize) -> bool {
        match self.last_seen(item) {
            Some(step) => step + omega >= self.t,
            None => false,
        }
    }

    /// Iterate over the distinct items currently in the window (arbitrary
    /// order).
    pub fn distinct_items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.counts.keys().copied()
    }

    /// Number of distinct items currently in the window.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// The *eligible* reconsumption candidates at the current time: distinct
    /// window items whose most recent consumption is at least `omega` steps
    /// old. These are exactly the items the RRC problem may recommend
    /// (§4.2.2 / §5.1: items in the last Ω steps are excluded as trivial).
    ///
    /// The result is sorted by item id for determinism.
    pub fn eligible_candidates(&self, omega: usize) -> Vec<ItemId> {
        let mut out: Vec<ItemId> = self
            .counts
            .keys()
            .copied()
            .filter(|&v| !self.in_last(v, omega))
            .collect();
        out.sort_unstable();
        out
    }

    /// The window contents, oldest to newest.
    pub fn events(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.buf.iter().copied()
    }

    /// Dynamic familiarity `m_vt = |{x ∈ W_ut : x = v}| / |W_ut|` (Eq. 21).
    /// Returns 0 for an empty window.
    pub fn familiarity(&self, item: ItemId) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.count(item) as f64 / self.buf.len() as f64
        }
    }

    /// Reset to an empty window at time 0, keeping the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.counts.clear();
        self.last_seen.clear();
        self.t = 0;
    }

    /// Warm-start a window by pushing an event slice (e.g. the tail of a
    /// training sequence before walking the test sequence).
    pub fn warmed(capacity: usize, history: &[ItemId]) -> Self {
        let mut w = Self::new(capacity);
        for &item in history {
            w.push(item);
        }
        w
    }

    /// The full last-seen history as `(item, step)` pairs, sorted by item id.
    ///
    /// This is everything a serializer needs beyond [`events`](Self::events)
    /// and [`time`](Self::time): the multiplicity map is derivable from the
    /// window contents, but `last_seen` covers the *entire* pushed history.
    pub fn last_seen_entries(&self) -> Vec<(ItemId, usize)> {
        let mut out: Vec<(ItemId, usize)> = self
            .last_seen
            .iter()
            .map(|(&item, &step)| (item, step))
            .collect();
        out.sort_unstable_by_key(|&(item, _)| item);
        out
    }

    /// Rebuild a window from serialized parts: the capacity, the time step,
    /// the window contents oldest-to-newest, and the full last-seen history.
    /// The multiplicity map is reconstructed from `events`.
    ///
    /// The result is logically identical to the window the parts were taken
    /// from: every query (`contains`, `count`, `last_seen`, `in_last`,
    /// `eligible_candidates`, `familiarity`, …) answers the same.
    ///
    /// # Panics
    /// Panics if `capacity == 0`, if `events` is longer than `capacity`, or
    /// if an event lies outside the pushed history (`t < events.len()`).
    pub fn from_parts(
        capacity: usize,
        t: usize,
        events: &[ItemId],
        last_seen: &[(ItemId, usize)],
    ) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(events.len() <= capacity, "more events than capacity");
        assert!(t >= events.len(), "time precedes window contents");
        let mut counts: HashMap<ItemId, u32> = HashMap::new();
        for &item in events {
            *counts.entry(item).or_insert(0) += 1;
        }
        WindowState {
            capacity,
            buf: events.iter().copied().collect(),
            counts,
            last_seen: last_seen.iter().copied().collect(),
            t,
        }
    }

    /// A deterministic estimate of this window's resident heap footprint in
    /// bytes. Used by byte-budgeted caches; intentionally an *estimate* (it
    /// models allocator-rounded map/ring capacities, not `malloc` internals)
    /// but stable for a given logical state, so budget accounting is
    /// reproducible across runs.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY_U32: usize = 4 + 4 + 8; // key + value + control overhead
        const ENTRY_USIZE: usize = 4 + 8 + 8;
        let ring = self.buf.capacity() * std::mem::size_of::<ItemId>();
        let counts = self.counts.capacity() * ENTRY_U32;
        let last_seen = self.last_seen.capacity() * ENTRY_USIZE;
        std::mem::size_of::<Self>() + ring + counts + last_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_all(w: &mut WindowState, items: &[u32]) {
        for &i in items {
            w.push(ItemId(i));
        }
    }

    #[test]
    fn membership_and_counts_track_window() {
        let mut w = WindowState::new(3);
        push_all(&mut w, &[1, 2, 1]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.count(ItemId(1)), 2);
        assert_eq!(w.count(ItemId(2)), 1);
        // Pushing a 4th event evicts the oldest (item 1).
        w.push(ItemId(3));
        assert_eq!(w.count(ItemId(1)), 1);
        assert!(w.contains(ItemId(3)));
        // Evict again: the remaining 1 goes... window is [1,3] + push → [1,3,x]
        push_all(&mut w, &[4]); // window [1, 3, 4]
        push_all(&mut w, &[5]); // window [3, 4, 5]
        assert!(!w.contains(ItemId(1)));
        assert_eq!(w.count(ItemId(1)), 0);
    }

    #[test]
    fn time_advances_per_push() {
        let mut w = WindowState::new(2);
        assert_eq!(w.time(), 0);
        push_all(&mut w, &[9, 9, 9]);
        assert_eq!(w.time(), 3);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn last_seen_survives_eviction() {
        let mut w = WindowState::new(2);
        push_all(&mut w, &[7, 1, 2]); // 7 evicted from window at t=2
        assert!(!w.contains(ItemId(7)));
        assert_eq!(w.last_seen(ItemId(7)), Some(0)); // but history remembers
        assert_eq!(w.last_seen(ItemId(2)), Some(2));
        assert_eq!(w.last_seen(ItemId(99)), None);
    }

    #[test]
    fn last_seen_updates_on_reconsumption() {
        let mut w = WindowState::new(5);
        push_all(&mut w, &[4, 1, 4]);
        assert_eq!(w.last_seen(ItemId(4)), Some(2));
    }

    #[test]
    fn in_last_checks_omega_recency() {
        let mut w = WindowState::new(10);
        push_all(&mut w, &[1, 2, 3, 4, 5]); // t = 5
                                            // item 1 last seen at step 0: in last 5 steps (0 + 5 >= 5) but not last 4.
        assert!(w.in_last(ItemId(1), 5));
        assert!(!w.in_last(ItemId(1), 4));
        assert!(w.in_last(ItemId(5), 1));
        assert!(!w.in_last(ItemId(42), 100));
    }

    #[test]
    fn eligible_candidates_exclude_recent_and_evicted() {
        let mut w = WindowState::new(4);
        push_all(&mut w, &[10, 11, 12, 13, 14]); // window [11,12,13,14], t=5
                                                 // omega = 2 excludes items seen at steps >= 3 (13 @3, 14 @4).
        let c = w.eligible_candidates(2);
        assert_eq!(c, vec![ItemId(11), ItemId(12)]);
        // 10 is out of the window entirely.
        assert!(!c.contains(&ItemId(10)));
        // omega = 0 admits everything in the window.
        assert_eq!(w.eligible_candidates(0).len(), 4);
        // omega >= t excludes everything.
        assert!(w.eligible_candidates(5).is_empty());
    }

    #[test]
    fn eligible_candidates_deduplicate() {
        let mut w = WindowState::new(6);
        push_all(&mut w, &[1, 1, 1, 2, 3, 9]); // t=6
        let c = w.eligible_candidates(3);
        // 1 last seen at step 2 (2+3 >= 6 is false) → eligible once.
        assert_eq!(c, vec![ItemId(1)]);
    }

    #[test]
    fn familiarity_fraction() {
        let mut w = WindowState::new(4);
        assert_eq!(w.familiarity(ItemId(1)), 0.0);
        push_all(&mut w, &[1, 1, 2, 3]);
        assert_eq!(w.familiarity(ItemId(1)), 0.5);
        assert_eq!(w.familiarity(ItemId(3)), 0.25);
        assert_eq!(w.familiarity(ItemId(9)), 0.0);
    }

    #[test]
    fn warmed_equals_manual_pushes() {
        let history: Vec<ItemId> = [3u32, 1, 4, 1, 5].iter().map(|&i| ItemId(i)).collect();
        let w1 = WindowState::warmed(3, &history);
        let mut w2 = WindowState::new(3);
        for &i in &history {
            w2.push(i);
        }
        assert_eq!(w1.time(), w2.time());
        assert_eq!(
            w1.events().collect::<Vec<_>>(),
            w2.events().collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut w = WindowState::new(3);
        push_all(&mut w, &[1, 2]);
        w.clear();
        assert_eq!(w.time(), 0);
        assert!(w.is_empty());
        assert_eq!(w.last_seen(ItemId(1)), None);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        WindowState::new(0);
    }

    #[test]
    fn from_parts_round_trips_all_queries() {
        let mut w = WindowState::new(4);
        push_all(&mut w, &[7, 1, 2, 1, 9, 2]); // 7 and the first 1 evicted
        let events: Vec<ItemId> = w.events().collect();
        let last_seen = w.last_seen_entries();
        let r = WindowState::from_parts(w.capacity(), w.time(), &events, &last_seen);
        assert_eq!(r.time(), w.time());
        assert_eq!(r.len(), w.len());
        assert_eq!(r.events().collect::<Vec<_>>(), events);
        for item in [7u32, 1, 2, 9, 42] {
            let item = ItemId(item);
            assert_eq!(r.count(item), w.count(item));
            assert_eq!(r.last_seen(item), w.last_seen(item));
            assert_eq!(r.familiarity(item), w.familiarity(item));
        }
        for omega in 0..8 {
            assert_eq!(r.eligible_candidates(omega), w.eligible_candidates(omega));
        }
    }

    #[test]
    #[should_panic(expected = "time precedes")]
    fn from_parts_rejects_impossible_time() {
        WindowState::from_parts(4, 1, &[ItemId(1), ItemId(2)], &[]);
    }

    #[test]
    fn events_are_oldest_to_newest() {
        let mut w = WindowState::new(3);
        push_all(&mut w, &[5, 6, 7, 8]);
        let ev: Vec<u32> = w.events().map(|i| i.0).collect();
        assert_eq!(ev, vec![6, 7, 8]);
    }
}
