//! Datasets: all users' consumption sequences, with the paper's filtering
//! and train/test split.

use crate::ids::{ItemId, UserId};
use crate::sequence::Sequence;
use std::collections::HashMap;

/// A collection of per-user consumption sequences over a dense item space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    sequences: Vec<Sequence>,
    num_items: usize,
}

impl Dataset {
    /// Build from per-user sequences. `num_items` is the size of the item id
    /// space; every event must reference an item `< num_items`.
    ///
    /// # Panics
    /// Panics if any event's item id is out of range.
    pub fn new(sequences: Vec<Sequence>, num_items: usize) -> Self {
        for (u, seq) in sequences.iter().enumerate() {
            for &item in seq.events() {
                assert!(
                    item.index() < num_items,
                    "item {item} in user u{u}'s sequence exceeds num_items={num_items}"
                );
            }
        }
        Dataset {
            sequences,
            num_items,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Size of the item id space.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// One user's sequence.
    ///
    /// # Panics
    /// Panics if `user` is out of range.
    pub fn sequence(&self, user: UserId) -> &Sequence {
        &self.sequences[user.index()]
    }

    /// All sequences, indexed by dense user id.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Iterate `(UserId, &Sequence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &Sequence)> {
        self.sequences
            .iter()
            .enumerate()
            .map(|(u, s)| (UserId(u as u32), s))
    }

    /// Total number of consumption events across all users.
    pub fn total_consumptions(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// Number of distinct items actually consumed (≤ `num_items`).
    pub fn distinct_items_consumed(&self) -> usize {
        let mut seen = vec![false; self.num_items];
        for seq in &self.sequences {
            for &item in seq.events() {
                seen[item.index()] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Keep only users whose training share can seed a full window:
    /// `|S_u| × train_frac ≥ min_train_len` (the paper's
    /// `|S_u| × 70% ≥ 100` filter, §5.1). User ids are re-densified.
    pub fn filter_min_train_len(&self, train_frac: f64, min_train_len: usize) -> Dataset {
        let kept: Vec<Sequence> = self
            .sequences
            .iter()
            .filter(|s| (s.len() as f64 * train_frac).floor() as usize >= min_train_len)
            .cloned()
            .collect();
        Dataset {
            sequences: kept,
            num_items: self.num_items,
        }
    }

    /// Split every user's sequence into a training prefix (`train_frac` of
    /// events) and a test suffix, per the paper's per-user 70/30 protocol.
    pub fn split(&self, train_frac: f64) -> SplitDataset {
        let mut train = Vec::with_capacity(self.sequences.len());
        let mut test = Vec::with_capacity(self.sequences.len());
        for seq in &self.sequences {
            let (tr, te) = seq.split_at_fraction(train_frac);
            train.push(Sequence::from_events(tr.to_vec()));
            test.push(Sequence::from_events(te.to_vec()));
        }
        SplitDataset {
            train: Dataset {
                sequences: train,
                num_items: self.num_items,
            },
            test,
        }
    }
}

/// A per-user train/test split. `test[u]` is the held-out suffix of the
/// user whose training sequence is `train.sequence(UserId(u))`.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training prefixes, one per user.
    pub train: Dataset,
    /// Test suffixes, parallel to `train`'s user indexing.
    pub test: Vec<Sequence>,
}

impl SplitDataset {
    /// Number of users (identical in train and test).
    pub fn num_users(&self) -> usize {
        self.train.num_users()
    }

    /// The test suffix for one user.
    pub fn test_sequence(&self, user: UserId) -> &Sequence {
        &self.test[user.index()]
    }
}

/// Accumulates raw `(user, item)` events (with arbitrary sparse ids, in time
/// order per user) and produces a [`Dataset`] with dense ids.
///
/// Raw ids are mapped to dense indices in first-appearance order, which
/// makes builds deterministic for a fixed event order.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    user_map: HashMap<u64, u32>,
    item_map: HashMap<u64, u32>,
    sequences: Vec<Sequence>,
}

impl DatasetBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one consumption event. Events for the same user must arrive in
    /// time-ascending order (the builder preserves arrival order).
    pub fn push_event(&mut self, raw_user: u64, raw_item: u64) {
        let next_user = self.user_map.len() as u32;
        let user = *self.user_map.entry(raw_user).or_insert(next_user);
        if user as usize == self.sequences.len() {
            self.sequences.push(Sequence::new());
        }
        let next_item = self.item_map.len() as u32;
        let item = *self.item_map.entry(raw_item).or_insert(next_item);
        self.sequences[user as usize].push(ItemId(item));
    }

    /// Number of events accumulated so far.
    pub fn num_events(&self) -> usize {
        self.sequences.iter().map(|s| s.len()).sum()
    }

    /// The dense id assigned to a raw user id, if seen.
    pub fn dense_user(&self, raw_user: u64) -> Option<UserId> {
        self.user_map.get(&raw_user).map(|&u| UserId(u))
    }

    /// The dense id assigned to a raw item id, if seen.
    pub fn dense_item(&self, raw_item: u64) -> Option<ItemId> {
        self.item_map.get(&raw_item).map(|&i| ItemId(i))
    }

    /// Finish building.
    pub fn build(self) -> Dataset {
        let num_items = self.item_map.len();
        Dataset {
            sequences: self.sequences,
            num_items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> Dataset {
        Dataset::new(
            vec![
                Sequence::from_raw(vec![0, 1, 0, 2]),
                Sequence::from_raw(vec![2, 2]),
                Sequence::from_raw(vec![3]),
            ],
            4,
        )
    }

    #[test]
    fn basic_accessors() {
        let d = small_dataset();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 4);
        assert_eq!(d.total_consumptions(), 7);
        assert_eq!(d.sequence(UserId(1)).len(), 2);
        assert_eq!(d.distinct_items_consumed(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds num_items")]
    fn out_of_range_item_rejected() {
        Dataset::new(vec![Sequence::from_raw(vec![5])], 3);
    }

    #[test]
    fn filter_keeps_long_sequences() {
        let d = Dataset::new(
            vec![
                Sequence::from_raw((0..10).map(|i| i % 3).collect()),
                Sequence::from_raw(vec![0, 1]),
            ],
            3,
        );
        // train_frac 0.7: user 0 has floor(7.0)=7 >= 5, user 1 has 1 < 5.
        let f = d.filter_min_train_len(0.7, 5);
        assert_eq!(f.num_users(), 1);
        assert_eq!(f.sequence(UserId(0)).len(), 10);
        assert_eq!(f.num_items(), 3); // item space unchanged
    }

    #[test]
    fn split_is_per_user_prefix_suffix() {
        let d = small_dataset();
        let split = d.split(0.5);
        assert_eq!(split.num_users(), 3);
        assert_eq!(split.train.sequence(UserId(0)).len(), 2);
        assert_eq!(split.test_sequence(UserId(0)).len(), 2);
        // Concatenation recovers the original.
        let mut recovered = split.train.sequence(UserId(0)).events().to_vec();
        recovered.extend_from_slice(split.test_sequence(UserId(0)).events());
        assert_eq!(recovered, d.sequence(UserId(0)).events());
        // User with 1 event: floor(0.5) = 0 train, 1 test.
        assert_eq!(split.train.sequence(UserId(2)).len(), 0);
        assert_eq!(split.test_sequence(UserId(2)).len(), 1);
    }

    #[test]
    fn builder_densifies_in_first_appearance_order() {
        let mut b = DatasetBuilder::new();
        b.push_event(1000, 77);
        b.push_event(5, 88);
        b.push_event(1000, 77);
        b.push_event(1000, 99);
        assert_eq!(b.num_events(), 4);
        assert_eq!(b.dense_user(1000), Some(UserId(0)));
        assert_eq!(b.dense_user(5), Some(UserId(1)));
        assert_eq!(b.dense_item(77), Some(ItemId(0)));
        assert_eq!(b.dense_item(88), Some(ItemId(1)));
        assert_eq!(b.dense_item(99), Some(ItemId(2)));
        assert_eq!(b.dense_user(42), None);
        let d = b.build();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 3);
        assert_eq!(
            d.sequence(UserId(0)).events(),
            &[ItemId(0), ItemId(0), ItemId(2)]
        );
        assert_eq!(d.sequence(UserId(1)).events(), &[ItemId(1)]);
    }

    #[test]
    fn iter_pairs_users_with_sequences() {
        let d = small_dataset();
        let pairs: Vec<(UserId, usize)> = d.iter().map(|(u, s)| (u, s.len())).collect();
        assert_eq!(pairs, vec![(UserId(0), 4), (UserId(1), 2), (UserId(2), 1)]);
    }
}
