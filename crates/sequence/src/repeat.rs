//! Classification of consumption events into novel / recent-repeat /
//! eligible-repeat, the taxonomy that defines both the training set (Eq. 8)
//! and the evaluation targets (Eq. 22) of the paper.

use crate::ids::ItemId;
use crate::window::WindowState;

/// How a consumption event relates to the time window that precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsumptionKind {
    /// The item does not occur in the preceding window — classical novel
    /// consumption, out of scope for RRC.
    Novel,
    /// The item occurs in the window *and* within the last Ω steps. It is a
    /// repeat, but a trivial one (the user surely remembers it), so it is
    /// excluded from both training and evaluation.
    RecentRepeat,
    /// The item occurs in the window but not within the last Ω steps — the
    /// events the RRC problem trains on and is scored against.
    EligibleRepeat,
}

/// One classified event from a [`RepeatScan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanEvent {
    /// Time step of the consumption (index in the walked stream, offset by
    /// the warm window's time if one was supplied).
    pub t: usize,
    /// The consumed item.
    pub item: ItemId,
    /// Classification with respect to the window state *before* this event.
    pub kind: ConsumptionKind,
}

/// Walks a consumption stream, yielding each event's classification and
/// updating the window as it goes.
///
/// The window handed to [`RepeatScan::with_window`] may be pre-warmed with
/// history (e.g. the tail of a training sequence before scanning the test
/// suffix), which is how the paper evaluates on the test 30%.
#[derive(Debug, Clone)]
pub struct RepeatScan<'a> {
    events: &'a [ItemId],
    window: WindowState,
    omega: usize,
    pos: usize,
}

impl<'a> RepeatScan<'a> {
    /// Scan `events` from an initially-empty window of the given capacity.
    pub fn new(events: &'a [ItemId], window_capacity: usize, omega: usize) -> Self {
        Self::with_window(events, WindowState::new(window_capacity), omega)
    }

    /// Scan `events` continuing from an existing (possibly warmed) window.
    pub fn with_window(events: &'a [ItemId], window: WindowState, omega: usize) -> Self {
        assert!(
            omega < window.capacity(),
            "omega must be smaller than the window capacity (0 < Ω < |W|)"
        );
        RepeatScan {
            events,
            window,
            omega,
            pos: 0,
        }
    }

    /// The window state as of the *next* unreturned event (i.e. the context
    /// the next classification will use).
    pub fn window(&self) -> &WindowState {
        &self.window
    }

    /// Consume the scan and return the final window state.
    pub fn into_window(self) -> WindowState {
        self.window
    }

    /// Classify `item` against the current window without consuming it.
    pub fn classify_next(&self, item: ItemId) -> ConsumptionKind {
        classify(&self.window, item, self.omega)
    }
}

/// Classify one prospective consumption against a window state.
pub fn classify(window: &WindowState, item: ItemId, omega: usize) -> ConsumptionKind {
    if !window.contains(item) {
        ConsumptionKind::Novel
    } else if window.in_last(item, omega) {
        ConsumptionKind::RecentRepeat
    } else {
        ConsumptionKind::EligibleRepeat
    }
}

impl<'a> Iterator for RepeatScan<'a> {
    type Item = ScanEvent;

    fn next(&mut self) -> Option<ScanEvent> {
        let item = *self.events.get(self.pos)?;
        self.pos += 1;
        let t = self.window.time();
        let kind = classify(&self.window, item, self.omega);
        self.window.push(item);
        Some(ScanEvent { t, item, kind })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.events.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for RepeatScan<'a> {}

/// Aggregate counts from scanning a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepeatSummary {
    /// Novel consumptions.
    pub novel: usize,
    /// Repeats within the last Ω steps.
    pub recent_repeat: usize,
    /// Repeats eligible for RRC training/evaluation.
    pub eligible_repeat: usize,
}

impl RepeatSummary {
    /// Scan `events` with a fresh window and summarise.
    pub fn of(events: &[ItemId], window_capacity: usize, omega: usize) -> Self {
        Self::of_scan(RepeatScan::new(events, window_capacity, omega))
    }

    /// Summarise an existing scan (consumes it).
    pub fn of_scan(scan: RepeatScan<'_>) -> Self {
        let mut s = RepeatSummary::default();
        for ev in scan {
            match ev.kind {
                ConsumptionKind::Novel => s.novel += 1,
                ConsumptionKind::RecentRepeat => s.recent_repeat += 1,
                ConsumptionKind::EligibleRepeat => s.eligible_repeat += 1,
            }
        }
        s
    }

    /// Total classified events.
    pub fn total(&self) -> usize {
        self.novel + self.recent_repeat + self.eligible_repeat
    }

    /// Fraction of events that are repeats of any kind (the "77% of
    /// listening behaviors" statistic from the paper's introduction).
    pub fn repeat_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.recent_repeat + self.eligible_repeat) as f64 / total as f64
        }
    }

    /// Fraction of events that are *eligible* repeats.
    pub fn eligible_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.eligible_repeat as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ItemId> {
        raw.iter().map(|&i| ItemId(i)).collect()
    }

    #[test]
    fn first_occurrences_are_novel() {
        let ev = ids(&[1, 2, 3]);
        let kinds: Vec<_> = RepeatScan::new(&ev, 10, 2).map(|e| e.kind).collect();
        assert_eq!(kinds, vec![ConsumptionKind::Novel; 3]);
    }

    #[test]
    fn repeat_within_omega_is_recent() {
        // item 1 repeats one step after its consumption: inside Ω = 2.
        let ev = ids(&[1, 1]);
        let kinds: Vec<_> = RepeatScan::new(&ev, 10, 2).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![ConsumptionKind::Novel, ConsumptionKind::RecentRepeat]
        );
    }

    #[test]
    fn repeat_beyond_omega_is_eligible() {
        // 1 _ _ 1 with Ω = 2: gap of 3 steps > 2 → eligible.
        let ev = ids(&[1, 2, 3, 1]);
        let last = RepeatScan::new(&ev, 10, 2).last().unwrap();
        assert_eq!(last.kind, ConsumptionKind::EligibleRepeat);
        assert_eq!(last.item, ItemId(1));
        assert_eq!(last.t, 3);
    }

    #[test]
    fn gap_exactly_omega_is_recent() {
        // 1 at step 0, repeated at step Ω: last_seen + Ω >= t → recent.
        let omega = 3;
        let ev = ids(&[1, 2, 4, 1]); // gap = 3 steps = Ω
        let last = RepeatScan::new(&ev, 10, omega).last().unwrap();
        assert_eq!(last.kind, ConsumptionKind::RecentRepeat);
    }

    #[test]
    fn eviction_makes_item_novel_again() {
        // Window of 2: by the time 1 returns it has left the window.
        let ev = ids(&[1, 2, 3, 1]);
        let last = RepeatScan::new(&ev, 2, 1).last().unwrap();
        assert_eq!(last.kind, ConsumptionKind::Novel);
    }

    #[test]
    fn warm_window_carries_history() {
        let history = ids(&[7, 8, 9, 2, 3]);
        let w = WindowState::warmed(5, &history);
        let test = ids(&[7]);
        // 7 is in the warmed window, last seen 5 steps ago: eligible at Ω=2.
        let ev = RepeatScan::with_window(&test, w, 2).next().unwrap();
        assert_eq!(ev.kind, ConsumptionKind::EligibleRepeat);
        assert_eq!(ev.t, 5); // time continues from the warm history
    }

    #[test]
    fn summary_counts_add_up() {
        let ev = ids(&[1, 2, 1, 3, 1, 1, 4, 2]);
        let s = RepeatSummary::of(&ev, 5, 1);
        assert_eq!(s.total(), ev.len());
        assert_eq!(s.novel + s.recent_repeat + s.eligible_repeat, 8);
        assert!(s.repeat_fraction() > 0.0);
        assert!(s.repeat_fraction() <= 1.0);
        assert!(s.eligible_fraction() <= s.repeat_fraction());
    }

    #[test]
    fn summary_empty_stream() {
        let s = RepeatSummary::of(&[], 5, 1);
        assert_eq!(s.total(), 0);
        assert_eq!(s.repeat_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "omega must be smaller")]
    fn omega_at_capacity_rejected() {
        let ev = ids(&[1]);
        let _ = RepeatScan::new(&ev, 5, 5);
    }

    #[test]
    fn classify_next_matches_iteration() {
        let ev = ids(&[1, 2, 1]);
        let mut scan = RepeatScan::new(&ev, 10, 1);
        scan.next();
        scan.next();
        // Before consuming the third event, peek its classification.
        assert_eq!(
            scan.classify_next(ItemId(1)),
            ConsumptionKind::EligibleRepeat
        );
        assert_eq!(scan.next().unwrap().kind, ConsumptionKind::EligibleRepeat);
    }

    #[test]
    fn exact_size_iterator() {
        let ev = ids(&[1, 2, 3, 4]);
        let mut scan = RepeatScan::new(&ev, 10, 1);
        assert_eq!(scan.len(), 4);
        scan.next();
        assert_eq!(scan.len(), 3);
    }
}
