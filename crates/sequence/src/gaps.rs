//! Inter-consumption gap statistics.
//!
//! §3 of the paper: "In real applications, we can set an ideal time window
//! length `|W|` based on the general gap between adjacent consumption
//! behaviors." This module measures that distribution and recommends a
//! window size from it.

use crate::dataset::Dataset;
use crate::ids::ItemId;
use std::collections::HashMap;

/// Histogram of gaps between consecutive consumptions of the same item by
/// the same user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapHistogram {
    /// `counts[g]` = number of observed gaps of exactly `g` steps
    /// (`g ≥ 1`; index 0 is unused and always 0).
    counts: Vec<u64>,
    total: u64,
}

impl GapHistogram {
    /// Measure every user–item gap in the dataset. Gaps longer than
    /// `max_gap` are clamped into the final bucket.
    pub fn compute(data: &Dataset, max_gap: usize) -> Self {
        assert!(max_gap >= 1, "max_gap must be at least 1");
        let mut counts = vec![0u64; max_gap + 1];
        let mut total = 0u64;
        for (_, seq) in data.iter() {
            let mut last: HashMap<ItemId, usize> = HashMap::new();
            for (t, &item) in seq.events().iter().enumerate() {
                if let Some(prev) = last.insert(item, t) {
                    let gap = (t - prev).min(max_gap);
                    counts[gap] += 1;
                    total += 1;
                }
            }
        }
        GapHistogram { counts, total }
    }

    /// Number of measured gaps.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of gaps of exactly `g` (clamped at construction).
    pub fn count(&self, g: usize) -> u64 {
        self.counts.get(g).copied().unwrap_or(0)
    }

    /// Mean gap length.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(g, &c)| g as f64 * c as f64)
            .sum();
        weighted / self.total as f64
    }

    /// The smallest gap `g` such that at least `q` of the probability mass
    /// lies at gaps `≤ g`. Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (g, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(g);
            }
        }
        Some(self.counts.len() - 1)
    }

    /// A window-size recommendation per §3: large enough to cover the given
    /// fraction of observed reconsumption gaps (default practice: 0.8–0.9).
    pub fn recommended_window(&self, coverage: f64) -> Option<usize> {
        self.quantile(coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    fn data() -> Dataset {
        // Item 0 gaps: 2, 4; item 1 gap: 2.
        Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 1, 3, 2, 0])], 4)
    }

    #[test]
    fn counts_and_mean() {
        let h = GapHistogram::compute(&data(), 50);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 0);
        assert!((h.mean() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_long_gaps() {
        let h = GapHistogram::compute(&data(), 3);
        assert_eq!(h.count(3), 1); // the gap of 4 clamps to 3
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn quantiles() {
        let h = GapHistogram::compute(&data(), 50);
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(h.quantile(0.0), Some(0)); // ceil(0) = 0 gaps needed
        assert_eq!(h.recommended_window(0.9), Some(4));
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1])], 2);
        let h = GapHistogram::compute(&d, 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "max_gap")]
    fn zero_max_gap_rejected() {
        GapHistogram::compute(&data(), 0);
    }
}
