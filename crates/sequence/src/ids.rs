//! Dense integer identifiers for users and items.
//!
//! Both are `u32` newtypes: 4 bytes keeps the window ring buffers and the
//! pre-sampled training quadruples compact (the Last.fm configuration in the
//! paper has ~1M items and 16M events), and the newtype prevents the classic
//! user/item index swap bug at compile time.

use std::fmt;

/// A dense user index in `0..dataset.num_users()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// A dense item index in `0..dataset.num_items()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl UserId {
    /// The index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// The index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        assert_eq!(UserId(7).index(), 7);
        assert_eq!(ItemId(42).index(), 42);
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(3).to_string(), "i3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ItemId(1) < ItemId(2));
        assert!(UserId(0) < UserId(10));
    }
}
