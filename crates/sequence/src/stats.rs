//! Dataset-level statistics — the numbers behind Table 2 of the paper and
//! the repeat-behaviour fractions quoted in its introduction.

use crate::dataset::Dataset;
use crate::repeat::RepeatSummary;

/// Summary statistics of a dataset under a given window/Ω configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub users: usize,
    /// Number of distinct items consumed.
    pub items: usize,
    /// Total consumption events.
    pub consumptions: usize,
    /// Events classified as repeats (recent or eligible) w.r.t. the window.
    pub repeats: usize,
    /// Events classified as eligible repeats (at least Ω steps old).
    pub eligible_repeats: usize,
    /// Mean sequence length.
    pub mean_sequence_len: f64,
    /// Maximum sequence length.
    pub max_sequence_len: usize,
    /// Minimum sequence length.
    pub min_sequence_len: usize,
}

impl DatasetStats {
    /// Compute statistics by scanning every user's sequence with a fresh
    /// window of the given capacity.
    pub fn compute(dataset: &Dataset, window_capacity: usize, omega: usize) -> Self {
        let mut repeats = 0;
        let mut eligible = 0;
        let mut max_len = 0;
        let mut min_len = usize::MAX;
        for seq in dataset.sequences() {
            let s = RepeatSummary::of(seq.events(), window_capacity, omega);
            repeats += s.recent_repeat + s.eligible_repeat;
            eligible += s.eligible_repeat;
            max_len = max_len.max(seq.len());
            min_len = min_len.min(seq.len());
        }
        let users = dataset.num_users();
        let consumptions = dataset.total_consumptions();
        DatasetStats {
            users,
            items: dataset.distinct_items_consumed(),
            consumptions,
            repeats,
            eligible_repeats: eligible,
            mean_sequence_len: if users == 0 {
                0.0
            } else {
                consumptions as f64 / users as f64
            },
            max_sequence_len: max_len,
            min_sequence_len: if users == 0 { 0 } else { min_len },
        }
    }

    /// Fraction of all events that are repeats of any kind.
    pub fn repeat_fraction(&self) -> f64 {
        if self.consumptions == 0 {
            0.0
        } else {
            self.repeats as f64 / self.consumptions as f64
        }
    }

    /// Fraction of all events that are eligible repeats.
    pub fn eligible_fraction(&self) -> f64 {
        if self.consumptions == 0 {
            0.0
        } else {
            self.eligible_repeats as f64 / self.consumptions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    #[test]
    fn stats_of_small_dataset() {
        let d = Dataset::new(
            vec![
                Sequence::from_raw(vec![0, 1, 0, 1, 0]),
                Sequence::from_raw(vec![2, 2, 2]),
            ],
            3,
        );
        let s = DatasetStats::compute(&d, 4, 1);
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 3);
        assert_eq!(s.consumptions, 8);
        assert_eq!(s.mean_sequence_len, 4.0);
        assert_eq!(s.max_sequence_len, 5);
        assert_eq!(s.min_sequence_len, 3);
        // user 0: events at t>=2 are repeats with gap 2 > Ω=1 → eligible (3 of them)
        // user 1: gaps of 1 → recent repeats (2 of them)
        assert_eq!(s.repeats, 5);
        assert_eq!(s.eligible_repeats, 3);
        assert!((s.repeat_fraction() - 5.0 / 8.0).abs() < 1e-12);
        assert!((s.eligible_fraction() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_dataset() {
        let d = Dataset::new(vec![], 0);
        let s = DatasetStats::compute(&d, 4, 1);
        assert_eq!(s.users, 0);
        assert_eq!(s.repeat_fraction(), 0.0);
        assert_eq!(s.mean_sequence_len, 0.0);
        assert_eq!(s.min_sequence_len, 0);
    }
}
