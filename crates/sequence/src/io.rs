//! Plain-text event-log I/O.
//!
//! The format is the lowest common denominator for implicit-feedback logs
//! (both the Gowalla check-in dump and the Last.fm 1K listening log reduce
//! to it after sorting by user and timestamp): one event per line,
//!
//! ```text
//! <user-id> <item-id>
//! ```
//!
//! separated by any ASCII whitespace, `#`-prefixed comment lines and blank
//! lines ignored. Events must already be in time-ascending order within
//! each user (the natural order of a timestamp-sorted dump).

use crate::dataset::{Dataset, DatasetBuilder};
use std::io::{self, BufRead, Write};

/// Errors from reading an event log.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (wrong field count or non-integer field), with its
    /// 1-based line number.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, content } => {
                write!(f, "malformed event on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read a `user item` event log into a [`Dataset`] (ids densified in
/// first-appearance order).
pub fn read_events<R: BufRead>(reader: R) -> Result<Dataset, ReadError> {
    let mut builder = DatasetBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (user, item) = match (fields.next(), fields.next(), fields.next()) {
            (Some(u), Some(i), None) => (u, i),
            _ => {
                return Err(ReadError::Parse {
                    line: idx + 1,
                    content: line.clone(),
                })
            }
        };
        let user: u64 = user.parse().map_err(|_| ReadError::Parse {
            line: idx + 1,
            content: line.clone(),
        })?;
        let item: u64 = item.parse().map_err(|_| ReadError::Parse {
            line: idx + 1,
            content: line.clone(),
        })?;
        builder.push_event(user, item);
    }
    Ok(builder.build())
}

/// Write a dataset back out as a `user item` event log (dense ids), user by
/// user in time order. Round-trips through [`read_events`].
pub fn write_events<W: Write>(dataset: &Dataset, mut writer: W) -> io::Result<()> {
    for (user, seq) in dataset.iter() {
        for &item in seq.events() {
            writeln!(writer, "{}\t{}", user.0, item.0)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ItemId, UserId};
    use std::io::Cursor;

    #[test]
    fn read_basic_log() {
        let log = "10 100\n10 200\n20 100\n10 100\n";
        let d = read_events(Cursor::new(log)).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.num_items(), 2);
        assert_eq!(
            d.sequence(UserId(0)).events(),
            &[ItemId(0), ItemId(1), ItemId(0)]
        );
        assert_eq!(d.sequence(UserId(1)).events(), &[ItemId(0)]);
    }

    #[test]
    fn comments_blanks_and_tabs_accepted() {
        let log = "# a comment\n\n1\t5\n  2   6  \n";
        let d = read_events(Cursor::new(log)).unwrap();
        assert_eq!(d.num_users(), 2);
        assert_eq!(d.total_consumptions(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let log = "1 2\nnot-a-number 3\n";
        match read_events(Cursor::new(log)) {
            Err(ReadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_rejected() {
        assert!(read_events(Cursor::new("1 2 3\n")).is_err());
        assert!(read_events(Cursor::new("1\n")).is_err());
    }

    #[test]
    fn round_trip() {
        let log = "3 9\n3 8\n4 9\n3 9\n";
        let d = read_events(Cursor::new(log)).unwrap();
        let mut out = Vec::new();
        write_events(&d, &mut out).unwrap();
        let d2 = read_events(Cursor::new(out)).unwrap();
        assert_eq!(d.num_users(), d2.num_users());
        assert_eq!(d.num_items(), d2.num_items());
        for (u, seq) in d.iter() {
            assert_eq!(seq.events(), d2.sequence(u).events());
        }
    }
}
