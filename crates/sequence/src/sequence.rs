//! One user's time-ascending consumption sequence `S_u`.

use crate::ids::ItemId;

/// A consumption sequence: an ordered list of item consumptions where
/// repetition may (and usually does) occur. Position in the list is the
/// paper's discrete "time" `t`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sequence {
    events: Vec<ItemId>,
}

impl Sequence {
    /// An empty sequence.
    pub fn new() -> Self {
        Sequence { events: Vec::new() }
    }

    /// Build from a vector of item ids.
    pub fn from_events(events: Vec<ItemId>) -> Self {
        Sequence { events }
    }

    /// Build from raw `u32` item indices (test/dataset-generation helper).
    pub fn from_raw(raw: Vec<u32>) -> Self {
        Sequence {
            events: raw.into_iter().map(ItemId).collect(),
        }
    }

    /// Append one consumption at the next time step.
    pub fn push(&mut self, item: ItemId) {
        self.events.push(item);
    }

    /// Number of consumption events `|S_u|`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff the sequence holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The consumption at time step `t` (0-based), if any.
    pub fn get(&self, t: usize) -> Option<ItemId> {
        self.events.get(t).copied()
    }

    /// Borrow all events in time order.
    pub fn events(&self) -> &[ItemId] {
        &self.events
    }

    /// The `prefix_len` earliest events (used for the train part of a
    /// split). Clamped to the sequence length.
    pub fn prefix(&self, prefix_len: usize) -> &[ItemId] {
        &self.events[..prefix_len.min(self.events.len())]
    }

    /// The events from `start` onward (the test part of a split).
    pub fn suffix(&self, start: usize) -> &[ItemId] {
        &self.events[start.min(self.events.len())..]
    }

    /// Number of *distinct* items consumed.
    pub fn distinct_items(&self) -> usize {
        let mut seen: Vec<ItemId> = self.events.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Split at `train_frac` into (train, test) event slices; the train part
    /// gets `floor(len * train_frac)` events, matching the paper's
    /// "each user's 70% consumption sequence for training".
    pub fn split_at_fraction(&self, train_frac: f64) -> (&[ItemId], &[ItemId]) {
        assert!(
            (0.0..=1.0).contains(&train_frac),
            "train_frac must be in [0, 1]"
        );
        let cut = (self.events.len() as f64 * train_frac).floor() as usize;
        self.events.split_at(cut)
    }
}

impl FromIterator<ItemId> for Sequence {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        Sequence {
            events: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = ItemId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ItemId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = Sequence::new();
        assert!(s.is_empty());
        s.push(ItemId(5));
        s.push(ItemId(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some(ItemId(5)));
        assert_eq!(s.get(1), Some(ItemId(3)));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn distinct_counts_unique_items() {
        let s = Sequence::from_raw(vec![1, 2, 1, 1, 3, 2]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.distinct_items(), 3);
    }

    #[test]
    fn split_at_fraction_uses_floor() {
        let s = Sequence::from_raw(vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let (train, test) = s.split_at_fraction(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // 70% of 9 = 6.3 → 6
        let s9 = Sequence::from_raw((0..9).collect());
        let (tr, te) = s9.split_at_fraction(0.7);
        assert_eq!(tr.len(), 6);
        assert_eq!(te.len(), 3);
    }

    #[test]
    fn split_extremes() {
        let s = Sequence::from_raw(vec![1, 2, 3]);
        let (a, b) = s.split_at_fraction(0.0);
        assert!(a.is_empty());
        assert_eq!(b.len(), 3);
        let (c, d) = s.split_at_fraction(1.0);
        assert_eq!(c.len(), 3);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn split_rejects_out_of_range() {
        Sequence::from_raw(vec![1]).split_at_fraction(1.5);
    }

    #[test]
    fn prefix_suffix_clamped() {
        let s = Sequence::from_raw(vec![1, 2, 3]);
        assert_eq!(s.prefix(2), &[ItemId(1), ItemId(2)]);
        assert_eq!(s.prefix(99).len(), 3);
        assert_eq!(s.suffix(2), &[ItemId(3)]);
        assert!(s.suffix(99).is_empty());
    }

    #[test]
    fn iteration() {
        let s = Sequence::from_raw(vec![4, 5]);
        let collected: Vec<ItemId> = (&s).into_iter().collect();
        assert_eq!(collected, vec![ItemId(4), ItemId(5)]);
    }
}
