//! Consumption sequences, sliding time windows, and repeat-consumption
//! classification — the substrate of the RRC problem definition (§3 of the
//! paper).
//!
//! The central objects are:
//!
//! * [`UserId`] / [`ItemId`] — dense integer identifiers.
//! * [`Sequence`] — one user's time-ascending consumption sequence `S_u`;
//!   "time" is the discrete consumption-step index, as in the paper.
//! * [`Dataset`] — all users' sequences plus the item-space size, with
//!   builders, the paper's `|S_u| × 70% ≥ |W|` filter, and the 70/30
//!   train/test split.
//! * [`WindowState`] — an incrementally-maintained time window `W_{ut}`
//!   (Definition 1): O(1) amortised push, O(1) membership/count/last-seen
//!   queries, and enumeration of the *eligible* reconsumption candidates
//!   (in-window, but not within the last Ω steps).
//! * [`RepeatScan`] — walks a sequence and classifies every event as novel,
//!   a recent repeat (inside Ω), or an eligible repeat (the events the RRC
//!   problem trains and evaluates on).
//!
//! ```
//! use rrc_sequence::{ItemId, Sequence, WindowState};
//!
//! let seq = Sequence::from_raw(vec![1, 2, 1, 3, 2]);
//! let mut w = WindowState::new(3);
//! for &item in seq.events() {
//!     w.push(item);
//! }
//! // Window now holds the last 3 events: [1, 3, 2].
//! assert!(w.contains(ItemId(3)));
//! assert!(!w.contains(ItemId(9)));
//! assert_eq!(w.count(ItemId(1)), 1);
//! ```

pub mod dataset;
pub mod gaps;
pub mod ids;
pub mod io;
pub mod repeat;
pub mod sequence;
pub mod stats;
pub mod window;

pub use dataset::{Dataset, DatasetBuilder, SplitDataset};
pub use gaps::GapHistogram;
pub use ids::{ItemId, UserId};
pub use repeat::{classify, ConsumptionKind, RepeatScan, RepeatSummary};
pub use sequence::Sequence;
pub use stats::DatasetStats;
pub use window::WindowState;
