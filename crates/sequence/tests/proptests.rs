//! Property-based tests for windows, scans, and datasets.

use proptest::prelude::*;
use rrc_sequence::{
    ConsumptionKind, Dataset, ItemId, RepeatScan, RepeatSummary, Sequence, WindowState,
};

fn event_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..20, 0..200)
}

/// Reference (quadratic) implementation of window membership for item at
/// position `t`: does it occur in the `w` events before `t`?
fn naive_in_window(events: &[u32], t: usize, w: usize) -> bool {
    let lo = t.saturating_sub(w);
    events[lo..t].contains(&events[t])
}

fn naive_in_last(events: &[u32], t: usize, omega: usize) -> bool {
    let lo = t.saturating_sub(omega);
    events[lo..t].contains(&events[t])
}

proptest! {
    #[test]
    fn scan_matches_naive_classification(events in event_stream(), w in 1usize..30, omega_frac in 0usize..100) {
        let omega = omega_frac % w; // 0 <= omega < w
        let ids: Vec<ItemId> = events.iter().map(|&i| ItemId(i)).collect();
        let kinds: Vec<ConsumptionKind> = RepeatScan::new(&ids, w, omega).map(|e| e.kind).collect();
        for (t, kind) in kinds.iter().enumerate() {
            let in_win = naive_in_window(&events, t, w);
            let in_om = naive_in_last(&events, t, omega);
            let expect = if !in_win {
                ConsumptionKind::Novel
            } else if in_om {
                ConsumptionKind::RecentRepeat
            } else {
                ConsumptionKind::EligibleRepeat
            };
            prop_assert_eq!(*kind, expect, "t={} events={:?} w={} omega={}", t, events, w, omega);
        }
    }

    #[test]
    fn window_counts_match_naive(events in event_stream(), w in 1usize..30) {
        let mut win = WindowState::new(w);
        for (t, &e) in events.iter().enumerate() {
            win.push(ItemId(e));
            // After pushing event t, window covers events [t+1-w, t].
            let lo = (t + 1).saturating_sub(w);
            let slice = &events[lo..=t];
            for probe in 0u32..20 {
                let naive = slice.iter().filter(|&&x| x == probe).count() as u32;
                prop_assert_eq!(win.count(ItemId(probe)), naive);
            }
            prop_assert_eq!(win.len(), slice.len());
        }
    }

    #[test]
    fn last_seen_matches_naive(events in event_stream(), w in 1usize..10) {
        let mut win = WindowState::new(w);
        for (t, &e) in events.iter().enumerate() {
            win.push(ItemId(e));
            for probe in 0u32..20 {
                let naive = events[..=t].iter().rposition(|&x| x == probe);
                prop_assert_eq!(win.last_seen(ItemId(probe)), naive);
            }
        }
    }

    #[test]
    fn eligible_candidates_are_valid(events in event_stream(), w in 2usize..30, omega_frac in 0usize..100) {
        let omega = omega_frac % w;
        let ids: Vec<ItemId> = events.iter().map(|&i| ItemId(i)).collect();
        let win = WindowState::warmed(w, &ids);
        let cands = win.eligible_candidates(omega);
        // Sorted, unique, all in window, none within omega.
        for pair in cands.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for &c in &cands {
            prop_assert!(win.contains(c));
            prop_assert!(!win.in_last(c, omega));
        }
        // Completeness: every distinct in-window item not in the last omega
        // appears.
        for item in win.distinct_items() {
            if !win.in_last(item, omega) {
                prop_assert!(cands.contains(&item));
            }
        }
    }

    #[test]
    fn summary_totals_match_length(events in event_stream(), w in 1usize..30) {
        let ids: Vec<ItemId> = events.iter().map(|&i| ItemId(i)).collect();
        let omega = (w - 1) / 2;
        let s = RepeatSummary::of(&ids, w, omega);
        prop_assert_eq!(s.total(), events.len());
        prop_assert!(s.repeat_fraction() >= s.eligible_fraction());
    }

    #[test]
    fn widening_omega_never_increases_eligible(events in event_stream(), w in 3usize..30) {
        let ids: Vec<ItemId> = events.iter().map(|&i| ItemId(i)).collect();
        let mut prev = usize::MAX;
        for omega in 0..w {
            let s = RepeatSummary::of(&ids, w, omega);
            prop_assert!(s.eligible_repeat <= prev);
            prev = s.eligible_repeat;
        }
    }

    #[test]
    fn split_concatenation_recovers_sequence(events in event_stream(), frac in 0.0f64..=1.0) {
        let seq = Sequence::from_raw(events.clone());
        let (train, test) = seq.split_at_fraction(frac);
        let mut joined: Vec<u32> = train.iter().map(|i| i.0).collect();
        joined.extend(test.iter().map(|i| i.0));
        prop_assert_eq!(joined, events);
    }

    #[test]
    fn dataset_split_preserves_totals(
        lens in prop::collection::vec(0usize..50, 1..10),
        frac in 0.0f64..=1.0,
    ) {
        let sequences: Vec<Sequence> = lens
            .iter()
            .map(|&n| Sequence::from_raw((0..n as u32).map(|i| i % 7).collect()))
            .collect();
        let d = Dataset::new(sequences, 7);
        let split = d.split(frac);
        let total = split.train.total_consumptions()
            + split.test.iter().map(|s| s.len()).sum::<usize>();
        prop_assert_eq!(total, d.total_consumptions());
    }
}
