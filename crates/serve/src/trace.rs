//! Request-scoped tracing: where inside a request does the time go?
//!
//! The engine's original latency histograms answer "how long did the
//! request take end to end"; tail-latency work needs the breakdown. Every
//! traced request carries a [`TraceCtx`] — a request id plus the
//! monotonic enqueue stamp — through its shard channel. The shard stamps
//! dequeue and end-of-processing, the client stamps receipt of the reply,
//! and the four stamps decompose into three stages:
//!
//! ```text
//! enqueued ──(enqueue_wait)── dequeued ──(score)── processed ──(respond)── received
//! ```
//!
//! `enqueue_wait` is time spent queued behind the shard's other work,
//! `score` is the shard's own processing (feature extraction, scoring,
//! online SGD), and `respond` is the reply channel plus client wakeup.
//! The decomposition itself is the pure [`StageNanos::from_stamps`]
//! kernel, which clamps out-of-order stamps (an `Instant` race across
//! threads) so every stage is non-negative and the stages sum exactly to
//! the clamped end-to-end total — the property `tests/trace_stages.rs`
//! checks for arbitrary stamp quadruples.

use std::time::Instant;

/// Context attached to a traced request at enqueue time.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    /// Engine-unique request id (monotonically assigned at enqueue).
    pub id: u64,
    /// `mix64` of the requesting user id — a stable join key carried
    /// into exemplar traces without shipping the raw id.
    pub user_hash: u64,
    /// When the client handed the request to the shard channel.
    pub enqueued: Instant,
}

/// Stamps a shard embeds in a traced reply so the client can close the
/// trace: the dequeue/processed instants for the stage decomposition,
/// plus the forensic context only the shard could observe.
#[derive(Debug, Clone, Copy)]
pub struct ShardStamp {
    /// When the shard pulled the request off its channel.
    pub dequeued: Instant,
    /// When the shard finished processing (start of the respond leg).
    pub processed: Instant,
    /// Channel depth observed at dequeue.
    pub queue_depth: u64,
    /// Model version that served the request.
    pub version: u64,
}

/// One traced request's stage durations, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageNanos {
    /// Time queued in the shard channel before the shard picked it up.
    pub enqueue_wait: u64,
    /// Shard processing time (scoring / online update).
    pub score: u64,
    /// Reply channel transit plus client wakeup.
    pub respond: u64,
}

impl StageNanos {
    /// Decompose four raw stamps (nanoseconds on any common monotonic
    /// axis) into stage durations.
    ///
    /// Stamps are clamped forward (`dequeued ≥ enqueued`, and so on) so a
    /// cross-thread `Instant` race can never produce a negative stage;
    /// after clamping, `enqueue_wait + score + respond` equals the
    /// clamped end-to-end span exactly.
    pub fn from_stamps(enqueued: u64, dequeued: u64, processed: u64, received: u64) -> StageNanos {
        let dequeued = dequeued.max(enqueued);
        let processed = processed.max(dequeued);
        let received = received.max(processed);
        StageNanos {
            enqueue_wait: dequeued - enqueued,
            score: processed - dequeued,
            respond: received - processed,
        }
    }

    /// The [`Instant`]-based form used on the live path: `received` is
    /// now. Saturates at `u64::MAX` nanoseconds per stage.
    pub fn from_instants(enqueued: Instant, dequeued: Instant, processed: Instant) -> StageNanos {
        let received = Instant::now();
        let ns = |d: std::time::Duration| d.as_nanos().min(u64::MAX as u128) as u64;
        // `duration_since` with saturation gives the same clamping as
        // `from_stamps`: a later stamp never reads before an earlier one.
        StageNanos {
            enqueue_wait: ns(dequeued.saturating_duration_since(enqueued)),
            score: ns(processed.saturating_duration_since(dequeued)),
            respond: ns(received.saturating_duration_since(processed)),
        }
    }

    /// End-to-end nanoseconds (sum of the three stages, saturating).
    pub fn total(&self) -> u64 {
        self.enqueue_wait
            .saturating_add(self.score)
            .saturating_add(self.respond)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_stamps_decompose_exactly() {
        let s = StageNanos::from_stamps(100, 250, 900, 1000);
        assert_eq!(s.enqueue_wait, 150);
        assert_eq!(s.score, 650);
        assert_eq!(s.respond, 100);
        assert_eq!(s.total(), 900);
    }

    #[test]
    fn out_of_order_stamps_clamp_to_zero_stages() {
        // A dequeue stamp that reads before the enqueue stamp (cross-CPU
        // Instant skew) collapses that stage to zero, not underflow.
        let s = StageNanos::from_stamps(500, 100, 600, 550);
        assert_eq!(s.enqueue_wait, 0);
        assert_eq!(s.score, 100);
        assert_eq!(s.respond, 0);
        assert_eq!(s.total(), 100);
    }

    #[test]
    fn instant_form_matches_stamp_form_shape() {
        let t0 = Instant::now();
        let s = StageNanos::from_instants(t0, t0, t0);
        assert_eq!(s.enqueue_wait, 0);
        assert_eq!(s.score, 0);
        // respond = now - t0: tiny but non-negative.
        assert!(s.total() >= s.respond);
    }
}
