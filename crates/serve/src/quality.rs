//! Online quality monitoring: is the model currently serving still good?
//!
//! The paper's evaluation (hit-rate@N / MRR over the next reconsumption,
//! Defs 1–2 and §5) is offline; this module runs the same protocol as a
//! stream. Each shard remembers the last top-N it served per user
//! together with **the model version installed at serve time**. When that
//! user's next *eligible repeat* arrives (the paper's recommendation
//! opportunity — a novel event could never be in a repeat list, so
//! scoring it would conflate exploration with ranking quality), the
//! remembered list is scored against it: the consumed item's 1-based rank
//! feeds an [`rrc_eval::RankingResult`] (the exact accumulator the
//! offline harness uses) plus hit@{1,5,10} counters, cumulative per
//! version and windowed per version. Attribution by serve-time version is
//! what keeps quality honest across hot-swaps: a list served by version
//! A but evaluated after B installed still scores against A.
//!
//! A second, cheaper signal watches for **drift**: the rolling mean of
//! the top-1 predicted score and of the top-1 feature-vector mean versus
//! their cumulative means since the current model was installed. When the
//! rolling mean walks away from the since-install mean, the serving
//! distribution has shifted under the model — time to retrain. Values
//! are kept in integer micro-units so the accumulators stay wait-free
//! atomics.

use rrc_eval::RankingResult;
use rrc_obs::{Json, Registry, WindowSpec, WindowedCounter, WindowedSum};
use rrc_sequence::{ConsumptionKind, ItemId, UserId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Hit@k cutoffs tracked by the monitor.
pub const QUALITY_AT: [usize; 3] = [1, 5, 10];

/// Settings for the online quality monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QualityConfig {
    /// Rolling window for the per-version windowed quality series and the
    /// drift means.
    pub window: WindowSpec,
}

/// Clamping f64 → integer micro-units conversion.
pub(crate) fn micro(x: f64) -> i64 {
    let scaled = x * 1e6;
    if scaled.is_nan() {
        0
    } else {
        scaled.clamp(i64::MIN as f64, i64::MAX as f64) as i64
    }
}

/// Wait-free drift accumulator shared by every shard: rolling and
/// since-install sums of the top-1 predicted score and feature mean.
#[derive(Debug)]
pub(crate) struct DriftAccum {
    score_window: WindowedSum,
    feat_window: WindowedSum,
    n_window: WindowedCounter,
    score_cum: AtomicI64,
    feat_cum: AtomicI64,
    n_cum: AtomicU64,
}

/// Point-in-time drift signal, in micro-units: rolling mean minus
/// since-install mean. Near zero while the serving distribution matches
/// what the installed model has seen; walks away under drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftValues {
    /// Rolling − since-install mean of the top-1 predicted score (µ).
    pub score_micro: i64,
    /// Rolling − since-install mean of the top-1 feature mean (µ).
    pub feature_micro: i64,
    /// Samples inside the rolling window.
    pub window_samples: u64,
    /// Samples since the current model was installed.
    pub samples_since_install: u64,
}

impl DriftAccum {
    pub fn new(spec: WindowSpec) -> Self {
        DriftAccum {
            score_window: WindowedSum::new(spec),
            feat_window: WindowedSum::new(spec),
            n_window: WindowedCounter::new(spec),
            score_cum: AtomicI64::new(0),
            feat_cum: AtomicI64::new(0),
            n_cum: AtomicU64::new(0),
        }
    }

    /// Record one top-1 sample (micro-units).
    pub fn record(&self, score_micro: i64, feat_micro: i64) {
        self.score_window.add(score_micro);
        self.feat_window.add(feat_micro);
        self.n_window.inc();
        self.score_cum.fetch_add(score_micro, Ordering::Relaxed);
        self.feat_cum.fetch_add(feat_micro, Ordering::Relaxed);
        self.n_cum.fetch_add(1, Ordering::Relaxed);
    }

    /// Restart the since-install baseline (called when a new model
    /// installs). Samples racing the reset smear into either epoch —
    /// harmless for a monitoring signal.
    pub fn reset_baseline(&self) {
        self.score_cum.store(0, Ordering::Relaxed);
        self.feat_cum.store(0, Ordering::Relaxed);
        self.n_cum.store(0, Ordering::Relaxed);
    }

    pub fn values(&self) -> DriftValues {
        let wn = self.n_window.window_total();
        let cn = self.n_cum.load(Ordering::Relaxed);
        let mean = |sum: i64, n: u64| if n == 0 { 0 } else { sum / n as i64 };
        let w_score = mean(self.score_window.window_sum(), wn);
        let w_feat = mean(self.feat_window.window_sum(), wn);
        let c_score = mean(self.score_cum.load(Ordering::Relaxed), cn);
        let c_feat = mean(self.feat_cum.load(Ordering::Relaxed), cn);
        DriftValues {
            score_micro: w_score - c_score,
            feature_micro: w_feat - c_feat,
            window_samples: wn,
            samples_since_install: cn,
        }
    }
}

impl DriftValues {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("score_micro", Json::I64(self.score_micro)),
            ("feature_micro", Json::I64(self.feature_micro)),
            ("window_samples", Json::U64(self.window_samples)),
            (
                "samples_since_install",
                Json::U64(self.samples_since_install),
            ),
        ])
    }
}

/// Windowed per-version registry handles. Identities are stable, so the
/// engine's report path re-registers the same names to read them.
pub(crate) struct VersionHandles {
    pub opportunities: Arc<WindowedCounter>,
    pub hits: [Arc<WindowedCounter>; 3],
    pub rr_micro: Arc<WindowedCounter>,
}

pub(crate) fn version_handles(
    registry: &Registry,
    spec: WindowSpec,
    version: u64,
) -> VersionHandles {
    let v = version.to_string();
    VersionHandles {
        opportunities: registry.windowed_counter_with(
            "online_opportunities_window",
            &[("version", &v)],
            spec,
        ),
        hits: QUALITY_AT.map(|k| {
            registry.windowed_counter_with(
                "online_hits_window",
                &[("k", &k.to_string()), ("version", &v)],
                spec,
            )
        }),
        rr_micro: registry.windowed_counter_with(
            "online_rr_micro_window",
            &[("version", &v)],
            spec,
        ),
    }
}

/// Cumulative quality attributed to one model version.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VersionQuality {
    /// Model version installed when the evaluated lists were served.
    pub version: u64,
    /// The offline harness's accumulator: opportunities, MRR, nDCG,
    /// hits-anywhere-in-list.
    pub ranking: RankingResult,
    /// Hits at the [`QUALITY_AT`] cutoffs.
    pub hits_at: [u64; 3],
}

impl VersionQuality {
    /// hit@`QUALITY_AT[i]` rate (0 when no opportunities).
    pub fn hit_rate_at(&self, i: usize) -> f64 {
        if self.ranking.opportunities == 0 {
            0.0
        } else {
            self.hits_at[i] as f64 / self.ranking.opportunities as f64
        }
    }

    fn merge(&mut self, other: &VersionQuality) {
        self.ranking.merge(&other.ranking);
        for (a, b) in self.hits_at.iter_mut().zip(other.hits_at) {
            *a += b;
        }
    }
}

/// One pending evaluation: the last list served to a user, stamped with
/// the model version that produced it.
struct PendingRec {
    version: u64,
    items: Vec<ItemId>,
}

/// Per-shard monitor state. Owned exclusively by its shard thread —
/// only the registry handles and [`DriftAccum`] are shared.
pub(crate) struct ShardQuality {
    registry: Registry,
    spec: WindowSpec,
    drift: Arc<DriftAccum>,
    pending: HashMap<u32, PendingRec>,
    versions: BTreeMap<u64, VersionQuality>,
    handles: HashMap<u64, VersionHandles>,
}

impl ShardQuality {
    pub fn new(registry: Registry, spec: WindowSpec, drift: Arc<DriftAccum>) -> Self {
        ShardQuality {
            registry,
            spec,
            drift,
            pending: HashMap::new(),
            versions: BTreeMap::new(),
            handles: HashMap::new(),
        }
    }

    /// Remember the list just served (replacing any unevaluated older
    /// one) and feed the drift accumulator with the top-1 sample.
    pub fn on_recommend(
        &mut self,
        user: UserId,
        items: &[ItemId],
        version: u64,
        top1_sample: Option<(i64, i64)>,
    ) {
        if let Some((score_micro, feat_micro)) = top1_sample {
            self.drift.record(score_micro, feat_micro);
        }
        if !items.is_empty() {
            self.pending.insert(
                user.0,
                PendingRec {
                    version,
                    items: items.to_vec(),
                },
            );
        }
    }

    /// Score the user's pending list if this event is a recommendation
    /// opportunity (an eligible repeat). Each list is evaluated at most
    /// once, against the first opportunity after it was served.
    pub fn on_observe(&mut self, user: UserId, item: ItemId, kind: ConsumptionKind) {
        if kind != ConsumptionKind::EligibleRepeat {
            return;
        }
        let Some(pending) = self.pending.remove(&user.0) else {
            return;
        };
        let rank = pending.items.iter().position(|&v| v == item).map(|p| p + 1);

        let cum = self
            .versions
            .entry(pending.version)
            .or_insert_with(|| VersionQuality {
                version: pending.version,
                ..VersionQuality::default()
            });
        cum.ranking.record(rank);
        if let Some(rank) = rank {
            for (i, k) in QUALITY_AT.iter().enumerate() {
                if rank <= *k {
                    cum.hits_at[i] += 1;
                }
            }
        }

        let handles = self
            .handles
            .entry(pending.version)
            .or_insert_with(|| version_handles(&self.registry, self.spec, pending.version));
        handles.opportunities.inc();
        if let Some(rank) = rank {
            for (i, k) in QUALITY_AT.iter().enumerate() {
                if rank <= *k {
                    handles.hits[i].inc();
                }
            }
            handles.rr_micro.add(micro(1.0 / rank as f64) as u64);
        }
    }

    /// Cumulative per-version quality owned by this shard.
    pub fn export(&self) -> Vec<VersionQuality> {
        self.versions.values().copied().collect()
    }
}

/// Per-version quality with the windowed view attached — one row of the
/// engine-wide [`QualityReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionQualityReport {
    /// Cumulative quality for this version (merged across shards).
    pub quality: VersionQuality,
    /// Opportunities inside the rolling window.
    pub windowed_opportunities: u64,
    /// Windowed hits at the [`QUALITY_AT`] cutoffs.
    pub windowed_hits_at: [u64; 3],
    /// Windowed Σ 1/rank in micro-units.
    pub windowed_rr_micro: u64,
}

impl VersionQualityReport {
    /// Windowed hit@`QUALITY_AT[i]` rate.
    pub fn windowed_hit_rate_at(&self, i: usize) -> f64 {
        if self.windowed_opportunities == 0 {
            0.0
        } else {
            self.windowed_hits_at[i] as f64 / self.windowed_opportunities as f64
        }
    }

    /// Windowed mean reciprocal rank.
    pub fn windowed_mrr(&self) -> f64 {
        if self.windowed_opportunities == 0 {
            0.0
        } else {
            self.windowed_rr_micro as f64 / 1e6 / self.windowed_opportunities as f64
        }
    }
}

/// Engine-wide online quality: per-version rows (ordered by version) plus
/// the drift signal.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    pub versions: Vec<VersionQualityReport>,
    pub drift: DriftValues,
}

impl QualityReport {
    /// All versions folded together — the headline "how are we doing".
    pub fn overall(&self) -> VersionQuality {
        let mut total = VersionQuality::default();
        for v in &self.versions {
            total.merge(&v.quality);
        }
        total
    }

    /// Windowed hit@10 over since-install hit@10, folded across versions
    /// — the SLO engine's quality-regression signal. `None` until both
    /// the window and the cumulative ledger have opportunities (absence
    /// of traffic is not a quality breach).
    pub fn windowed_over_cumulative_hit10(&self) -> Option<f64> {
        let cum_rate = self.overall().hit_rate_at(2);
        if cum_rate <= 0.0 {
            return None;
        }
        let w_opp: u64 = self.versions.iter().map(|v| v.windowed_opportunities).sum();
        if w_opp == 0 {
            return None;
        }
        let w_hits: u64 = self.versions.iter().map(|v| v.windowed_hits_at[2]).sum();
        Some((w_hits as f64 / w_opp as f64) / cum_rate)
    }

    pub fn to_json(&self) -> Json {
        let overall = self.overall();
        Json::obj([
            (
                "versions",
                Json::Arr(
                    self.versions
                        .iter()
                        .map(|v| {
                            Json::obj([
                                ("version", Json::U64(v.quality.version)),
                                ("opportunities", Json::U64(v.quality.ranking.opportunities)),
                                ("hit1", Json::F64(v.quality.hit_rate_at(0))),
                                ("hit5", Json::F64(v.quality.hit_rate_at(1))),
                                ("hit10", Json::F64(v.quality.hit_rate_at(2))),
                                ("mrr", Json::F64(v.quality.ranking.mrr())),
                                (
                                    "windowed",
                                    Json::obj([
                                        ("opportunities", Json::U64(v.windowed_opportunities)),
                                        ("hit1", Json::F64(v.windowed_hit_rate_at(0))),
                                        ("hit5", Json::F64(v.windowed_hit_rate_at(1))),
                                        ("hit10", Json::F64(v.windowed_hit_rate_at(2))),
                                        ("mrr", Json::F64(v.windowed_mrr())),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "overall",
                Json::obj([
                    ("opportunities", Json::U64(overall.ranking.opportunities)),
                    ("hit1", Json::F64(overall.hit_rate_at(0))),
                    ("hit5", Json::F64(overall.hit_rate_at(1))),
                    ("hit10", Json::F64(overall.hit_rate_at(2))),
                    ("mrr", Json::F64(overall.ranking.mrr())),
                ]),
            ),
            ("drift", self.drift.to_json()),
        ])
    }
}

/// Assemble the engine-wide report: merge the shards' cumulative
/// per-version quality and attach the windowed registry series.
pub(crate) fn build_report(
    registry: &Registry,
    spec: WindowSpec,
    shard_exports: Vec<Vec<VersionQuality>>,
    drift: DriftValues,
) -> QualityReport {
    let mut merged: BTreeMap<u64, VersionQuality> = BTreeMap::new();
    for shard in shard_exports {
        for vq in shard {
            merged
                .entry(vq.version)
                .or_insert_with(|| VersionQuality {
                    version: vq.version,
                    ..VersionQuality::default()
                })
                .merge(&vq);
        }
    }
    let versions = merged
        .into_values()
        .map(|quality| {
            let handles = version_handles(registry, spec, quality.version);
            VersionQualityReport {
                quality,
                windowed_opportunities: handles.opportunities.window_total(),
                windowed_hits_at: [
                    handles.hits[0].window_total(),
                    handles.hits[1].window_total(),
                    handles.hits[2].window_total(),
                ],
                windowed_rr_micro: handles.rr_micro.window_total(),
            }
        })
        .collect();
    QualityReport { versions, drift }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec() -> WindowSpec {
        WindowSpec {
            slots: 4,
            epoch: Duration::from_secs(60),
        }
    }

    fn monitor() -> ShardQuality {
        let registry = Registry::new();
        let drift = Arc::new(DriftAccum::new(spec()));
        ShardQuality::new(registry, spec(), drift)
    }

    #[test]
    fn pending_list_scores_at_next_eligible_repeat_only() {
        let mut q = monitor();
        let items: Vec<ItemId> = (0..10).map(ItemId).collect();
        q.on_recommend(UserId(1), &items, 3, None);
        // A novel event is not an opportunity; the list stays pending.
        q.on_observe(UserId(1), ItemId(99), ConsumptionKind::Novel);
        assert!(q.export().is_empty());
        // The eligible repeat scores it: item 4 sits at rank 5.
        q.on_observe(UserId(1), ItemId(4), ConsumptionKind::EligibleRepeat);
        let out = q.export();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].version, 3);
        assert_eq!(out[0].ranking.opportunities, 1);
        assert_eq!(out[0].hits_at, [0, 1, 1]); // rank 5: miss@1, hit@5, hit@10
        assert!((out[0].ranking.mrr() - 0.2).abs() < 1e-12);
        // Evaluated once: a second repeat without a new list is ignored.
        q.on_observe(UserId(1), ItemId(4), ConsumptionKind::EligibleRepeat);
        assert_eq!(q.export()[0].ranking.opportunities, 1);
    }

    #[test]
    fn attribution_follows_serve_time_version() {
        let mut q = monitor();
        q.on_recommend(UserId(7), &[ItemId(1)], 1, None);
        // Version 2 installs before the evaluation arrives; the hit must
        // still land on version 1.
        q.on_recommend(UserId(8), &[ItemId(2)], 2, None);
        q.on_observe(UserId(7), ItemId(1), ConsumptionKind::EligibleRepeat);
        q.on_observe(UserId(8), ItemId(9), ConsumptionKind::EligibleRepeat);
        let out = q.export();
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].version, out[0].hits_at[0]), (1, 1));
        assert_eq!((out[1].version, out[1].hits_at[0]), (2, 0));
        assert_eq!(out[1].ranking.opportunities, 1);
    }

    #[test]
    fn drift_is_zero_on_matching_distributions_and_tracks_shift() {
        let d = DriftAccum::new(spec());
        for _ in 0..50 {
            d.record(micro(0.5), micro(0.25));
        }
        let v = d.values();
        assert_eq!(v.score_micro, 0, "window and baseline agree");
        assert_eq!(v.window_samples, 50);
        // New model installs: baseline resets, then the stream shifts.
        d.reset_baseline();
        for _ in 0..50 {
            d.record(micro(0.9), micro(0.25));
        }
        let v = d.values();
        // Window still holds the 0.5 samples, baseline only 0.9s.
        assert!(v.score_micro < -100_000, "score drift {v:?}");
        assert_eq!(v.feature_micro, 0);
        assert_eq!(v.samples_since_install, 50);
    }

    #[test]
    fn report_merges_shards_and_serves_overall() {
        let registry = Registry::new();
        let mut a = VersionQuality {
            version: 1,
            ..VersionQuality::default()
        };
        a.ranking.record(Some(1));
        a.hits_at = [1, 1, 1];
        let mut b = VersionQuality {
            version: 1,
            ..VersionQuality::default()
        };
        b.ranking.record(None);
        let report = build_report(
            &registry,
            spec(),
            vec![vec![a], vec![b]],
            DriftAccum::new(spec()).values(),
        );
        assert_eq!(report.versions.len(), 1);
        let v = &report.versions[0];
        assert_eq!(v.quality.ranking.opportunities, 2);
        assert!((v.quality.hit_rate_at(2) - 0.5).abs() < 1e-12);
        let overall = report.overall();
        assert_eq!(overall.ranking.opportunities, 2);
        // JSON renders with finite numbers.
        let doc = Json::parse(&report.to_json().render()).unwrap();
        assert!(doc
            .at("overall.hit10")
            .unwrap()
            .as_f64()
            .unwrap()
            .is_finite());
        assert!(doc.at("drift.score_micro").is_some());
    }

    #[test]
    fn micro_conversion_clamps_and_zeroes_nan() {
        assert_eq!(micro(1.5), 1_500_000);
        assert_eq!(micro(-0.25), -250_000);
        assert_eq!(micro(f64::NAN), 0);
        assert_eq!(micro(f64::INFINITY), i64::MAX);
    }
}
