//! Copy-on-write model overlay — how shards learn online without touching
//! the shared snapshot.
//!
//! Every shard serves from one immutable `Arc<TsPprModel>` snapshot. When
//! online learning needs to *write* a row (a user factor, item factor, or
//! per-user transform), the row is materialised into the shard-local
//! overlay together with a copy of its base value; reads prefer the
//! overlay. The overlay therefore *is* the shard's accumulated online SGD
//! delta: `diff = current − base`, harvested at model-swap time and merged
//! into the incoming model by the engine (see `crate::engine`).
//!
//! [`ModelOverlay`] implements [`ModelParams`], so the exact same scoring
//! and SGD code (`rrc_core::online`) runs against a plain model and
//! against a snapshot+overlay.

use rrc_core::{ModelParams, TsPprModel};
use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, UserId};
use std::collections::HashMap;
use std::sync::Arc;

/// A materialised row: the base it was copied from and its current value.
#[derive(Debug, Clone)]
struct CowRow {
    base: Vec<f64>,
    cur: Vec<f64>,
}

impl CowRow {
    fn new(base: &[f64]) -> Self {
        CowRow {
            base: base.to_vec(),
            cur: base.to_vec(),
        }
    }

    fn diff(&self) -> Vec<f64> {
        self.cur
            .iter()
            .zip(&self.base)
            .map(|(c, b)| c - b)
            .collect()
    }

    /// Carry the accumulated delta onto a fresh base.
    fn rebase(&mut self, new_base: &[f64]) {
        for ((c, b), nb) in self.cur.iter_mut().zip(&mut self.base).zip(new_base) {
            *c = *nb + (*c - *b);
            *b = *nb;
        }
    }
}

/// A materialised transform: base and current `A_u`.
#[derive(Debug, Clone)]
struct CowMat {
    base: DMatrix,
    cur: DMatrix,
}

impl CowMat {
    fn new(base: &DMatrix) -> Self {
        CowMat {
            base: base.clone(),
            cur: base.clone(),
        }
    }

    fn diff(&self) -> Vec<f64> {
        self.cur
            .as_slice()
            .iter()
            .zip(self.base.as_slice())
            .map(|(c, b)| c - b)
            .collect()
    }

    fn rebase(&mut self, new_base: &DMatrix) {
        let cur = self.cur.as_mut_slice();
        let base = self.base.as_mut_slice();
        for ((c, b), nb) in cur.iter_mut().zip(base.iter_mut()).zip(new_base.as_slice()) {
            *c = *nb + (*c - *b);
            *b = *nb;
        }
    }
}

/// The additive online-SGD delta harvested from one shard.
///
/// Rows are `(id, current − base)` element-wise differences; transforms are
/// flattened row-major. Multiple shards' diffs for the same item row sum.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelDiff {
    pub users: Vec<(u32, Vec<f64>)>,
    pub items: Vec<(u32, Vec<f64>)>,
    pub transforms: Vec<(u32, Vec<f64>)>,
}

impl ModelDiff {
    /// True when no parameter moved.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty() && self.items.is_empty() && self.transforms.is_empty()
    }

    /// Number of touched rows (user + item + transform).
    pub fn touched_rows(&self) -> usize {
        self.users.len() + self.items.len() + self.transforms.len()
    }

    /// Add this diff onto `model` (used by the engine when publishing a
    /// new snapshot: refreshed weights + every shard's online learning).
    pub fn apply_to(&self, model: &mut TsPprModel) {
        for (u, d) in &self.users {
            let row = ModelParams::user_factor_mut(model, UserId(*u));
            for (x, dx) in row.iter_mut().zip(d) {
                *x += dx;
            }
        }
        for (v, d) in &self.items {
            let row = ModelParams::item_factor_mut(model, ItemId(*v));
            for (x, dx) in row.iter_mut().zip(d) {
                *x += dx;
            }
        }
        for (u, d) in &self.transforms {
            let a = ModelParams::transform_mut(model, UserId(*u));
            for (x, dx) in a.as_mut_slice().iter_mut().zip(d) {
                *x += dx;
            }
        }
    }
}

/// Shard-local view of the model: shared snapshot + copy-on-write delta.
#[derive(Debug)]
pub struct ModelOverlay {
    base: Arc<TsPprModel>,
    users: HashMap<u32, CowRow>,
    items: HashMap<u32, CowRow>,
    transforms: HashMap<u32, CowMat>,
}

impl ModelOverlay {
    pub fn new(base: Arc<TsPprModel>) -> Self {
        ModelOverlay {
            base,
            users: HashMap::new(),
            items: HashMap::new(),
            transforms: HashMap::new(),
        }
    }

    /// The snapshot this overlay reads through to.
    pub fn snapshot(&self) -> &Arc<TsPprModel> {
        &self.base
    }

    /// Extract the accumulated delta and reset the overlay to pass-through.
    ///
    /// Rows whose delta is exactly zero (touched but unchanged) are
    /// dropped. Output is sorted by id so harvests are deterministic.
    pub fn harvest(&mut self) -> ModelDiff {
        fn rows(map: &mut HashMap<u32, CowRow>) -> Vec<(u32, Vec<f64>)> {
            let mut out: Vec<(u32, Vec<f64>)> = map
                .drain()
                .map(|(id, row)| (id, row.diff()))
                .filter(|(_, d)| d.iter().any(|&x| x != 0.0))
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        }
        let users = rows(&mut self.users);
        let items = rows(&mut self.items);
        let mut transforms: Vec<(u32, Vec<f64>)> = self
            .transforms
            .drain()
            .map(|(id, m)| (id, m.diff()))
            .filter(|(_, d)| d.iter().any(|&x| x != 0.0))
            .collect();
        transforms.sort_by_key(|(id, _)| *id);
        ModelDiff {
            users,
            items,
            transforms,
        }
    }

    /// Switch to a new snapshot. Deltas accumulated since the last
    /// [`harvest`](ModelOverlay::harvest) are carried over (rebased onto
    /// the new weights) so no online learning is lost mid-swap.
    pub fn install(&mut self, new_base: Arc<TsPprModel>) {
        for (id, row) in &mut self.users {
            row.rebase(new_base.user_factor(UserId(*id)));
        }
        for (id, row) in &mut self.items {
            row.rebase(new_base.item_factor(ItemId(*id)));
        }
        for (id, m) in &mut self.transforms {
            m.rebase(new_base.transform(UserId(*id)));
        }
        self.base = new_base;
    }

    /// Rows currently materialised (diagnostics).
    pub fn touched_rows(&self) -> usize {
        self.users.len() + self.items.len() + self.transforms.len()
    }
}

impl ModelParams for ModelOverlay {
    fn k(&self) -> usize {
        self.base.k()
    }

    fn f_dim(&self) -> usize {
        self.base.f_dim()
    }

    fn user_factor(&self, user: UserId) -> &[f64] {
        match self.users.get(&user.0) {
            Some(row) => &row.cur,
            None => self.base.user_factor(user),
        }
    }

    fn item_factor(&self, item: ItemId) -> &[f64] {
        match self.items.get(&item.0) {
            Some(row) => &row.cur,
            None => self.base.item_factor(item),
        }
    }

    fn transform(&self, user: UserId) -> &DMatrix {
        match self.transforms.get(&user.0) {
            Some(m) => &m.cur,
            None => self.base.transform(user),
        }
    }

    fn user_factor_mut(&mut self, user: UserId) -> &mut [f64] {
        let base = &self.base;
        &mut self
            .users
            .entry(user.0)
            .or_insert_with(|| CowRow::new(base.user_factor(user)))
            .cur
    }

    fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64] {
        let base = &self.base;
        &mut self
            .items
            .entry(item.0)
            .or_insert_with(|| CowRow::new(base.item_factor(item)))
            .cur
    }

    fn transform_mut(&mut self, user: UserId) -> &mut DMatrix {
        let base = &self.base;
        &mut self
            .transforms
            .entry(user.0)
            .or_insert_with(|| CowMat::new(base.transform(user)))
            .cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_model() -> Arc<TsPprModel> {
        let mut rng = StdRng::seed_from_u64(42);
        Arc::new(TsPprModel::init(&mut rng, 4, 6, 3, 4, 0.1, 0.05))
    }

    #[test]
    fn reads_pass_through_until_written() {
        let base = base_model();
        let overlay = ModelOverlay::new(base.clone());
        let u = UserId(1);
        assert_eq!(overlay.user_factor(u), base.user_factor(u));
        let f = [0.3, 0.7, 0.1, 0.4];
        assert_eq!(
            overlay.score(u, ItemId(2), &f),
            base.score(u, ItemId(2), &f)
        );
        assert_eq!(overlay.touched_rows(), 0);
    }

    #[test]
    fn writes_shadow_without_touching_base() {
        let base = base_model();
        let mut overlay = ModelOverlay::new(base.clone());
        let u = UserId(0);
        let before = base.user_factor(u).to_vec();
        overlay.user_factor_mut(u)[0] += 1.0;
        assert_eq!(base.user_factor(u), before.as_slice(), "base must not move");
        assert!((overlay.user_factor(u)[0] - (before[0] + 1.0)).abs() < 1e-15);
        assert_eq!(overlay.touched_rows(), 1);
    }

    #[test]
    fn harvest_returns_exact_delta_and_resets() {
        let base = base_model();
        let mut overlay = ModelOverlay::new(base.clone());
        overlay.user_factor_mut(UserId(2))[1] += 0.5;
        overlay.item_factor_mut(ItemId(3))[0] -= 0.25;
        overlay.transform_mut(UserId(2)).as_mut_slice()[4] += 2.0;
        // A touched-but-unchanged row should not appear in the diff.
        let _ = overlay.user_factor_mut(UserId(0));

        let diff = overlay.harvest();
        assert_eq!(diff.users.len(), 1);
        assert_eq!(diff.users[0].0, 2);
        assert!((diff.users[0].1[1] - 0.5).abs() < 1e-15);
        assert_eq!(diff.items.len(), 1);
        assert_eq!(diff.items[0].0, 3);
        assert!((diff.items[0].1[0] + 0.25).abs() < 1e-12);
        assert_eq!(&diff.items[0].1[1..], &[0.0, 0.0]);
        assert_eq!(diff.transforms.len(), 1);
        assert_eq!(overlay.touched_rows(), 0, "harvest resets the overlay");
        assert!(overlay.harvest().is_empty());

        // Applying the diff to a copy of the base reproduces the overlay's
        // pre-harvest view.
        let mut merged = (*base).clone();
        diff.apply_to(&mut merged);
        assert!(
            (merged.user_factor(UserId(2))[1] - (base.user_factor(UserId(2))[1] + 0.5)).abs()
                < 1e-15
        );
        assert!(
            (merged.item_factor(ItemId(3))[0] - (base.item_factor(ItemId(3))[0] - 0.25)).abs()
                < 1e-15
        );
    }

    #[test]
    fn install_rebases_unharvested_deltas() {
        let base = base_model();
        let mut overlay = ModelOverlay::new(base.clone());
        overlay.user_factor_mut(UserId(1))[0] += 0.75;

        let mut refreshed = (*base).clone();
        ModelParams::user_factor_mut(&mut refreshed, UserId(1))[0] = 10.0;
        overlay.install(Arc::new(refreshed));

        // New base + carried delta.
        assert!((overlay.user_factor(UserId(1))[0] - 10.75).abs() < 1e-12);
        // And the delta is still harvestable exactly once.
        let diff = overlay.harvest();
        assert!((diff.users[0].1[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn online_step_works_against_overlay() {
        use rrc_core::{online_step_single, OnlineConfig};
        use rrc_features::{FeaturePipeline, TrainStats};
        use rrc_sequence::{Dataset, Sequence, WindowState};

        let base = base_model();
        let mut overlay = ModelOverlay::new(base.clone());
        let data = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 3, 0, 1, 2, 3])], 6);
        let stats = TrainStats::compute(&data, 6);
        let pipeline = FeaturePipeline::standard();
        let window = WindowState::warmed(6, &[ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
        let cfg = OnlineConfig {
            window: 6,
            omega: 0,
            negatives_per_event: 2,
            ..OnlineConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let updates = online_step_single(
            &mut overlay,
            &pipeline,
            &stats,
            &cfg,
            UserId(0),
            &window,
            &mut rng,
            ItemId(1),
        );
        assert!(updates > 0);
        assert!(
            !overlay.harvest().is_empty(),
            "SGD must land in the overlay"
        );
        assert_eq!(base.user_factor(UserId(0)), overlay.user_factor(UserId(0)));
    }
}
