//! Registry-driven hot swap: watch an [`rrc_store::ModelRegistry`]
//! directory and install every newly published version into a running
//! [`ServeEngine`] — the deployment loop that connects offline training
//! (which publishes through the registry) to online serving.
//!
//! The watcher polls the manifest (cheap: one small text file) and only
//! touches a model file when the latest version number advances. Loads go
//! through the store's validated reader, so a torn or corrupt publish can
//! never reach the engine — it is counted in
//! `serve_registry_errors_total` and retried on the next poll. A model
//! whose shape differs from the serving model is likewise rejected
//! (`ServeEngine::swap_model` requires identical dimensions).

use crate::engine::ServeEngine;
use rrc_store::{ModelRegistry, ModelView};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shared log of completed hot-swaps: `(registry version, install
/// instant)` per installed model. A publisher that records its own
/// publish instants can join the two series to measure publish-to-swap
/// freshness latency — the continuous pipeline's end-to-end deployment
/// lag.
#[derive(Debug, Default)]
pub struct SwapLog {
    entries: Mutex<Vec<(u64, Instant)>>,
}

impl SwapLog {
    /// A fresh, empty log.
    pub fn new() -> Arc<SwapLog> {
        Arc::new(SwapLog::default())
    }

    /// Record one installed version.
    pub fn record(&self, version: u64, at: Instant) {
        self.entries
            .lock()
            .expect("swap log lock")
            .push((version, at));
    }

    /// Snapshot of everything recorded so far, in install order.
    pub fn entries(&self) -> Vec<(u64, Instant)> {
        self.entries.lock().expect("swap log lock").clone()
    }
}

/// One poll of the registry against an engine. Returns the version that
/// was installed, if any. This is the watcher's whole step, factored out
/// so tests (and manual deployment scripts) can drive it synchronously.
pub fn poll_once(
    engine: &ServeEngine,
    dir: &std::path::Path,
    last_seen: &mut Option<u64>,
) -> Result<Option<u64>, String> {
    let registry = ModelRegistry::open(dir).map_err(|e| format!("open registry: {e}"))?;
    let Some((version, path)) = registry.latest() else {
        return Ok(None); // empty registry: nothing published yet
    };
    if last_seen.is_some_and(|seen| version <= seen) {
        return Ok(None);
    }
    // The view form keeps the file's metadata (notably the training-config
    // fingerprint) available alongside the parameters.
    let view = ModelView::open(&path).map_err(|e| format!("load version {version}: {e}"))?;
    let current = engine.model();
    if (view.num_users(), view.num_items()) != (current.num_users(), current.num_items()) {
        // Remember the version anyway: a wrongly-shaped publish would
        // otherwise be retried (and fail) every poll forever.
        *last_seen = Some(version);
        return Err(format!(
            "version {version} has shape ({} users, {} items), engine serves ({}, {})",
            view.num_users(),
            view.num_items(),
            current.num_users(),
            current.num_items()
        ));
    }
    engine.swap_model_tagged(view.to_model(), view.fingerprint());
    *last_seen = Some(version);
    Ok(Some(version))
}

/// Background thread that keeps a [`ServeEngine`] on the newest
/// registry version.
pub struct RegistryWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RegistryWatcher {
    /// Start watching `dir`, polling every `interval`. The engine's own
    /// metrics registry gains `serve_registry_polls_total`,
    /// `serve_registry_swaps_total`, and `serve_registry_errors_total`.
    pub fn spawn(
        engine: Arc<ServeEngine>,
        dir: impl Into<PathBuf>,
        interval: Duration,
    ) -> RegistryWatcher {
        RegistryWatcher::spawn_logged(engine, dir, interval, None)
    }

    /// [`RegistryWatcher::spawn`], additionally recording every completed
    /// install into `log` (registry version + instant) so callers can
    /// measure publish-to-swap freshness.
    pub fn spawn_logged(
        engine: Arc<ServeEngine>,
        dir: impl Into<PathBuf>,
        interval: Duration,
        log: Option<Arc<SwapLog>>,
    ) -> RegistryWatcher {
        let dir = dir.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("registry-watcher".to_string())
            .spawn(move || {
                let polls = engine
                    .metrics_registry()
                    .counter("serve_registry_polls_total");
                let swaps = engine
                    .metrics_registry()
                    .counter("serve_registry_swaps_total");
                let errors = engine
                    .metrics_registry()
                    .counter("serve_registry_errors_total");
                let mut last_seen: Option<u64> = None;
                while !stop_flag.load(Ordering::Relaxed) {
                    polls.inc();
                    match poll_once(&engine, &dir, &mut last_seen) {
                        Ok(Some(version)) => {
                            swaps.inc();
                            if let Some(log) = &log {
                                log.record(version, Instant::now());
                            }
                        }
                        Ok(None) => {}
                        Err(_) => errors.inc(),
                    }
                    // Sleep in short slices so stop() never waits a full
                    // interval.
                    let mut remaining = interval;
                    while !stop_flag.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn registry watcher thread");
        RegistryWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the watcher and wait for its thread (drops its engine `Arc`,
    /// so the caller can reclaim the engine for shutdown).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().expect("registry watcher thread panicked");
        }
    }
}

impl Drop for RegistryWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}
