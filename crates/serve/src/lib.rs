//! `rrc-serve`: a sharded, multi-threaded online serving engine for
//! TS-PPR.
//!
//! The paper's serving story ([`rrc_core::OnlineTsPpr`]) is
//! single-threaded: one struct owns the model, every user's live window,
//! and the online-update RNG. This crate turns that into a concurrent
//! engine with a **shard-per-worker** design:
//!
//! * **Routing** ([`routing`]) — user state is partitioned across `N`
//!   shard threads by a stable pure hash of the user id; every request
//!   for a user lands on the shard that owns their window.
//! * **Engine** ([`engine`]) — requests (`Observe`, `Recommend`, `Flush`)
//!   travel per-shard FIFO channels with per-request reply channels.
//!   FIFO delivery is the ordering guarantee: a user's events are never
//!   dropped or reordered, even across a model hot-swap.
//! * **Hot swap** ([`overlay`]) — shards serve from a shared immutable
//!   `Arc<TsPprModel>` snapshot and accumulate online SGD deltas in a
//!   copy-on-write overlay. [`ServeEngine::swap_model`] harvests every
//!   shard's delta, merges them into the incoming model, and installs the
//!   result — all in-band, without stopping traffic.
//! * **Deployment** ([`watcher`]) — [`RegistryWatcher`] polls an
//!   `rrc-store` model registry and hot-swaps every newly published
//!   version into the engine, closing the train → publish → serve loop.
//! * **Observability** ([`metrics`], [`trace`]) — every engine owns a
//!   private [`rrc_obs::Registry`]: wait-free power-of-two latency
//!   histograms (p50/p95/p99/mean/max) and per-shard traffic counters,
//!   snapshotted as a [`MetricsReport`] or exposed as Prometheus text via
//!   [`ServeEngine::metrics_text`]. With tracing on (the default), every
//!   request carries a [`TraceCtx`] through its shard channel and its
//!   enqueue-wait / score / respond stage durations land in per-shard
//!   histograms, next to queue-depth and in-flight gauges and rolling
//!   windowed counterparts.
//! * **Overload** ([`overload`]) — opt-in
//!   ([`EngineOptions::overload`]): bounded per-shard admission gates
//!   with a typed `Admit`/`Shed` decision at enqueue, priority shedding
//!   (observes shed strictly before recommends), per-request deadlines
//!   enforced at dequeue (late requests are shed, not served late), and
//!   conservation-law accounting `offered == admitted + shed` per shard
//!   and kind, surfaced as an `engine.overload` report section. The
//!   [`arrival`] module gives `loadgen` matching open-loop arrival
//!   processes (Poisson, burst trains, flash crowds, diurnal ramps).
//! * **Online quality** ([`quality`]) — opt-in
//!   ([`EngineOptions::quality`]): each served top-N is scored against
//!   the user's next eligible repeat, attributed to the **model version
//!   that served it** (honest across hot-swaps), cumulative and over a
//!   rolling window, plus a drift signal comparing windowed top-1
//!   score / feature means against the since-install baseline.
//!
//! Because shard 0's RNG seed equals the [`rrc_core::OnlineConfig`] seed,
//! a 1-shard engine reproduces `OnlineTsPpr`'s online learning exactly;
//! with learning disabled, an engine with *any* shard count is
//! byte-identical to the single-threaded reference (see
//! `tests/equivalence.rs`).
//!
//! ```no_run
//! use rrc_core::{OnlineConfig, OnlineTsPpr};
//! use rrc_serve::ServeEngine;
//! use rrc_sequence::{ItemId, UserId};
//! # fn get_online() -> OnlineTsPpr { unimplemented!() }
//!
//! let online: OnlineTsPpr = get_online(); // trained + warmed
//! let mut engine = ServeEngine::start(online, 4);
//! engine.observe_nowait(UserId(3), ItemId(17));
//! let top = engine.recommend(UserId(3), 10);
//! println!("{}", engine.metrics());
//! engine.shutdown();
//! # let _ = top;
//! ```
//!
//! The `loadgen` binary replays an `rrc-datagen` stream against the
//! engine at configurable concurrency and prints the metrics report.

pub mod arrival;
pub mod engine;
pub mod metrics;
pub mod overlay;
pub mod overload;
pub mod quality;
pub mod routing;
pub mod trace;
pub mod watcher;

pub use arrival::{Arrival, ArrivalProcess, ArrivalSpec, ArrivalTarget};
pub use engine::{EngineOptions, ForensicsOptions, ServeEngine, SloOptions, UstateOptions};
pub use metrics::{
    ForensicsReport, LatencySummary, MetricsReport, OverloadKindStats, OverloadReport,
    OverloadShardStats, P99Exemplar, ShardCountersSnapshot, SloSection, StageSummary,
    WindowedThroughput,
};
pub use overlay::{ModelDiff, ModelOverlay};
pub use overload::{Admission, AdmissionGate, OverloadOptions, RequestKind, ShedReason};
pub use quality::{
    DriftValues, QualityConfig, QualityReport, VersionQuality, VersionQualityReport, QUALITY_AT,
};
pub use routing::shard_for;
pub use trace::{ShardStamp, StageNanos, TraceCtx};
pub use watcher::{RegistryWatcher, SwapLog};
// The latency histogram now lives in the workspace-wide observability
// crate; re-exported here for serving-focused callers.
pub use rrc_obs::{Histogram, HistogramSnapshot, WindowSpec};
