//! Open-loop arrival processes for the `loadgen` replay harness.
//!
//! The historical loadgen is *closed-loop*: each client thread fires its
//! next event the moment the previous reply lands, so the offered rate is
//! whatever the engine can absorb and the queues never build. Real
//! repeat-consumption traffic is open-loop — users do not wait for each
//! other — and is bursty, hot-keyed, and diurnal (consumption timing is
//! well modeled as a periodic/self-exciting point process; see
//! PAPERS.md on Recurrent Poisson Factorization). This module turns a
//! seeded RNG into a deterministic **arrival schedule**: a monotone list
//! of nanosecond offsets from the run start, each tagged with what to do
//! at that instant (replay the next recorded event, or aim a flash-crowd
//! recommend at a hot user).
//!
//! All processes are sampled by thinning-free inversion on a piecewise
//! rate: the wait to the next arrival at current rate `λ` is
//! `-ln(1-u)/λ` with `u` uniform in `[0,1)`. The same seed always yields
//! the byte-identical schedule ([`encode`] pins this down in a
//! determinism test and a committed golden fixture).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nanoseconds per second, as f64, for rate conversions.
const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// The arrival *process*: how inter-arrival gaps are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Closed-loop (historical behavior): no pacing, every arrival at
    /// offset 0 — clients fire as fast as replies return.
    Closed,
    /// Open-loop Poisson at a constant target rate (events/second).
    Poisson { rate: f64 },
    /// Poisson at `rate`, with periodic burst trains at `burst_rate`:
    /// every `period_ns`, the first `burst_ns` run at the burst rate.
    Burst {
        rate: f64,
        burst_rate: f64,
        period_ns: u64,
        burst_ns: u64,
    },
    /// Sinusoidal diurnal ramp: rate `rate * (1 + amplitude * sin(2πt/period))`,
    /// floored at a small positive rate so the schedule always advances.
    Diurnal {
        rate: f64,
        period_ns: u64,
        amplitude: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous target rate (events/second) at offset `t_ns`.
    fn rate_at(&self, t_ns: u64) -> f64 {
        match *self {
            ArrivalProcess::Closed => f64::INFINITY,
            ArrivalProcess::Poisson { rate } => rate.max(1e-9),
            ArrivalProcess::Burst {
                rate,
                burst_rate,
                period_ns,
                burst_ns,
            } => {
                let phase = t_ns % period_ns.max(1);
                if phase < burst_ns {
                    burst_rate.max(1e-9)
                } else {
                    rate.max(1e-9)
                }
            }
            ArrivalProcess::Diurnal {
                rate,
                period_ns,
                amplitude,
            } => {
                let phase = (t_ns % period_ns.max(1)) as f64 / period_ns.max(1) as f64;
                let m = 1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin();
                (rate * m).max(rate * 0.01).max(1e-9)
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Closed => "closed",
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Burst { .. } => "burst",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// What to do when an arrival fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalTarget {
    /// Replay the next recorded event from the client's stream.
    Replay,
    /// Flash crowd: issue a recommend for hot-user slot `n` (the caller
    /// maps slots onto real user ids).
    Hot(u32),
}

/// One scheduled arrival: fire at `start + at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Nanosecond offset from the schedule origin. Monotone
    /// non-decreasing within a schedule.
    pub at_ns: u64,
    pub target: ArrivalTarget,
}

/// A full, seeded arrival specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    pub process: ArrivalProcess,
    pub seed: u64,
    /// Number of distinct flash-crowd hot-user slots (0 disables the
    /// overlay).
    pub hot_users: u32,
    /// Probability that any given arrival is a flash-crowd recommend
    /// instead of a replay event.
    pub hot_fraction: f64,
}

impl ArrivalSpec {
    /// A plain closed-loop spec (no pacing, no flash crowd).
    pub fn closed(seed: u64) -> Self {
        ArrivalSpec {
            process: ArrivalProcess::Closed,
            seed,
            hot_users: 0,
            hot_fraction: 0.0,
        }
    }

    /// `true` when the schedule actually paces (anything but `Closed`).
    pub fn open_loop(&self) -> bool {
        self.process != ArrivalProcess::Closed
    }
}

/// Generate the deterministic schedule containing exactly
/// `replay_events` [`ArrivalTarget::Replay`] entries, with flash-crowd
/// arrivals interleaved per `hot_fraction`. `stream` salts the seed so
/// each loadgen client draws an independent (but reproducible) schedule;
/// pass 0 for a single-stream schedule.
///
/// The same `(spec, replay_events, stream)` triple always produces the
/// byte-identical schedule (see [`encode`]).
pub fn generate(spec: &ArrivalSpec, replay_events: usize, stream: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let hot = spec.hot_users > 0 && spec.hot_fraction > 0.0;
    let mut out = Vec::with_capacity(replay_events + replay_events / 8);
    let mut t_ns: u64 = 0;
    let mut replays = 0usize;
    while replays < replay_events {
        if spec.open_loop() {
            let rate = spec.process.rate_at(t_ns);
            // Inversion sampling: exponential gap at the current rate.
            // gen::<f64>() is uniform in [0,1), so 1-u is in (0,1] and
            // the log is finite and <= 0.
            let u: f64 = rng.gen();
            let gap_s = -(1.0 - u).ln() / rate;
            t_ns = t_ns.saturating_add((gap_s * NANOS_PER_SEC) as u64);
        }
        let target = if hot && rng.gen_bool(spec.hot_fraction.clamp(0.0, 1.0)) {
            ArrivalTarget::Hot(rng.gen_range(0..spec.hot_users))
        } else {
            replays += 1;
            ArrivalTarget::Replay
        };
        out.push(Arrival {
            at_ns: t_ns,
            target,
        });
    }
    out
}

/// Canonical byte encoding of a schedule: little-endian `at_ns` followed
/// by a little-endian `u32` target (`u32::MAX` for replay, the hot slot
/// otherwise). Exists so determinism tests can assert *byte* identity
/// and the golden fixture has a stable rendering to hash.
pub fn encode(schedule: &[Arrival]) -> Vec<u8> {
    let mut out = Vec::with_capacity(schedule.len() * 12);
    for a in schedule {
        out.extend_from_slice(&a.at_ns.to_le_bytes());
        let slot = match a.target {
            ArrivalTarget::Replay => u32::MAX,
            ArrivalTarget::Hot(n) => n,
        };
        out.extend_from_slice(&slot.to_le_bytes());
    }
    out
}

/// FNV-1a over the canonical encoding — a compact schedule fingerprint
/// for golden fixtures and run reports.
pub fn fingerprint(schedule: &[Arrival]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in encode(schedule) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_schedule_fires_everything_at_zero() {
        let spec = ArrivalSpec::closed(7);
        let s = generate(&spec, 5, 0);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|a| a.at_ns == 0));
        assert!(s.iter().all(|a| a.target == ArrivalTarget::Replay));
    }

    #[test]
    fn poisson_schedule_is_monotone_and_counts_replays() {
        let spec = ArrivalSpec {
            process: ArrivalProcess::Poisson { rate: 50_000.0 },
            seed: 42,
            hot_users: 8,
            hot_fraction: 0.2,
        };
        let s = generate(&spec, 1000, 0);
        let replays = s
            .iter()
            .filter(|a| a.target == ArrivalTarget::Replay)
            .count();
        assert_eq!(replays, 1000);
        assert!(s.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(s
            .iter()
            .any(|a| matches!(a.target, ArrivalTarget::Hot(n) if n < 8)));
    }

    #[test]
    fn burst_phase_runs_hotter_than_base() {
        let process = ArrivalProcess::Burst {
            rate: 1_000.0,
            burst_rate: 100_000.0,
            period_ns: 1_000_000_000,
            burst_ns: 100_000_000,
        };
        assert_eq!(process.rate_at(0), 100_000.0);
        assert_eq!(process.rate_at(99_999_999), 100_000.0);
        assert_eq!(process.rate_at(100_000_000), 1_000.0);
        assert_eq!(process.rate_at(999_999_999), 1_000.0);
        assert_eq!(process.rate_at(1_000_000_000), 100_000.0);
    }

    #[test]
    fn diurnal_rate_stays_positive() {
        let process = ArrivalProcess::Diurnal {
            rate: 10_000.0,
            period_ns: 1_000_000_000,
            amplitude: 1.5, // over-modulated on purpose
        };
        for t in (0..2_000_000_000u64).step_by(50_000_000) {
            assert!(process.rate_at(t) > 0.0, "rate collapsed at t={t}");
        }
    }

    #[test]
    fn same_seed_same_bytes_different_stream_differs() {
        let spec = ArrivalSpec {
            process: ArrivalProcess::Poisson { rate: 10_000.0 },
            seed: 99,
            hot_users: 4,
            hot_fraction: 0.1,
        };
        let a = encode(&generate(&spec, 500, 3));
        let b = encode(&generate(&spec, 500, 3));
        assert_eq!(a, b);
        let c = encode(&generate(&spec, 500, 4));
        assert_ne!(a, c);
    }
}
