//! Load generator for the sharded serving engine.
//!
//! Generates an `rrc-datagen` consumption stream, warms an engine from
//! the training prefix, then replays the test suffix from `--clients`
//! concurrent client threads: every event is a synchronous `observe`, and
//! every `--recommend-every`-th event also requests Top-N. Optionally a
//! background thread hot-swaps the model every `--swap-every` ms to
//! exercise swap-under-load. Finishes by printing the engine's
//! [`MetricsReport`](rrc_serve::MetricsReport) (p50/p95/p99 latency,
//! per-stage breakdown, per-shard traffic) and the end-to-end replay
//! rate.
//!
//! ```text
//! cargo run --release -p rrc-serve --bin loadgen -- --shards 4 --clients 8 --learn 3
//! ```
//!
//! Observability flags:
//!
//! * `--quality` turns on online quality monitoring: every served Top-N
//!   is scored against the user's next eligible repeat, attributed to the
//!   model version that served it (combine with `--swap-every` to watch
//!   attribution across hot-swaps), and the report gains a `quality`
//!   section plus drift gauges.
//! * `--no-tracing` disables request-scoped tracing; `--overhead` runs
//!   the replay twice (all observability off, then tracing + quality on)
//!   and reports both rates and their ratio — the tracing-overhead
//!   number committed in BENCH_serve.json.
//! * `--metrics-json PATH` writes a live run report atomically every
//!   `--metrics-every` ms during the replay; point `rrc-top` at it for a
//!   terminal dashboard.
//! * `--forensics` turns on tail-sampled exemplar traces and the
//!   per-shard flight recorder; `--trace-out PATH` streams every
//!   reservoir-admitted trace to a JSONL sink; `--dump-flight PATH`
//!   dumps a CRC-checked flight bundle at exit — and the same path is
//!   armed as a panic-hook / SIGTERM crash dump for the whole replay.
//! * `--slo-observe-p99-us N` / `--slo-recommend-p99-us N` /
//!   `--slo-quality-ratio F` declare SLO objectives; a background thread
//!   evaluates them every `--slo-tick` ms with multi-window burn rates
//!   and the final report carries per-objective verdicts.
//! * `--inject-slow-user U` (with `--inject-slow-us`) stalls one user's
//!   requests to manufacture a known-slow trace; `--inject-panic-after N`
//!   panics a client mid-replay to exercise the crash dump (CI smoke).
//! * `--profile-out PATH` turns on the cooperative sampling profiler for
//!   the measured replay and writes the collapsed-stack file there
//!   (flamegraph.pl/inferno input, `rrc-prof top/diff` input); the JSON
//!   report gains a `profile` section with per-path self/total shares
//!   and allocation attribution. `--profile-hz N` sets the sampling rate
//!   (default ~997 Hz — deliberately co-prime with common periodic work).
//!   Combined with `--overhead`, the baseline leg runs with the profiler
//!   off and the ratio is reported as `profiler_on_over_off` — the
//!   BENCH_serve.json `profile_overhead` pair. `--overhead-reps N` runs
//!   every overhead side N times (fresh engine per leg) and compares
//!   best-of-N, the standard defense against scheduler noise on busy
//!   hosts.
//!
//! Overload flags:
//!
//! * `--arrival poisson|burst|diurnal` switches the replay from the
//!   historical closed loop to a seeded open-loop arrival schedule at
//!   `--rate` events/second (burst trains via `--burst-rate` /
//!   `--burst-every` / `--burst-ms`, diurnal ramps via
//!   `--diurnal-period` / `--diurnal-amplitude`). `--hot-users` /
//!   `--hot-frac` overlay a flash crowd of recommends aimed at a few
//!   hot users. Open-loop clients never wait for replies.
//! * `--queue-cap N` bounds each shard's admission queue: excess
//!   requests get a typed `Shed` answer, observes shed strictly before
//!   recommends (`--observe-frac`). `--deadline-us` sheds requests that
//!   would be served past their deadline. The report gains an
//!   `engine.overload` section whose counters obey the conservation law
//!   `offered == admitted + shed`; `--slo-shed-rate` turns the windowed
//!   shed fraction into an SLO objective.
//!
//! Continuous learning (`--continuous`):
//!
//! * Runs the replay twice on the same (optionally `--drift`-ing)
//!   stream. Leg 1 serves a *frozen* model — the decay baseline. Leg 2
//!   taps every observed event into an `rrc-stream` trainer thread that
//!   learns incrementally and publishes to a model registry every
//!   `--publish-every` events, while a registry watcher hot-swaps each
//!   version into the serving engine under load. Both legs score online
//!   quality; the report's `continuous` section carries frozen vs.
//!   stream-trained hit@10, the publish → swap freshness lag, and the
//!   trainer's prequential metrics. `--stream-checkpoint PATH` (with
//!   `--checkpoint-every N`) makes the trainer durable as it goes.
//!
//! Defaults replay well over 10k events; `--users`/`--events` scale it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_obs::{Json, JsonlSink, RunReport};
use rrc_sequence::{Dataset, ItemId, SplitDataset, UserId};
use rrc_serve::arrival::{self, ArrivalProcess, ArrivalSpec, ArrivalTarget};
use rrc_serve::{
    EngineOptions, ForensicsOptions, OverloadOptions, QualityConfig, RegistryWatcher, ServeEngine,
    SloOptions, SwapLog, UstateOptions,
};
use rrc_store::ModelRegistry;
use rrc_stream::{ChannelSource, StreamConfig, StreamEvent, StreamTrainer};
use rrc_ustate::EvictionPolicy;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The tap through which a replay feeds the continuous trainer.
type EventTap = crossbeam::channel::Sender<StreamEvent>;

const OMEGA: usize = 10;

/// Opt in to allocation attribution: every allocation this process makes
/// is (while profiling is enabled) credited to the allocating thread's
/// innermost profile frame. Pass-through to the system allocator, one
/// relaxed atomic load of cost, when profiling is off.
#[global_allocator]
static ALLOC: rrc_obs::CountingAlloc = rrc_obs::CountingAlloc::new();

struct Args {
    users: usize,
    items: usize,
    events_lo: usize,
    events_hi: usize,
    shards: usize,
    clients: usize,
    topn: usize,
    recommend_every: usize,
    /// Negatives per observed eligible repeat; 0 freezes the model.
    learn: usize,
    /// Hot-swap period in milliseconds; 0 disables the swapper thread.
    swap_every_ms: u64,
    seed: u64,
    /// Write a machine-readable `RunReport` here after the replay.
    json: Option<String>,
    /// Start from a model stored with `rrc-store` instead of random init.
    load_model: Option<String>,
    /// After the replay, publish online learning and save the result.
    save_model: Option<String>,
    /// Watch an `rrc-store` model registry and hot-swap newly published
    /// versions during the replay.
    registry: Option<String>,
    /// Registry poll period in milliseconds.
    registry_poll_ms: u64,
    /// Online quality monitoring (served lists vs. next eligible repeat).
    quality: bool,
    /// Disable request-scoped tracing.
    no_tracing: bool,
    /// Replay twice — observability off then on — and report the ratio.
    overhead: bool,
    /// Legs per overhead side; the ratio compares best-of-N, so one
    /// noisy leg (scheduler hiccup on a loaded host) can't masquerade
    /// as subsystem cost.
    overhead_reps: usize,
    /// Live dashboard file, refreshed during the replay.
    metrics_json: Option<String>,
    /// Refresh period for `--metrics-json`, in milliseconds.
    metrics_every_ms: u64,
    /// Per-shard user-state byte budget; None = unbounded (classic).
    memory_budget: Option<usize>,
    /// Spill directory for bounded runs (temp dir when unset).
    spill_dir: Option<String>,
    /// Eviction policy for bounded runs.
    evict: EvictionPolicy,
    /// Zipf exponent of per-user activity skew in the generated stream.
    user_skew: f64,
    /// Latent dimension K of the served model.
    k: usize,
    /// Serving window capacity (events per user kept resident).
    window: usize,
    /// Forensics: tail-sampled exemplar traces + flight recorder.
    forensics: bool,
    /// Stream reservoir-admitted traces to this JSONL file.
    trace_out: Option<String>,
    /// Flight-bundle path: dumped at exit, and armed as the panic/SIGTERM
    /// crash-dump target for the whole replay.
    dump_flight: Option<String>,
    /// Panic a client thread after this many replayed events (CI smoke
    /// for the crash-dump path).
    inject_panic_after: Option<u64>,
    /// Stall requests from this user id (see `--inject-slow-us`).
    inject_slow_user: Option<u32>,
    /// Stall duration for `--inject-slow-user`, in microseconds.
    inject_slow_us: u64,
    /// SLO: max windowed observe p99, in microseconds.
    slo_observe_p99_us: Option<u64>,
    /// SLO: max windowed recommend p99, in microseconds.
    slo_recommend_p99_us: Option<u64>,
    /// SLO: min windowed-over-cumulative hit@10 ratio (needs --quality).
    slo_quality_ratio: Option<f64>,
    /// SLO evaluation period, in milliseconds.
    slo_tick_ms: u64,
    /// Arrival process: closed (historical), poisson, burst, diurnal.
    arrival: String,
    /// Open-loop target rate, events/second (all clients combined).
    rate: f64,
    /// Burst-phase rate for `--arrival burst`, events/second.
    burst_rate: f64,
    /// Burst period for `--arrival burst`, in milliseconds.
    burst_every_ms: u64,
    /// Burst duration within each period, in milliseconds.
    burst_ms: u64,
    /// Diurnal period for `--arrival diurnal`, in milliseconds.
    diurnal_period_ms: u64,
    /// Diurnal modulation amplitude (0 = flat, 1 = full swing).
    diurnal_amplitude: f64,
    /// Flash-crowd hot-user slots (0 disables the overlay).
    hot_users: u32,
    /// Probability an arrival is a flash-crowd recommend at a hot user.
    hot_frac: f64,
    /// Bounded per-shard admission queue; None = unbounded (classic).
    queue_cap: Option<usize>,
    /// Observe admission threshold as a fraction of `--queue-cap`.
    observe_frac: f64,
    /// Default per-request deadline for open-loop traffic, microseconds.
    deadline_us: Option<u64>,
    /// SLO: max windowed shed fraction (shed / offered).
    slo_shed_rate: Option<f64>,
    /// Two-leg continuous-learning run: frozen baseline, then serve +
    /// stream-train + publish + hot-swap on the same stream.
    continuous: bool,
    /// Distribution drift magnitude of the generated stream (0..=1).
    drift: f64,
    /// Per-user changepoint position for `--drift`, as a fraction of the
    /// sequence (default lands inside the replayed test suffix).
    drift_at: f64,
    /// Continuous trainer: publish to the registry every N events.
    publish_every: u64,
    /// Continuous trainer: durable checkpoint path.
    stream_checkpoint: Option<String>,
    /// Continuous trainer: checkpoint every N events (0 = only the flag
    /// path's final write).
    checkpoint_every: u64,
    /// Enable the sampling profiler and write the collapsed-stack file
    /// here after the measured replay.
    profile_out: Option<String>,
    /// Profiler sampling rate in walks/second.
    profile_hz: f64,
}

impl Default for Args {
    fn default() -> Self {
        // ~300 users × 40–60 test events ≈ 15k replayed events.
        Args {
            users: 300,
            items: 500,
            events_lo: 130,
            events_hi: 200,
            shards: 4,
            clients: 4,
            topn: 10,
            recommend_every: 10,
            learn: 0,
            swap_every_ms: 0,
            seed: 42,
            json: None,
            load_model: None,
            save_model: None,
            registry: None,
            registry_poll_ms: 50,
            quality: false,
            no_tracing: false,
            overhead: false,
            overhead_reps: 1,
            metrics_json: None,
            metrics_every_ms: 500,
            memory_budget: None,
            spill_dir: None,
            evict: EvictionPolicy::default(),
            user_skew: 0.0,
            k: 16,
            window: 100,
            forensics: false,
            trace_out: None,
            dump_flight: None,
            inject_panic_after: None,
            inject_slow_user: None,
            inject_slow_us: 20_000,
            slo_observe_p99_us: None,
            slo_recommend_p99_us: None,
            slo_quality_ratio: None,
            slo_tick_ms: 200,
            arrival: "closed".to_string(),
            rate: 50_000.0,
            burst_rate: 400_000.0,
            burst_every_ms: 200,
            burst_ms: 50,
            diurnal_period_ms: 1_000,
            diurnal_amplitude: 0.8,
            hot_users: 0,
            hot_frac: 0.1,
            queue_cap: None,
            observe_frac: 0.75,
            deadline_us: None,
            slo_shed_rate: None,
            continuous: false,
            drift: 0.0,
            drift_at: 0.75,
            publish_every: 2_000,
            stream_checkpoint: None,
            checkpoint_every: 0,
            profile_out: None,
            // Not a round number on purpose: co-prime with millisecond
            // periodic work, so samples don't phase-lock to timers.
            profile_hz: 997.0,
        }
    }
}

impl Args {
    /// Forensics turns on when asked for directly or implied by any
    /// forensic flag that needs its plumbing.
    fn profile_enabled(&self) -> bool {
        self.profile_out.is_some()
    }

    fn forensics_enabled(&self) -> bool {
        self.forensics
            || self.trace_out.is_some()
            || self.dump_flight.is_some()
            || self.inject_panic_after.is_some()
            || self.inject_slow_user.is_some()
    }

    fn slo_options(&self) -> SloOptions {
        SloOptions {
            observe_p99_ns: self.slo_observe_p99_us.map(|us| us.saturating_mul(1_000)),
            recommend_p99_ns: self.slo_recommend_p99_us.map(|us| us.saturating_mul(1_000)),
            quality_ratio: self.slo_quality_ratio,
            shed_rate: self.slo_shed_rate,
            ..SloOptions::default()
        }
    }

    fn overload_options(&self) -> OverloadOptions {
        OverloadOptions {
            queue_cap: self.queue_cap,
            observe_fraction: self.observe_frac,
            deadline: self.deadline_us.map(Duration::from_micros),
        }
    }

    /// The seeded arrival schedule spec shared by every client (each
    /// client salts it with its own stream id).
    fn arrival_spec(&self) -> ArrivalSpec {
        let ms = |v: u64| v.max(1).saturating_mul(1_000_000);
        let process = match self.arrival.as_str() {
            "closed" => ArrivalProcess::Closed,
            "poisson" => ArrivalProcess::Poisson { rate: self.rate },
            "burst" => ArrivalProcess::Burst {
                rate: self.rate,
                burst_rate: self.burst_rate,
                period_ns: ms(self.burst_every_ms),
                burst_ns: ms(self.burst_ms),
            },
            "diurnal" => ArrivalProcess::Diurnal {
                rate: self.rate,
                period_ns: ms(self.diurnal_period_ms),
                amplitude: self.diurnal_amplitude,
            },
            other => {
                eprintln!("unknown arrival process: {other}");
                usage();
            }
        };
        ArrivalSpec {
            process,
            seed: self.seed ^ 0xa881,
            hot_users: self.hot_users,
            hot_fraction: if self.hot_users > 0 {
                self.hot_frac
            } else {
                0.0
            },
        }
    }

    fn forensics_options(&self, sink: Option<Arc<JsonlSink>>) -> ForensicsOptions {
        ForensicsOptions {
            enabled: self.forensics_enabled(),
            trace_sink: sink,
            slo: self.slo_options(),
            inject_slow: self
                .inject_slow_user
                .map(|u| (u, Duration::from_micros(self.inject_slow_us))),
            ..ForensicsOptions::default()
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--users N] [--items N] [--events LO HI] [--shards N] \
         [--clients N] [--topn N] [--recommend-every N] [--learn NEGATIVES] \
         [--swap-every MILLIS] [--seed N] [--json PATH] [--load-model PATH] \
         [--save-model PATH] [--registry DIR] [--registry-poll MILLIS] \
         [--quality] [--no-tracing] [--overhead] [--overhead-reps N] \
         [--metrics-json PATH] [--metrics-every MILLIS] \
         [--memory-budget BYTES] [--spill-dir DIR] [--evict clock|lru] \
         [--user-skew EXPONENT] [--k N] [--window N] \
         [--forensics] [--trace-out PATH] [--dump-flight PATH] \
         [--inject-panic-after N] [--inject-slow-user U] [--inject-slow-us MICROS] \
         [--slo-observe-p99-us N] [--slo-recommend-p99-us N] \
         [--slo-quality-ratio F] [--slo-tick MILLIS] \
         [--arrival closed|poisson|burst|diurnal] [--rate EV_PER_SEC] \
         [--burst-rate EV_PER_SEC] [--burst-every MILLIS] [--burst-ms MILLIS] \
         [--diurnal-period MILLIS] [--diurnal-amplitude F] \
         [--hot-users N] [--hot-frac F] \
         [--queue-cap N] [--observe-frac F] [--deadline-us MICROS] \
         [--slo-shed-rate F] \
         [--continuous] [--drift F] [--drift-at F] [--publish-every N] \
         [--stream-checkpoint PATH] [--checkpoint-every N] \
         [--profile-out PATH] [--profile-hz N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        let fnum = |it: &mut dyn Iterator<Item = String>| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .filter(|f: &f64| f.is_finite() && *f >= 0.0)
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--users" => args.users = num(&mut it),
            "--items" => args.items = num(&mut it),
            "--events" => {
                args.events_lo = num(&mut it);
                args.events_hi = num(&mut it);
            }
            "--shards" => args.shards = num(&mut it),
            "--clients" => args.clients = num(&mut it),
            "--topn" => args.topn = num(&mut it),
            "--recommend-every" => args.recommend_every = num(&mut it),
            "--learn" => args.learn = num(&mut it),
            "--swap-every" => args.swap_every_ms = num(&mut it) as u64,
            "--seed" => args.seed = num(&mut it) as u64,
            "--json" => args.json = Some(it.next().unwrap_or_else(|| usage())),
            "--load-model" => args.load_model = Some(it.next().unwrap_or_else(|| usage())),
            "--save-model" => args.save_model = Some(it.next().unwrap_or_else(|| usage())),
            "--registry" => args.registry = Some(it.next().unwrap_or_else(|| usage())),
            "--registry-poll" => args.registry_poll_ms = num(&mut it) as u64,
            "--quality" => args.quality = true,
            "--no-tracing" => args.no_tracing = true,
            "--overhead" => args.overhead = true,
            "--overhead-reps" => args.overhead_reps = num(&mut it),
            "--metrics-json" => args.metrics_json = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-every" => args.metrics_every_ms = num(&mut it) as u64,
            "--memory-budget" => args.memory_budget = Some(num(&mut it)),
            "--spill-dir" => args.spill_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--evict" => {
                args.evict = it
                    .next()
                    .and_then(|v| EvictionPolicy::parse(&v))
                    .unwrap_or_else(|| usage());
            }
            "--user-skew" => {
                args.user_skew = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| *s >= 0.0 && s.is_finite())
                    .unwrap_or_else(|| usage());
            }
            "--k" => args.k = num(&mut it),
            "--window" => args.window = num(&mut it),
            "--forensics" => args.forensics = true,
            "--trace-out" => args.trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--dump-flight" => args.dump_flight = Some(it.next().unwrap_or_else(|| usage())),
            "--inject-panic-after" => args.inject_panic_after = Some(num(&mut it) as u64),
            "--inject-slow-user" => args.inject_slow_user = Some(num(&mut it) as u32),
            "--inject-slow-us" => args.inject_slow_us = num(&mut it) as u64,
            "--slo-observe-p99-us" => args.slo_observe_p99_us = Some(num(&mut it) as u64),
            "--slo-recommend-p99-us" => args.slo_recommend_p99_us = Some(num(&mut it) as u64),
            "--slo-quality-ratio" => {
                args.slo_quality_ratio = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r: &f64| *r > 0.0 && r.is_finite())
                    .or_else(|| usage());
            }
            "--slo-tick" => args.slo_tick_ms = num(&mut it) as u64,
            "--arrival" => args.arrival = it.next().unwrap_or_else(|| usage()),
            "--rate" => args.rate = fnum(&mut it),
            "--burst-rate" => args.burst_rate = fnum(&mut it),
            "--burst-every" => args.burst_every_ms = num(&mut it) as u64,
            "--burst-ms" => args.burst_ms = num(&mut it) as u64,
            "--diurnal-period" => args.diurnal_period_ms = num(&mut it) as u64,
            "--diurnal-amplitude" => args.diurnal_amplitude = fnum(&mut it),
            "--hot-users" => args.hot_users = num(&mut it) as u32,
            "--hot-frac" => args.hot_frac = fnum(&mut it),
            "--queue-cap" => args.queue_cap = Some(num(&mut it)),
            "--observe-frac" => args.observe_frac = fnum(&mut it),
            "--deadline-us" => args.deadline_us = Some(num(&mut it) as u64),
            "--slo-shed-rate" => args.slo_shed_rate = Some(fnum(&mut it)),
            "--continuous" => args.continuous = true,
            "--drift" => args.drift = fnum(&mut it),
            "--drift-at" => args.drift_at = fnum(&mut it),
            "--publish-every" => args.publish_every = num(&mut it) as u64,
            "--stream-checkpoint" => {
                args.stream_checkpoint = Some(it.next().unwrap_or_else(|| usage()))
            }
            "--checkpoint-every" => args.checkpoint_every = num(&mut it) as u64,
            "--profile-out" => args.profile_out = Some(it.next().unwrap_or_else(|| usage())),
            "--profile-hz" => args.profile_hz = fnum(&mut it),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if args.shards == 0
        || args.clients == 0
        || args.events_lo > args.events_hi
        || args.k == 0
        || args.window == 0
        || args.memory_budget == Some(0)
        || args.queue_cap == Some(0)
        || args.deadline_us == Some(0)
        || !(0.0..=1.0).contains(&args.hot_frac)
        || !(0.0..=1.0).contains(&args.observe_frac)
        || !matches!(
            args.arrival.as_str(),
            "closed" | "poisson" | "burst" | "diurnal"
        )
        || (args.arrival != "closed" && args.rate <= 0.0)
        || (args.arrival == "burst" && args.burst_rate <= 0.0)
        || !(0.0..=1.0).contains(&args.drift)
        || !(0.0..1.0).contains(&args.drift_at)
        || (args.continuous && args.publish_every == 0)
        || (args.continuous && args.overhead)
        || !(1..=20).contains(&args.overhead_reps)
        || (args.profile_enabled() && args.profile_hz <= 0.0)
    {
        usage();
    }
    args
}

/// Scale an arrival spec down to a single client's share: each of `n`
/// clients runs an independent process at `rate / n`, so the merged
/// stream offers the full target rate (superposition of Poissons) while
/// burst/diurnal phases stay aligned across clients.
fn per_client_spec(spec: &ArrivalSpec, clients: usize) -> ArrivalSpec {
    let f = 1.0 / clients.max(1) as f64;
    let process = match spec.process {
        ArrivalProcess::Closed => ArrivalProcess::Closed,
        ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson { rate: rate * f },
        ArrivalProcess::Burst {
            rate,
            burst_rate,
            period_ns,
            burst_ns,
        } => ArrivalProcess::Burst {
            rate: rate * f,
            burst_rate: burst_rate * f,
            period_ns,
            burst_ns,
        },
        ArrivalProcess::Diurnal {
            rate,
            period_ns,
            amplitude,
        } => ArrivalProcess::Diurnal {
            rate: rate * f,
            period_ns,
            amplitude,
        },
    };
    ArrivalSpec {
        process,
        ..spec.clone()
    }
}

/// Build the warmed online recommender (deterministic for a given seed,
/// so `--overhead` and `--continuous` can rebuild an identical one for
/// each leg). `learn` is the negatives-per-event of the *engine's* own
/// online updates — the continuous legs pass 0 so the served model only
/// changes via hot-swap.
fn build_online(args: &Args, data: &Dataset, split: &SplitDataset, learn: usize) -> OnlineTsPpr {
    let stats = TrainStats::compute(&split.train, args.window);
    let pipeline = FeaturePipeline::standard();
    let model = match &args.load_model {
        Some(path) => {
            let model = rrc_store::load_model(path).unwrap_or_else(|e| {
                eprintln!("failed to load model from {path}: {e}");
                std::process::exit(1);
            });
            if (model.num_users(), model.num_items()) != (data.num_users(), data.num_items())
                || model.f_dim() != pipeline.len()
            {
                eprintln!(
                    "model at {path} has shape ({} users, {} items, f={}), \
                     replay needs ({}, {}, f={})",
                    model.num_users(),
                    model.num_items(),
                    model.f_dim(),
                    data.num_users(),
                    data.num_items(),
                    pipeline.len()
                );
                std::process::exit(1);
            }
            eprintln!("loaded model from {path}");
            model
        }
        None => {
            let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5eed);
            TsPprModel::init(
                &mut rng,
                data.num_users(),
                data.num_items(),
                args.k,
                pipeline.len(),
                0.1,
                0.05,
            )
        }
    };
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: args.window,
            omega: OMEGA,
            negatives_per_event: learn,
            seed: args.seed,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&split.train);
    online
}

/// Snapshot the engine into a run-report JSON and move it into place
/// atomically (write-to-temp + rename), so a concurrently polling
/// `rrc-top` never reads a torn file.
fn write_live_report(engine: &ServeEngine, args: &Args, path: &str) {
    let mut run = RunReport::new("loadgen-live")
        .config("shards", args.shards)
        .config("clients", args.clients)
        .config("seed", args.seed);
    let report = engine.metrics();
    run.add_section("ustate", ustate_section(&report, args));
    run.add_section("engine", report.to_json());
    if let Some(q) = engine.quality_report() {
        run.add_section("quality", q.to_json());
    }
    run.add_metrics(engine.metrics_registry());
    let tmp = format!("{path}.tmp");
    let write = std::fs::write(&tmp, run.render()).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = write {
        eprintln!("failed to refresh {path}: {e}");
    }
}

/// Replay the test streams against the engine. Returns the wall-clock
/// duration of the replay (flush included).
fn run_replay(
    engine: &Arc<ServeEngine>,
    replay: &[(UserId, Vec<ItemId>)],
    args: &Args,
    panic_after: Option<u64>,
    tap: Option<&EventTap>,
) -> Duration {
    // Round-robin users over client threads so each user's stream stays on
    // one client — cross-client FIFO for the same user is not defined.
    let mut partitions: Vec<Vec<&(UserId, Vec<ItemId>)>> = vec![Vec::new(); args.clients];
    for (i, entry) in replay.iter().enumerate() {
        partitions[i % args.clients].push(entry);
    }

    let spec = args.arrival_spec();
    let open_loop = spec.open_loop();
    let spec_ref = &spec;

    let replay_start = Instant::now();
    let engine_ref = &**engine;
    let done = AtomicBool::new(false);
    let done_ref = &done;
    let replayed = AtomicU64::new(0);
    let replayed_ref = &replayed;
    crossbeam::thread::scope(|scope| {
        // SLO evaluation cadence (no-op without configured objectives).
        if engine_ref.slo_tick().is_some() {
            let period = Duration::from_millis(args.slo_tick_ms.max(10));
            scope.spawn(move |_| {
                while !done_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    engine_ref.slo_tick();
                }
            });
        }
        if args.swap_every_ms > 0 {
            scope.spawn(move |_| {
                let period = Duration::from_millis(args.swap_every_ms);
                let mut swaps = 0u64;
                while !done_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let base = engine_ref.model();
                    engine_ref.swap_model((*base).clone());
                    swaps += 1;
                }
                eprintln!("swapper: {swaps} hot swaps under load");
            });
        }
        if let Some(path) = &args.metrics_json {
            let period = Duration::from_millis(args.metrics_every_ms.max(50));
            scope.spawn(move |_| {
                while !done_ref.load(Ordering::Relaxed) {
                    write_live_report(engine_ref, args, path);
                    std::thread::sleep(period);
                }
                // Final frame so the dashboard shows the finished state.
                write_live_report(engine_ref, args, path);
            });
        }
        // One origin for every client so burst/diurnal phases line up.
        let open_start = Instant::now();
        let handles: Vec<_> = partitions
            .iter()
            .enumerate()
            .map(|(client, part)| {
                scope.spawn(move |_| {
                    let mut until_recommend = args.recommend_every;
                    if !open_loop {
                        for (user, events) in part {
                            for &item in events {
                                engine_ref.observe(*user, item);
                                if let Some(tap) = tap {
                                    let _ = tap.send(StreamEvent { user: *user, item });
                                }
                                if let Some(n) = panic_after {
                                    if replayed_ref.fetch_add(1, Ordering::Relaxed) + 1 == n {
                                        panic!("injected panic after {n} events");
                                    }
                                }
                                if args.recommend_every > 0 {
                                    until_recommend -= 1;
                                    if until_recommend == 0 {
                                        let _ = engine_ref.recommend(*user, args.topn);
                                        until_recommend = args.recommend_every;
                                    }
                                }
                            }
                        }
                        return;
                    }
                    // Open loop: pace this client's recorded stream against
                    // its own seeded schedule (stream = client index) and
                    // never wait for replies — backpressure is the engine's
                    // problem, which is exactly what we are measuring.
                    let part_events: usize = part.iter().map(|(_, e)| e.len()).sum();
                    let spec_c = per_client_spec(spec_ref, args.clients);
                    let schedule = arrival::generate(&spec_c, part_events, client as u64);
                    let mut events = part
                        .iter()
                        .flat_map(|(u, evs)| evs.iter().map(move |&i| (*u, i)));
                    for a in &schedule {
                        let fire_at = open_start + Duration::from_nanos(a.at_ns);
                        let now = Instant::now();
                        if fire_at > now {
                            std::thread::sleep(fire_at - now);
                        }
                        match a.target {
                            ArrivalTarget::Replay => {
                                let (user, item) =
                                    events.next().expect("schedule replay count matches stream");
                                let _ = engine_ref.try_observe_nowait(user, item, None);
                                if let Some(tap) = tap {
                                    let _ = tap.send(StreamEvent { user, item });
                                }
                                if let Some(n) = panic_after {
                                    if replayed_ref.fetch_add(1, Ordering::Relaxed) + 1 == n {
                                        panic!("injected panic after {n} events");
                                    }
                                }
                                if args.recommend_every > 0 {
                                    until_recommend -= 1;
                                    if until_recommend == 0 {
                                        let _ = engine_ref.try_recommend(user, args.topn, None);
                                        until_recommend = args.recommend_every;
                                    }
                                }
                            }
                            ArrivalTarget::Hot(slot) => {
                                let user = UserId(slot % args.users.max(1) as u32);
                                let _ = engine_ref.try_recommend(user, args.topn, None);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        done_ref.store(true, Ordering::Relaxed);
    })
    .expect("load scope");
    engine.flush();
    replay_start.elapsed()
}

/// The ISSUE-shaped convenience block summarising the user-state tier:
/// total users, resident footprint, and cache traffic. The full per-shard
/// series are still in the `engine` section / registry snapshot.
fn ustate_section(report: &rrc_serve::MetricsReport, args: &Args) -> Json {
    let u = &report.ustate;
    Json::obj([
        ("users", Json::from(args.users)),
        ("resident_users", Json::from(u.resident_users)),
        ("spilled_users", Json::from(u.spilled_users)),
        ("resident_bytes", Json::from(u.resident_bytes)),
        (
            "budget_bytes_per_shard",
            u.budget_bytes.map_or(Json::Null, Json::from),
        ),
        (
            "cache",
            Json::obj([
                ("hit", Json::from(u.hits)),
                ("miss", Json::from(u.misses)),
                ("evict", Json::from(u.evictions)),
                ("hit_rate", Json::F64(u.hit_rate)),
            ]),
        ),
    ])
}

/// The user-state tier options both engine legs share.
fn ustate_options(args: &Args) -> UstateOptions {
    UstateOptions {
        budget_bytes: args.memory_budget,
        policy: args.evict,
        spill_dir: args.spill_dir.as_ref().map(std::path::PathBuf::from),
    }
}

/// Tear down an engine whose only other handle-holders have exited.
fn shutdown_engine(engine: Arc<ServeEngine>) {
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => unreachable!("no other engine handles exist"),
    }
}

/// One continuous-experiment leg's online-quality summary.
struct LegQuality {
    hit10: f64,
    mrr: f64,
    opportunities: u64,
}

impl LegQuality {
    fn of(engine: &ServeEngine) -> LegQuality {
        let overall = engine
            .quality_report()
            .expect("continuous legs run with quality on")
            .overall();
        LegQuality {
            hit10: overall.hit_rate_at(2),
            mrr: overall.ranking.mrr(),
            opportunities: overall.ranking.opportunities,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("hit10", Json::F64(self.hit10)),
            ("mrr", Json::F64(self.mrr)),
            ("opportunities", Json::from(self.opportunities)),
        ])
    }
}

/// An engine for a continuous leg: frozen online core (`learn = 0` — the
/// served model changes *only* through registry hot-swaps, so the quality
/// delta is attributable to the pipeline) with quality monitoring forced
/// on.
fn continuous_engine(args: &Args, data: &Dataset, split: &SplitDataset) -> Arc<ServeEngine> {
    Arc::new(ServeEngine::start_with(
        build_online(args, data, split, 0),
        args.shards,
        EngineOptions {
            tracing: !args.no_tracing,
            quality: Some(QualityConfig::default()),
            ustate: ustate_options(args),
            overload: args.overload_options(),
            ..EngineOptions::default()
        },
    ))
}

/// Run a [`StreamTrainer`] on its own thread until its source ends.
fn spawn_trainer(
    trainer: StreamTrainer,
    mut source: ChannelSource,
    name: &str,
) -> std::thread::JoinHandle<StreamTrainer> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let mut trainer = trainer;
            match trainer.run(&mut source) {
                Ok(_) => trainer,
                Err(e) => {
                    eprintln!("stream trainer failed: {e}");
                    std::process::exit(1);
                }
            }
        })
        .expect("spawn stream trainer")
}

/// The continuous trainer's shared shape: the serving engine's online
/// config at `learn` negatives per eligible repeat, `--publish-every` /
/// `--checkpoint-every` cadences.
fn stream_config(args: &Args, learn: usize) -> StreamConfig {
    StreamConfig {
        online: OnlineConfig {
            window: args.window,
            omega: OMEGA,
            negatives_per_event: learn,
            seed: args.seed,
            ..OnlineConfig::default()
        },
        shards: args.shards,
        eval_n: args.topn.max(10),
        publish_every: args.publish_every,
        checkpoint_every: args.checkpoint_every,
        ..StreamConfig::default()
    }
}

/// The `--continuous` experiment: replay the same (drifting) stream
/// twice. Leg 1 serves a frozen model with a frozen prequential
/// *evaluator* on the tap — how quality decays when nobody retrains,
/// measured on every eligible repeat. Leg 2 taps the same events into a
/// learning `rrc-stream` trainer; the trainer publishes on cadence, a
/// registry watcher hot-swaps each version into the live engine, and the
/// per-version quality monitor attributes the recovery. The headline
/// `preq_gain_hit10` compares the two trainers' full-coverage
/// prequential hit@10 on identical streams — learning is the only
/// difference between them.
fn run_continuous(args: &Args, data: &Dataset, split: &SplitDataset) {
    let replay: Vec<(UserId, Vec<ItemId>)> = split
        .test
        .iter()
        .enumerate()
        .map(|(u, s)| (UserId(u as u32), s.events().to_vec()))
        .collect();
    let total_events: usize = replay.iter().map(|(_, e)| e.len()).sum();
    let rate = |elapsed: Duration| total_events as f64 / elapsed.as_secs_f64().max(1e-9);
    // The trainer always learns; `--learn` tunes how hard.
    let trainer_learn = if args.learn == 0 { 3 } else { args.learn };

    // Leg 1: the decay baseline — frozen serving, frozen evaluation.
    eprintln!(
        "continuous leg 1/2: frozen baseline ({} events, drift {})",
        total_events, args.drift
    );
    let engine = continuous_engine(args, data, split);
    let (model, pipeline, stats, _, _) = build_online(args, data, split, 0).into_parts();
    let mut evaluator = StreamTrainer::new(model, pipeline, stats, stream_config(args, 0));
    evaluator.warm_from(&split.train);
    evaluator.bind_metrics(engine.metrics_registry());
    let (tx, source) = ChannelSource::unbounded();
    let evaluator_thread = spawn_trainer(evaluator, source, "stream-evaluator");
    let baseline_elapsed = run_replay(&engine, &replay, args, None, Some(&tx));
    drop(tx);
    let evaluator = evaluator_thread.join().expect("stream evaluator thread");
    let baseline = LegQuality::of(&engine);
    shutdown_engine(engine);

    // Leg 2: stream-train + publish + hot-swap on the same stream.
    let registry_dir = args.registry.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("loadgen_registry_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let registry = ModelRegistry::create(&registry_dir, 4).unwrap_or_else(|e| {
        eprintln!("failed to create registry at {registry_dir}: {e}");
        std::process::exit(1);
    });
    let (model, pipeline, stats, _, _) = build_online(args, data, split, 0).into_parts();
    let mut trainer =
        StreamTrainer::new(model, pipeline, stats, stream_config(args, trainer_learn));
    trainer.warm_from(&split.train);
    trainer.set_registry(registry);
    if let Some(path) = &args.stream_checkpoint {
        trainer.set_checkpoint_path(path);
    }

    let engine = continuous_engine(args, data, split);
    // One metrics registry for both sides of the loop: the report's
    // `metrics` section carries `stream_*` next to `serve_*`.
    trainer.bind_metrics(engine.metrics_registry());
    let swap_log = SwapLog::new();
    let watcher = RegistryWatcher::spawn_logged(
        engine.clone(),
        &registry_dir,
        Duration::from_millis(args.registry_poll_ms.max(1)),
        Some(swap_log.clone()),
    );
    eprintln!(
        "continuous leg 2/2: trainer publishes every {} events to {registry_dir}, \
         watcher polls every {}ms",
        args.publish_every, args.registry_poll_ms
    );
    let (tx, source) = ChannelSource::unbounded();
    let trainer_thread = spawn_trainer(trainer, source, "stream-trainer");

    // Profile the stream-trained leg: serving shards *and* the trainer
    // thread's evaluate/learn/publish phases land in one profile.
    let profiler = args
        .profile_enabled()
        .then(|| rrc_obs::Profiler::start(args.profile_hz));
    let stream_elapsed = run_replay(&engine, &replay, args, None, Some(&tx));
    drop(tx); // stream over: the trainer drains its backlog and returns
    let mut trainer = trainer_thread.join().expect("stream trainer thread");
    let profile_snap = profiler.map(rrc_obs::Profiler::stop);
    watcher.stop();
    let stream = LegQuality::of(&engine);
    let report = engine.metrics();

    if let Some(path) = &args.stream_checkpoint {
        // Final durable state, even without a `--checkpoint-every` cadence.
        if let Err(e) = trainer.checkpoint_now() {
            eprintln!("failed to write stream checkpoint {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "stream checkpoint at {path} ({} events)",
            trainer.events_processed()
        );
    }

    // Publish → install freshness: join the trainer's publish instants
    // with the watcher's install instants by registry version.
    let swaps = swap_log.entries();
    let lags: Vec<Duration> = swaps
        .iter()
        .filter_map(|(version, installed)| {
            trainer
                .publish_log()
                .iter()
                .find(|(v, _)| v == version)
                .map(|(_, published)| installed.duration_since(*published))
        })
        .collect();
    let mean_ms = if lags.is_empty() {
        0.0
    } else {
        lags.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / lags.len() as f64
    };
    let max_ms = lags
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .fold(0.0, f64::max);

    let quality = engine
        .quality_report()
        .expect("continuous legs run with quality on");
    let versions_with_traffic = quality
        .versions
        .iter()
        .filter(|v| v.quality.ranking.opportunities > 0)
        .count();
    let gain = stream.hit10 - baseline.hit10;
    // The headline comparison: both trainers scored *every* eligible
    // repeat prequentially on identical streams; learning is the only
    // difference, and the sample is the full stream, not the sparse
    // served-recommend subset.
    let preq_gain = trainer.hit_rate(2) - evaluator.hit_rate(2);
    let preq_gain_windowed = trainer.windowed_hit_rate(2) - evaluator.windowed_hit_rate(2);
    let trainer_rate = trainer.events_processed() as f64 / stream_elapsed.as_secs_f64().max(1e-9);

    println!("{report}");
    println!(
        "continuous: prequential hit@10 frozen {:.3} -> stream-trained {:.3} \
         (gain {:+.3}, windowed {:+.3}) over {} opportunities (drift {})",
        evaluator.hit_rate(2),
        trainer.hit_rate(2),
        preq_gain,
        preq_gain_windowed,
        trainer.preq().opportunities,
        args.drift
    );
    println!(
        "continuous: served hit@10 frozen {:.3} -> stream-trained {:.3} (gain {:+.3}) \
         over {} scored recommends",
        baseline.hit10, stream.hit10, gain, stream.opportunities
    );
    println!(
        "continuous: {} publishes -> {} hot-swaps under load, {} versions served traffic, \
         publish->swap mean {:.0}ms max {:.0}ms",
        trainer.publishes(),
        swaps.len(),
        versions_with_traffic,
        mean_ms,
        max_ms
    );
    println!(
        "continuous: trainer ingested {} events ({} trained, {} SGD updates) at {:.0}/s; \
         windowed prequential hit@10 {:.3}",
        trainer.events_processed(),
        trainer.events_trained(),
        trainer.updates(),
        trainer_rate,
        trainer.windowed_hit_rate(2)
    );

    if let Some(path) = &args.json {
        let mut run = RunReport::new("loadgen-continuous")
            .config("users", args.users)
            .config("items", args.items)
            .config("events_lo", args.events_lo)
            .config("events_hi", args.events_hi)
            .config("shards", args.shards)
            .config("clients", args.clients)
            .config("topn", args.topn)
            .config("recommend_every", args.recommend_every)
            .config("learn", trainer_learn)
            .config("seed", args.seed)
            .config("window", args.window)
            .config("k", args.k)
            .config("omega", OMEGA)
            .config("drift", args.drift)
            .config("drift_at", args.drift_at)
            .config("publish_every", Json::from(args.publish_every))
            .config("registry_poll_ms", Json::from(args.registry_poll_ms))
            .config("arrival", args.arrival.clone())
            .config("rate", args.rate);
        run.add_section(
            "results",
            Json::obj(vec![
                ("events", Json::from(total_events)),
                ("elapsed_s", Json::F64(stream_elapsed.as_secs_f64())),
                ("events_per_sec", Json::F64(rate(stream_elapsed))),
                (
                    "baseline_elapsed_s",
                    Json::F64(baseline_elapsed.as_secs_f64()),
                ),
            ]),
        );
        run.add_section(
            "continuous",
            Json::obj(vec![
                ("baseline", baseline.to_json()),
                ("stream", stream.to_json()),
                ("gain_hit10", Json::F64(gain)),
                ("frozen_preq", evaluator.report()),
                ("preq_gain_hit10", Json::F64(preq_gain)),
                ("preq_gain_hit10_windowed", Json::F64(preq_gain_windowed)),
                ("publishes", Json::from(trainer.publishes())),
                ("swaps", Json::from(swaps.len())),
                ("versions_with_traffic", Json::from(versions_with_traffic)),
                (
                    "freshness_ms",
                    Json::obj([
                        ("joined", Json::from(lags.len())),
                        ("mean", Json::F64(mean_ms)),
                        ("max", Json::F64(max_ms)),
                    ]),
                ),
                ("trainer_events_per_sec", Json::F64(trainer_rate)),
                ("trainer", trainer.report()),
            ]),
        );
        if let Some(snap) = &profile_snap {
            run.add_section("profile", snap.to_json(10));
        }
        run.add_section("ustate", ustate_section(&report, args));
        run.add_section("engine", report.to_json());
        run.add_section("quality", quality.to_json());
        run.add_metrics(engine.metrics_registry());
        match run.write_to(path) {
            Ok(()) => eprintln!("wrote run report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let (Some(path), Some(snap)) = (&args.profile_out, &profile_snap) {
        match std::fs::write(path, snap.collapsed()) {
            Ok(()) => eprintln!(
                "profile: {} work samples over {} paths -> {path}",
                snap.work_samples,
                snap.entries.len()
            ),
            Err(e) => {
                eprintln!("failed to write profile {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    shutdown_engine(engine);
}

fn main() {
    let args = parse_args();

    eprintln!(
        "generating {} users x {}..{} events over {} items (seed {})",
        args.users, args.events_lo, args.events_hi, args.items, args.seed
    );
    let data = GeneratorConfig::tiny()
        .with_users(args.users)
        .with_items(args.items)
        .with_events_per_user(args.events_lo, args.events_hi)
        .with_user_skew(args.user_skew)
        .with_drift(args.drift)
        .with_drift_at(args.drift_at)
        .with_seed(args.seed)
        .generate();
    let split = data.split(0.7);
    if args.continuous {
        run_continuous(&args, &data, &split);
        return;
    }
    let replay: Vec<(UserId, Vec<ItemId>)> = split
        .test
        .iter()
        .enumerate()
        .map(|(u, s)| (UserId(u as u32), s.events().to_vec()))
        .collect();
    let total_events: usize = replay.iter().map(|(_, e)| e.len()).sum();
    let rate = |elapsed: Duration| total_events as f64 / elapsed.as_secs_f64().max(1e-9);

    // `--overhead` baseline leg: identical replay with the measured
    // subsystem off, so the two rates differ only by its cost. Plain
    // `--overhead` measures tracing (baseline: everything off);
    // `--overhead --forensics` measures forensics (baseline: tracing on,
    // forensics off — the BENCH_serve.json forensics on/off pair);
    // `--overhead --profile-out` measures the sampling profiler
    // (baseline: everything the measured leg has, profiler off — the
    // BENCH_serve.json profile_overhead pair).
    let profile_pair = args.overhead && args.profile_enabled();
    let forensic_pair = !profile_pair && args.overhead && args.forensics_enabled();
    let baseline = args.overhead.then(|| {
        eprintln!(
            "overhead baseline: {}",
            if profile_pair {
                "everything on, profiler off"
            } else if forensic_pair {
                "tracing on, forensics off"
            } else {
                "tracing off"
            }
        );
        // Best-of-N: each leg gets a fresh engine (identical seed and
        // stream), and only the fastest leg counts — a one-off slow leg
        // is scheduler noise, not subsystem cost.
        let mut best: Option<Duration> = None;
        for leg in 1..=args.overhead_reps {
            let online = build_online(&args, &data, &split, args.learn);
            let engine = Arc::new(ServeEngine::start_with(
                online,
                args.shards,
                EngineOptions {
                    tracing: forensic_pair || profile_pair,
                    quality: args.quality.then(QualityConfig::default),
                    ustate: ustate_options(&args),
                    overload: args.overload_options(),
                    forensics: if profile_pair {
                        args.forensics_options(None)
                    } else {
                        ForensicsOptions::default()
                    },
                    ..EngineOptions::default()
                },
            ));
            let elapsed = run_replay(&engine, &replay, &args, None, None);
            eprintln!(
                "overhead baseline leg {leg}/{}: {} events in {:.2?} ({:.0}/s)",
                args.overhead_reps,
                total_events,
                elapsed,
                rate(elapsed)
            );
            match Arc::try_unwrap(engine) {
                Ok(engine) => engine.shutdown(),
                Err(_) => unreachable!("no other engine handles exist"),
            }
            best = Some(best.map_or(elapsed, |b: Duration| b.min(elapsed)));
        }
        best.expect("at least one baseline leg")
    });

    // The measured side's extra legs (reps beyond the first): throwaway
    // engines with the measured leg's exact options, folded into the
    // best-of-N time. The *last* leg below stays the one that produces
    // the report, the profile snapshot, and every side artifact.
    let mut measured_best: Option<Duration> = None;
    if args.overhead && args.overhead_reps > 1 {
        for leg in 1..args.overhead_reps {
            let online = build_online(&args, &data, &split, args.learn);
            let engine = Arc::new(ServeEngine::start_with(
                online,
                args.shards,
                EngineOptions {
                    tracing: args.overhead || !args.no_tracing,
                    quality: args.quality.then(QualityConfig::default),
                    ustate: ustate_options(&args),
                    forensics: args.forensics_options(None),
                    overload: args.overload_options(),
                    ..EngineOptions::default()
                },
            ));
            let profiler = args
                .profile_enabled()
                .then(|| rrc_obs::Profiler::start(args.profile_hz));
            let elapsed = run_replay(&engine, &replay, &args, None, None);
            if let Some(p) = profiler {
                let _ = p.stop();
            }
            // Discard the throwaway leg's samples so the published
            // profile describes only the final leg.
            rrc_obs::profile::reset();
            eprintln!(
                "overhead measured leg {leg}/{}: {} events in {:.2?} ({:.0}/s)",
                args.overhead_reps,
                total_events,
                elapsed,
                rate(elapsed)
            );
            match Arc::try_unwrap(engine) {
                Ok(engine) => engine.shutdown(),
                Err(_) => unreachable!("no other engine handles exist"),
            }
            measured_best = Some(measured_best.map_or(elapsed, |b: Duration| b.min(elapsed)));
        }
    }

    // The measured engine. With `--overhead` this leg forces tracing on.
    let trace_sink = args.trace_out.as_ref().map(|path| {
        JsonlSink::to_file(path).unwrap_or_else(|e| {
            eprintln!("failed to open trace sink {path}: {e}");
            std::process::exit(1);
        })
    });
    let options = EngineOptions {
        tracing: args.overhead || !args.no_tracing,
        quality: args.quality.then(QualityConfig::default),
        ustate: ustate_options(&args),
        forensics: args.forensics_options(trace_sink.clone()),
        overload: args.overload_options(),
        ..EngineOptions::default()
    };
    let online = build_online(&args, &data, &split, args.learn);
    eprintln!(
        "starting engine: {} shards, {} clients, learn={}, tracing={}, quality={}, \
         budget={}, arrival={}, queue={} ({} events to replay)",
        args.shards,
        args.clients,
        args.learn,
        options.tracing,
        options.quality.is_some(),
        args.memory_budget
            .map_or("unbounded".to_string(), |b| format!(
                "{b}B/shard ({})",
                args.evict
            )),
        args.arrival,
        args.queue_cap
            .map_or("unbounded".to_string(), |c| format!("cap {c}")),
        total_events
    );
    let engine = Arc::new(ServeEngine::start_with(online, args.shards, options));

    // Arm the crash-dump path: a panic anywhere in the process (and
    // SIGTERM, via a polling watchdog) dumps every shard's flight ring
    // to a CRC-checked bundle before dying.
    if let Some(path) = &args.dump_flight {
        match engine.flight_dump_target(std::path::PathBuf::from(path)) {
            Some(target) => {
                rrc_obs::install_flight_dump(target);
                eprintln!("flight recorder armed: crash dumps go to {path}");
                #[cfg(unix)]
                {
                    rrc_obs::forensics::signals::install_sigterm_flag();
                    std::thread::spawn(|| loop {
                        std::thread::sleep(Duration::from_millis(100));
                        if rrc_obs::forensics::signals::sigterm_received() {
                            match rrc_obs::dump_flight_now("sigterm") {
                                Some(Ok(stats)) => {
                                    eprintln!("SIGTERM: dumped {} flight events", stats.events)
                                }
                                Some(Err(e)) => eprintln!("SIGTERM: flight dump failed: {e}"),
                                None => {}
                            }
                            std::process::exit(143);
                        }
                    });
                }
            }
            None => eprintln!("--dump-flight ignored: forensics needs tracing on"),
        }
    }

    // Deployment loop under load: install every version published into
    // the registry while the replay is running.
    let watcher = args.registry.as_ref().map(|dir| {
        eprintln!("watching registry {dir} every {}ms", args.registry_poll_ms);
        rrc_serve::RegistryWatcher::spawn(
            engine.clone(),
            dir,
            Duration::from_millis(args.registry_poll_ms.max(1)),
        )
    });

    // Profile only the replay itself: the sampler starts after warmup
    // and engine spin-up, so shares describe serving work.
    let profiler = args
        .profile_enabled()
        .then(|| rrc_obs::Profiler::start(args.profile_hz));
    if let Some(p) = &profiler {
        eprintln!("profiler on: sampling every thread at {:.0} Hz", p.hz());
    }

    let elapsed = run_replay(&engine, &replay, &args, args.inject_panic_after, None);

    let profile_snap = profiler.map(rrc_obs::Profiler::stop);
    let report = engine.metrics();
    println!("{report}");
    println!(
        "replayed {} events in {:.2?}: {:.0} events/sec ({} clients -> {} shards)",
        total_events,
        elapsed,
        rate(elapsed),
        args.clients,
        args.shards
    );
    if let Some(o) = &report.overload {
        let t = o.total();
        println!(
            "overload: offered {} = admitted {} + shed {} (queue {}, deadline {}), peak depth {}",
            t.offered,
            t.admitted,
            t.shed(),
            t.shed_queue,
            t.shed_deadline,
            o.peak_depth
        );
    }
    let quality = engine.quality_report();
    if let Some(q) = &quality {
        let overall = q.overall();
        println!(
            "online quality: {} opportunities, hit@10 {:.3}, mrr {:.3}, \
             drift score {}µ feature {}µ ({} versions)",
            overall.ranking.opportunities,
            overall.hit_rate_at(2),
            overall.ranking.mrr(),
            q.drift.score_micro,
            q.drift.feature_micro,
            q.versions.len()
        );
    }
    let overhead = baseline.map(|base| {
        let measured = measured_best.map_or(elapsed, |b| b.min(elapsed));
        let ratio = rate(measured) / rate(base).max(1e-9);
        let what = if profile_pair {
            "profiler overhead"
        } else if forensic_pair {
            "forensics overhead"
        } else {
            "tracing overhead"
        };
        println!(
            "{what}: {:.0}/s off -> {:.0}/s on (ratio {ratio:.3}, best of {} leg(s)/side)",
            rate(base),
            rate(measured),
            args.overhead_reps
        );
        ratio
    });

    if let (Some(path), Some(snap)) = (&args.profile_out, &profile_snap) {
        match std::fs::write(path, snap.collapsed()) {
            Ok(()) => eprintln!(
                "profile: {} work samples over {} paths ({} idle) -> {path}",
                snap.work_samples,
                snap.entries.len(),
                snap.idle_samples
            ),
            Err(e) => {
                eprintln!("failed to write profile {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(top) = snap.entries.first() {
            eprintln!(
                "profile: hottest path {} (self {:.1}%, {} allocs)",
                top.path,
                top.self_share * 100.0,
                top.alloc_count
            );
        }
    }

    // Drain the exemplar-trace sink and take the on-demand flight dump
    // now that the replay is over.
    if let Some(sink) = &trace_sink {
        sink.flush();
        eprintln!(
            "wrote {} exemplar traces to {}",
            sink.events_written(),
            args.trace_out.as_deref().unwrap_or("?")
        );
    }
    if let Some(path) = &args.dump_flight {
        match engine.write_flight_bundle(std::path::Path::new(path), "on-demand") {
            Some(Ok(stats)) => eprintln!(
                "flight bundle: {} events, crc {:#010x} -> {path}",
                stats.events, stats.crc32
            ),
            Some(Err(e)) => {
                eprintln!("failed to write flight bundle {path}: {e}");
                std::process::exit(1);
            }
            None => {}
        }
    }

    if let Some(path) = &args.json {
        let mut run = RunReport::new("loadgen")
            .config("users", args.users)
            .config("items", args.items)
            .config("events_lo", args.events_lo)
            .config("events_hi", args.events_hi)
            .config("shards", args.shards)
            .config("clients", args.clients)
            .config("topn", args.topn)
            .config("recommend_every", args.recommend_every)
            .config("learn", args.learn)
            .config("swap_every_ms", args.swap_every_ms)
            .config("seed", args.seed)
            .config("window", args.window)
            .config("k", args.k)
            .config("omega", OMEGA)
            .config("user_skew", args.user_skew)
            .config(
                "memory_budget",
                args.memory_budget.map_or(Json::Null, Json::from),
            )
            .config("evict", args.evict.to_string())
            .config("tracing", args.overhead || !args.no_tracing)
            .config("quality", args.quality)
            .config("forensics", args.forensics_enabled())
            .config("profile", args.profile_enabled())
            .config("profile_hz", args.profile_hz)
            .config("arrival", args.arrival.clone())
            .config("rate", args.rate)
            .config("hot_users", args.hot_users as usize)
            .config("hot_frac", args.hot_frac)
            .config("queue_cap", args.queue_cap.map_or(Json::Null, Json::from))
            .config(
                "deadline_us",
                args.deadline_us
                    .map_or(Json::Null, |us| Json::from(us as usize)),
            );
        let mut results = vec![
            ("events", Json::from(total_events)),
            ("elapsed_s", Json::F64(elapsed.as_secs_f64())),
            ("events_per_sec", Json::F64(rate(elapsed))),
        ];
        if let Some(ratio) = overhead {
            results.push((
                "baseline_events_per_sec",
                Json::F64(rate(baseline.unwrap())),
            ));
            // Each pair's baseline leg already ran with everything
            // *below* the measured layer enabled, so the ratio isolates
            // that one layer.
            let key = if profile_pair {
                "profiler_on_over_off"
            } else if forensic_pair {
                "forensics_on_over_off"
            } else {
                "tracing_on_over_off"
            };
            results.push((key, Json::F64(ratio)));
        }
        run.add_section("results", Json::obj(results));
        if let Some(snap) = &profile_snap {
            run.add_section("profile", snap.to_json(10));
        }
        run.add_section("ustate", ustate_section(&report, &args));
        // Request quantiles, per-stage breakdown + per-shard counters (the
        // acceptance surface), then the raw registry snapshot for
        // everything else.
        run.add_section("engine", report.to_json());
        if let Some(q) = &quality {
            run.add_section("quality", q.to_json());
        }
        run.add_metrics(engine.metrics_registry());
        match run.write_to(path) {
            Ok(()) => eprintln!("wrote run report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.save_model {
        // Fold the online learning into the snapshot before saving.
        let published = engine.publish();
        let meta = [
            ("source".to_string(), "loadgen".to_string()),
            ("seed".to_string(), args.seed.to_string()),
        ];
        match rrc_store::save_model(&published, &meta, path) {
            Ok(bytes) => eprintln!("saved model to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("failed to save model to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(watcher) = watcher {
        watcher.stop();
    }
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => unreachable!("watcher stopped, no other engine handles exist"),
    }
}
