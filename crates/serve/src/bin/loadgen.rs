//! Load generator for the sharded serving engine.
//!
//! Generates an `rrc-datagen` consumption stream, warms an engine from
//! the training prefix, then replays the test suffix from `--clients`
//! concurrent client threads: every event is a synchronous `observe`, and
//! every `--recommend-every`-th event also requests Top-N. Optionally a
//! background thread hot-swaps the model every `--swap-every` ms to
//! exercise swap-under-load. Finishes by printing the engine's
//! [`MetricsReport`](rrc_serve::MetricsReport) (p50/p95/p99 latency,
//! per-stage breakdown, per-shard traffic) and the end-to-end replay
//! rate.
//!
//! ```text
//! cargo run --release -p rrc-serve --bin loadgen -- --shards 4 --clients 8 --learn 3
//! ```
//!
//! Observability flags:
//!
//! * `--quality` turns on online quality monitoring: every served Top-N
//!   is scored against the user's next eligible repeat, attributed to the
//!   model version that served it (combine with `--swap-every` to watch
//!   attribution across hot-swaps), and the report gains a `quality`
//!   section plus drift gauges.
//! * `--no-tracing` disables request-scoped tracing; `--overhead` runs
//!   the replay twice (all observability off, then tracing + quality on)
//!   and reports both rates and their ratio — the tracing-overhead
//!   number committed in BENCH_serve.json.
//! * `--metrics-json PATH` writes a live run report atomically every
//!   `--metrics-every` ms during the replay; point `rrc-top` at it for a
//!   terminal dashboard.
//!
//! Defaults replay well over 10k events; `--users`/`--events` scale it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_obs::{Json, RunReport};
use rrc_sequence::{Dataset, ItemId, SplitDataset, UserId};
use rrc_serve::{EngineOptions, QualityConfig, ServeEngine, UstateOptions};
use rrc_ustate::EvictionPolicy;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OMEGA: usize = 10;

struct Args {
    users: usize,
    items: usize,
    events_lo: usize,
    events_hi: usize,
    shards: usize,
    clients: usize,
    topn: usize,
    recommend_every: usize,
    /// Negatives per observed eligible repeat; 0 freezes the model.
    learn: usize,
    /// Hot-swap period in milliseconds; 0 disables the swapper thread.
    swap_every_ms: u64,
    seed: u64,
    /// Write a machine-readable `RunReport` here after the replay.
    json: Option<String>,
    /// Start from a model stored with `rrc-store` instead of random init.
    load_model: Option<String>,
    /// After the replay, publish online learning and save the result.
    save_model: Option<String>,
    /// Watch an `rrc-store` model registry and hot-swap newly published
    /// versions during the replay.
    registry: Option<String>,
    /// Registry poll period in milliseconds.
    registry_poll_ms: u64,
    /// Online quality monitoring (served lists vs. next eligible repeat).
    quality: bool,
    /// Disable request-scoped tracing.
    no_tracing: bool,
    /// Replay twice — observability off then on — and report the ratio.
    overhead: bool,
    /// Live dashboard file, refreshed during the replay.
    metrics_json: Option<String>,
    /// Refresh period for `--metrics-json`, in milliseconds.
    metrics_every_ms: u64,
    /// Per-shard user-state byte budget; None = unbounded (classic).
    memory_budget: Option<usize>,
    /// Spill directory for bounded runs (temp dir when unset).
    spill_dir: Option<String>,
    /// Eviction policy for bounded runs.
    evict: EvictionPolicy,
    /// Zipf exponent of per-user activity skew in the generated stream.
    user_skew: f64,
    /// Latent dimension K of the served model.
    k: usize,
    /// Serving window capacity (events per user kept resident).
    window: usize,
}

impl Default for Args {
    fn default() -> Self {
        // ~300 users × 40–60 test events ≈ 15k replayed events.
        Args {
            users: 300,
            items: 500,
            events_lo: 130,
            events_hi: 200,
            shards: 4,
            clients: 4,
            topn: 10,
            recommend_every: 10,
            learn: 0,
            swap_every_ms: 0,
            seed: 42,
            json: None,
            load_model: None,
            save_model: None,
            registry: None,
            registry_poll_ms: 50,
            quality: false,
            no_tracing: false,
            overhead: false,
            metrics_json: None,
            metrics_every_ms: 500,
            memory_budget: None,
            spill_dir: None,
            evict: EvictionPolicy::default(),
            user_skew: 0.0,
            k: 16,
            window: 100,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--users N] [--items N] [--events LO HI] [--shards N] \
         [--clients N] [--topn N] [--recommend-every N] [--learn NEGATIVES] \
         [--swap-every MILLIS] [--seed N] [--json PATH] [--load-model PATH] \
         [--save-model PATH] [--registry DIR] [--registry-poll MILLIS] \
         [--quality] [--no-tracing] [--overhead] \
         [--metrics-json PATH] [--metrics-every MILLIS] \
         [--memory-budget BYTES] [--spill-dir DIR] [--evict clock|lru] \
         [--user-skew EXPONENT] [--k N] [--window N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--users" => args.users = num(&mut it),
            "--items" => args.items = num(&mut it),
            "--events" => {
                args.events_lo = num(&mut it);
                args.events_hi = num(&mut it);
            }
            "--shards" => args.shards = num(&mut it),
            "--clients" => args.clients = num(&mut it),
            "--topn" => args.topn = num(&mut it),
            "--recommend-every" => args.recommend_every = num(&mut it),
            "--learn" => args.learn = num(&mut it),
            "--swap-every" => args.swap_every_ms = num(&mut it) as u64,
            "--seed" => args.seed = num(&mut it) as u64,
            "--json" => args.json = Some(it.next().unwrap_or_else(|| usage())),
            "--load-model" => args.load_model = Some(it.next().unwrap_or_else(|| usage())),
            "--save-model" => args.save_model = Some(it.next().unwrap_or_else(|| usage())),
            "--registry" => args.registry = Some(it.next().unwrap_or_else(|| usage())),
            "--registry-poll" => args.registry_poll_ms = num(&mut it) as u64,
            "--quality" => args.quality = true,
            "--no-tracing" => args.no_tracing = true,
            "--overhead" => args.overhead = true,
            "--metrics-json" => args.metrics_json = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-every" => args.metrics_every_ms = num(&mut it) as u64,
            "--memory-budget" => args.memory_budget = Some(num(&mut it)),
            "--spill-dir" => args.spill_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--evict" => {
                args.evict = it
                    .next()
                    .and_then(|v| EvictionPolicy::parse(&v))
                    .unwrap_or_else(|| usage());
            }
            "--user-skew" => {
                args.user_skew = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| *s >= 0.0 && s.is_finite())
                    .unwrap_or_else(|| usage());
            }
            "--k" => args.k = num(&mut it),
            "--window" => args.window = num(&mut it),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if args.shards == 0
        || args.clients == 0
        || args.events_lo > args.events_hi
        || args.k == 0
        || args.window == 0
        || args.memory_budget == Some(0)
    {
        usage();
    }
    args
}

/// Build the warmed online recommender (deterministic for a given seed,
/// so `--overhead` can rebuild an identical one for each leg).
fn build_online(args: &Args, data: &Dataset, split: &SplitDataset) -> OnlineTsPpr {
    let stats = TrainStats::compute(&split.train, args.window);
    let pipeline = FeaturePipeline::standard();
    let model = match &args.load_model {
        Some(path) => {
            let model = rrc_store::load_model(path).unwrap_or_else(|e| {
                eprintln!("failed to load model from {path}: {e}");
                std::process::exit(1);
            });
            if (model.num_users(), model.num_items()) != (data.num_users(), data.num_items())
                || model.f_dim() != pipeline.len()
            {
                eprintln!(
                    "model at {path} has shape ({} users, {} items, f={}), \
                     replay needs ({}, {}, f={})",
                    model.num_users(),
                    model.num_items(),
                    model.f_dim(),
                    data.num_users(),
                    data.num_items(),
                    pipeline.len()
                );
                std::process::exit(1);
            }
            eprintln!("loaded model from {path}");
            model
        }
        None => {
            let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5eed);
            TsPprModel::init(
                &mut rng,
                data.num_users(),
                data.num_items(),
                args.k,
                pipeline.len(),
                0.1,
                0.05,
            )
        }
    };
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: args.window,
            omega: OMEGA,
            negatives_per_event: args.learn,
            seed: args.seed,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&split.train);
    online
}

/// Snapshot the engine into a run-report JSON and move it into place
/// atomically (write-to-temp + rename), so a concurrently polling
/// `rrc-top` never reads a torn file.
fn write_live_report(engine: &ServeEngine, args: &Args, path: &str) {
    let mut run = RunReport::new("loadgen-live")
        .config("shards", args.shards)
        .config("clients", args.clients)
        .config("seed", args.seed);
    let report = engine.metrics();
    run.add_section("ustate", ustate_section(&report, args));
    run.add_section("engine", report.to_json());
    if let Some(q) = engine.quality_report() {
        run.add_section("quality", q.to_json());
    }
    run.add_metrics(engine.metrics_registry());
    let tmp = format!("{path}.tmp");
    let write = std::fs::write(&tmp, run.render()).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = write {
        eprintln!("failed to refresh {path}: {e}");
    }
}

/// Replay the test streams against the engine. Returns the wall-clock
/// duration of the replay (flush included).
fn run_replay(
    engine: &Arc<ServeEngine>,
    replay: &[(UserId, Vec<ItemId>)],
    args: &Args,
) -> Duration {
    // Round-robin users over client threads so each user's stream stays on
    // one client — cross-client FIFO for the same user is not defined.
    let mut partitions: Vec<Vec<&(UserId, Vec<ItemId>)>> = vec![Vec::new(); args.clients];
    for (i, entry) in replay.iter().enumerate() {
        partitions[i % args.clients].push(entry);
    }

    let replay_start = Instant::now();
    let engine_ref = &**engine;
    let done = AtomicBool::new(false);
    let done_ref = &done;
    crossbeam::thread::scope(|scope| {
        if args.swap_every_ms > 0 {
            scope.spawn(move |_| {
                let period = Duration::from_millis(args.swap_every_ms);
                let mut swaps = 0u64;
                while !done_ref.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    let base = engine_ref.model();
                    engine_ref.swap_model((*base).clone());
                    swaps += 1;
                }
                eprintln!("swapper: {swaps} hot swaps under load");
            });
        }
        if let Some(path) = &args.metrics_json {
            let period = Duration::from_millis(args.metrics_every_ms.max(50));
            scope.spawn(move |_| {
                while !done_ref.load(Ordering::Relaxed) {
                    write_live_report(engine_ref, args, path);
                    std::thread::sleep(period);
                }
                // Final frame so the dashboard shows the finished state.
                write_live_report(engine_ref, args, path);
            });
        }
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| {
                scope.spawn(move |_| {
                    let mut until_recommend = args.recommend_every;
                    for (user, events) in part {
                        for &item in events {
                            engine_ref.observe(*user, item);
                            if args.recommend_every > 0 {
                                until_recommend -= 1;
                                if until_recommend == 0 {
                                    let _ = engine_ref.recommend(*user, args.topn);
                                    until_recommend = args.recommend_every;
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        done_ref.store(true, Ordering::Relaxed);
    })
    .expect("load scope");
    engine.flush();
    replay_start.elapsed()
}

/// The ISSUE-shaped convenience block summarising the user-state tier:
/// total users, resident footprint, and cache traffic. The full per-shard
/// series are still in the `engine` section / registry snapshot.
fn ustate_section(report: &rrc_serve::MetricsReport, args: &Args) -> Json {
    let u = &report.ustate;
    Json::obj([
        ("users", Json::from(args.users)),
        ("resident_users", Json::from(u.resident_users)),
        ("spilled_users", Json::from(u.spilled_users)),
        ("resident_bytes", Json::from(u.resident_bytes)),
        (
            "budget_bytes_per_shard",
            u.budget_bytes.map_or(Json::Null, Json::from),
        ),
        (
            "cache",
            Json::obj([
                ("hit", Json::from(u.hits)),
                ("miss", Json::from(u.misses)),
                ("evict", Json::from(u.evictions)),
                ("hit_rate", Json::F64(u.hit_rate)),
            ]),
        ),
    ])
}

/// The user-state tier options both engine legs share.
fn ustate_options(args: &Args) -> UstateOptions {
    UstateOptions {
        budget_bytes: args.memory_budget,
        policy: args.evict,
        spill_dir: args.spill_dir.as_ref().map(std::path::PathBuf::from),
    }
}

fn main() {
    let args = parse_args();

    eprintln!(
        "generating {} users x {}..{} events over {} items (seed {})",
        args.users, args.events_lo, args.events_hi, args.items, args.seed
    );
    let data = GeneratorConfig::tiny()
        .with_users(args.users)
        .with_items(args.items)
        .with_events_per_user(args.events_lo, args.events_hi)
        .with_user_skew(args.user_skew)
        .with_seed(args.seed)
        .generate();
    let split = data.split(0.7);
    let replay: Vec<(UserId, Vec<ItemId>)> = split
        .test
        .iter()
        .enumerate()
        .map(|(u, s)| (UserId(u as u32), s.events().to_vec()))
        .collect();
    let total_events: usize = replay.iter().map(|(_, e)| e.len()).sum();
    let rate = |elapsed: Duration| total_events as f64 / elapsed.as_secs_f64().max(1e-9);

    // `--overhead` baseline leg: identical replay with tracing off, so
    // the two rates differ only by the tracing instrumentation.
    let baseline = args.overhead.then(|| {
        let online = build_online(&args, &data, &split);
        eprintln!("overhead baseline: tracing off");
        let engine = Arc::new(ServeEngine::start_with(
            online,
            args.shards,
            EngineOptions {
                tracing: false,
                quality: args.quality.then(QualityConfig::default),
                ustate: ustate_options(&args),
                ..EngineOptions::default()
            },
        ));
        let elapsed = run_replay(&engine, &replay, &args);
        eprintln!(
            "overhead baseline: {} events in {:.2?} ({:.0}/s)",
            total_events,
            elapsed,
            rate(elapsed)
        );
        match Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => unreachable!("no other engine handles exist"),
        }
        elapsed
    });

    // The measured engine. With `--overhead` this leg forces tracing on.
    let options = EngineOptions {
        tracing: args.overhead || !args.no_tracing,
        quality: args.quality.then(QualityConfig::default),
        ustate: ustate_options(&args),
        ..EngineOptions::default()
    };
    let online = build_online(&args, &data, &split);
    eprintln!(
        "starting engine: {} shards, {} clients, learn={}, tracing={}, quality={}, \
         budget={} ({} events to replay)",
        args.shards,
        args.clients,
        args.learn,
        options.tracing,
        options.quality.is_some(),
        args.memory_budget
            .map_or("unbounded".to_string(), |b| format!(
                "{b}B/shard ({})",
                args.evict
            )),
        total_events
    );
    let engine = Arc::new(ServeEngine::start_with(online, args.shards, options));

    // Deployment loop under load: install every version published into
    // the registry while the replay is running.
    let watcher = args.registry.as_ref().map(|dir| {
        eprintln!("watching registry {dir} every {}ms", args.registry_poll_ms);
        rrc_serve::RegistryWatcher::spawn(
            engine.clone(),
            dir,
            Duration::from_millis(args.registry_poll_ms.max(1)),
        )
    });

    let elapsed = run_replay(&engine, &replay, &args);

    let report = engine.metrics();
    println!("{report}");
    println!(
        "replayed {} events in {:.2?}: {:.0} events/sec ({} clients -> {} shards)",
        total_events,
        elapsed,
        rate(elapsed),
        args.clients,
        args.shards
    );
    let quality = engine.quality_report();
    if let Some(q) = &quality {
        let overall = q.overall();
        println!(
            "online quality: {} opportunities, hit@10 {:.3}, mrr {:.3}, \
             drift score {}µ feature {}µ ({} versions)",
            overall.ranking.opportunities,
            overall.hit_rate_at(2),
            overall.ranking.mrr(),
            q.drift.score_micro,
            q.drift.feature_micro,
            q.versions.len()
        );
    }
    let overhead = baseline.map(|base| {
        let ratio = rate(elapsed) / rate(base).max(1e-9);
        println!(
            "tracing overhead: {:.0}/s off -> {:.0}/s on (ratio {ratio:.3})",
            rate(base),
            rate(elapsed)
        );
        ratio
    });

    if let Some(path) = &args.json {
        let mut run = RunReport::new("loadgen")
            .config("users", args.users)
            .config("items", args.items)
            .config("events_lo", args.events_lo)
            .config("events_hi", args.events_hi)
            .config("shards", args.shards)
            .config("clients", args.clients)
            .config("topn", args.topn)
            .config("recommend_every", args.recommend_every)
            .config("learn", args.learn)
            .config("swap_every_ms", args.swap_every_ms)
            .config("seed", args.seed)
            .config("window", args.window)
            .config("k", args.k)
            .config("omega", OMEGA)
            .config("user_skew", args.user_skew)
            .config(
                "memory_budget",
                args.memory_budget.map_or(Json::Null, Json::from),
            )
            .config("evict", args.evict.to_string())
            .config("tracing", args.overhead || !args.no_tracing)
            .config("quality", args.quality);
        let mut results = vec![
            ("events", Json::from(total_events)),
            ("elapsed_s", Json::F64(elapsed.as_secs_f64())),
            ("events_per_sec", Json::F64(rate(elapsed))),
        ];
        if let Some(ratio) = overhead {
            results.push((
                "baseline_events_per_sec",
                Json::F64(rate(baseline.unwrap())),
            ));
            results.push(("tracing_on_over_off", Json::F64(ratio)));
        }
        run.add_section("results", Json::obj(results));
        run.add_section("ustate", ustate_section(&report, &args));
        // Request quantiles, per-stage breakdown + per-shard counters (the
        // acceptance surface), then the raw registry snapshot for
        // everything else.
        run.add_section("engine", report.to_json());
        if let Some(q) = &quality {
            run.add_section("quality", q.to_json());
        }
        run.add_metrics(engine.metrics_registry());
        match run.write_to(path) {
            Ok(()) => eprintln!("wrote run report to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &args.save_model {
        // Fold the online learning into the snapshot before saving.
        let published = engine.publish();
        let meta = [
            ("source".to_string(), "loadgen".to_string()),
            ("seed".to_string(), args.seed.to_string()),
        ];
        match rrc_store::save_model(&published, &meta, path) {
            Ok(bytes) => eprintln!("saved model to {path} ({bytes} bytes)"),
            Err(e) => {
                eprintln!("failed to save model to {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(watcher) = watcher {
        watcher.stop();
    }
    match Arc::try_unwrap(engine) {
        Ok(engine) => engine.shutdown(),
        Err(_) => unreachable!("watcher stopped, no other engine handles exist"),
    }
}
