//! The sharded serving engine.
//!
//! # Architecture
//!
//! `ServeEngine::start` consumes a warmed [`OnlineTsPpr`] and partitions
//! its per-user state across `N` shard threads by
//! [`shard_for(user, N)`](crate::routing::shard_for). Each shard owns,
//! exclusively and without locks:
//!
//! * a [`UserStateTier`] holding every routed user's [`WindowState`] and
//!   materialised factor rows — unbounded by default, or capped at a
//!   per-shard byte budget with cold users spilled to a CRC-checked
//!   segment file and reloaded bit-exactly on their next request,
//! * a deterministic [`StdRng`] for online negative sampling
//!   (seed = `config.seed + shard_id`, so shard 0 of a 1-shard engine
//!   draws the exact stream [`OnlineTsPpr`] would), and
//! * a [`ModelOverlay`] — copy-on-write SGD deltas over the shared
//!   immutable `Arc<TsPprModel>` snapshot. With the tier in place the
//!   overlay carries *item*-side deltas only; user rows (`u`, `A_u`)
//!   live in the tier so they can be evicted with their window.
//!
//! Requests reach shards over per-shard FIFO channels; replies come back
//! on per-request rendezvous channels. Because *every* message for a user
//! — observe, recommend, flush, and both hot-swap phases — travels the
//! same FIFO queue, a user's events can never be dropped or reordered,
//! including across a model swap.
//!
//! # Hot swap
//!
//! [`ServeEngine::swap_model`] publishes new weights in two phases, both
//! in-band:
//!
//! 1. **Harvest** — each shard extracts its accumulated online delta
//!    ([`ModelDiff`]) and keeps serving on its old snapshot.
//! 2. The engine merges every shard's delta into the incoming model and
//!    wraps it in an `Arc`.
//! 3. **Install** — each shard switches to the merged snapshot; deltas
//!    accumulated *between* harvest and install are rebased onto the new
//!    weights, so no online learning is lost mid-stream.

use crate::metrics::{EngineMetrics, MetricsReport};
use crate::overlay::{ModelDiff, ModelOverlay};
use crate::overload::{Admission, OverloadOptions, RequestKind, ShedReason};
use crate::quality::{self, micro, QualityConfig, QualityReport, ShardQuality, VersionQuality};
use crate::routing::shard_for;
use crate::trace::{ShardStamp, StageNanos, TraceCtx};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::parallel::mix64;
use rrc_core::{
    observe_single, recommend_single, ModelParams, OnlineConfig, OnlineTsPpr, TsPprModel,
};
use rrc_features::{FeatureContext, FeaturePipeline, TrainStats};
use rrc_obs::{
    BurnConfig, FlightBundleStats, FlightDumpTarget, FlightRecorder, Json, JsonlSink, ProfGuard,
    SloState, WindowSpec,
};
use rrc_sequence::{ConsumptionKind, ItemId, UserId, WindowState};
use rrc_ustate::{EvictionPolicy, TierConfig, TierParams, UserStateTier};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// User-state tier sizing, chosen at [`ServeEngine::start_with`] time.
///
/// The default is the classic unbounded engine: every user's state stays
/// resident forever and nothing touches disk. Setting `budget_bytes`
/// bounds each shard's resident footprint; cold users spill to a
/// per-shard segment file under `spill_dir` (a process-private temp
/// directory when unset) and reload bit-exactly on their next request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UstateOptions {
    /// Per-shard resident byte budget. `None` = unbounded.
    pub budget_bytes: Option<usize>,
    /// Eviction policy for cold users (CLOCK by default).
    pub policy: EvictionPolicy,
    /// Directory for the per-shard spill segments (`shard-<id>.useg`).
    /// Ignored when unbounded; defaults to a temp directory.
    pub spill_dir: Option<PathBuf>,
}

/// Declarative service-level objectives, evaluated by
/// [`ServeEngine::slo_tick`] over the rolling windowed series with
/// multi-window burn rates. Every objective is optional; with none set
/// the SLO engine is not constructed at all.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloOptions {
    /// Max acceptable windowed observe p99 (max across shards), in ns.
    pub observe_p99_ns: Option<u64>,
    /// Max acceptable windowed recommend p99 (max across shards), in ns.
    pub recommend_p99_ns: Option<u64>,
    /// Min acceptable windowed-over-cumulative hit@10 ratio (e.g. 0.95 =
    /// "recent quality within 5% of since-install"). Needs quality
    /// monitoring enabled; the objective freezes while idle.
    pub quality_ratio: Option<f64>,
    /// Max acceptable windowed shed fraction (shed / offered across all
    /// shards and kinds, e.g. 0.05 = "shed at most 5% of recent
    /// traffic"). Needs overload accounting enabled
    /// ([`OverloadOptions::enabled`]); freezes while no traffic is
    /// offered.
    pub shed_rate: Option<f64>,
    /// Burn-rate window shape shared by every objective.
    pub burn: BurnConfig,
}

/// Forensic observability: tail-sampled exemplar traces, per-shard
/// flight-recorder rings, and the SLO burn-rate engine. Off by default —
/// and inert without `tracing`, which provides the stage stamps exemplar
/// traces are made of.
#[derive(Debug, Clone)]
pub struct ForensicsOptions {
    /// Master switch for reservoirs, exemplars, and flight rings.
    pub enabled: bool,
    /// Per-shard reservoir size: the K slowest and K most recent
    /// completed traces are retained per rolling window.
    pub reservoir_k: usize,
    /// Per-shard flight-recorder ring capacity, in events.
    pub flight_capacity: usize,
    /// Sink receiving one JSONL `trace` event per reservoir admission
    /// (tail-based sampling: admission *is* the sampling decision).
    pub trace_sink: Option<Arc<JsonlSink>>,
    /// SLO objectives; evaluated when [`ServeEngine::slo_tick`] is
    /// called (independent of `enabled`, though latency objectives read
    /// series only forensics populates).
    pub slo: SloOptions,
    /// Fault injection for tests and smoke runs: stall the owning shard
    /// for the given duration whenever it scores a request from this
    /// user id (the stall lands in the `score` stage).
    pub inject_slow: Option<(u32, Duration)>,
}

impl Default for ForensicsOptions {
    fn default() -> Self {
        ForensicsOptions {
            enabled: false,
            reservoir_k: 8,
            flight_capacity: 256,
            trace_sink: None,
            slo: SloOptions::default(),
            inject_slow: None,
        }
    }
}

impl PartialEq for ForensicsOptions {
    fn eq(&self, other: &Self) -> bool {
        let sink_eq = match (&self.trace_sink, &other.trace_sink) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        sink_eq
            && self.enabled == other.enabled
            && self.reservoir_k == other.reservoir_k
            && self.flight_capacity == other.flight_capacity
            && self.slo == other.slo
            && self.inject_slow == other.inject_slow
    }
}

/// Optional engine subsystems, chosen at [`ServeEngine::start_with`] time.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOptions {
    /// Request-scoped tracing: per-stage latency histograms plus
    /// queue-depth / in-flight gauges. Cheap (a few atomic ops per
    /// request) and on by default; turn off to measure its overhead.
    pub tracing: bool,
    /// Online quality monitoring (served lists scored against the user's
    /// next eligible repeat, attributed to the serve-time model version,
    /// plus drift gauges). Off by default: it retains the last served
    /// list per user.
    pub quality: Option<QualityConfig>,
    /// Rolling window for the tracing subsystem's windowed series.
    pub window: WindowSpec,
    /// User-state tier sizing (unbounded by default).
    pub ustate: UstateOptions,
    /// Forensic observability (exemplar traces, flight recorder, SLOs).
    pub forensics: ForensicsOptions,
    /// Overload policy: bounded per-shard queues with priority shedding
    /// and per-request deadlines (unbounded / no shedding by default).
    pub overload: OverloadOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            tracing: true,
            quality: None,
            window: WindowSpec::default(),
            ustate: UstateOptions::default(),
            forensics: ForensicsOptions::default(),
            overload: OverloadOptions::default(),
        }
    }
}

/// Reply to a synchronous [`Request::Observe`]. `Err` means the request
/// was admitted but expired in the queue (deadline shed); requests
/// without a deadline always come back `Ok`.
struct ObserveReply {
    outcome: Result<ConsumptionKind, ShedReason>,
    stamp: Option<ShardStamp>,
}

/// Reply to a [`Request::Recommend`]; `Err` as for [`ObserveReply`].
struct RecommendReply {
    items: Result<Vec<ItemId>, ShedReason>,
    stamp: Option<ShardStamp>,
}

/// A message to a shard. Every request for a user flows through the same
/// FIFO queue, which is what guarantees per-user ordering.
enum Request {
    /// Ingest one consumption event. `reply` is `None` for
    /// fire-and-forget ingestion ([`ServeEngine::observe_nowait`]).
    Observe {
        user: UserId,
        item: ItemId,
        trace: Option<TraceCtx>,
        reply: Option<Sender<ObserveReply>>,
        /// Shed (not served) if still queued past this instant.
        deadline: Option<Instant>,
    },
    /// Top-N repeat recommendations for `user` right now.
    Recommend {
        user: UserId,
        n: usize,
        trace: Option<TraceCtx>,
        reply: Sender<RecommendReply>,
        /// Shed (not served) if still queued past this instant.
        deadline: Option<Instant>,
    },
    /// Barrier: reply once everything queued before this is processed.
    Flush { reply: Sender<()> },
    /// Hot-swap phase 1: extract the shard's accumulated online delta.
    Harvest { reply: Sender<ModelDiff> },
    /// Hot-swap phase 2: switch to the merged snapshot, which from now on
    /// serves as model `version` for quality attribution.
    Install {
        model: Arc<TsPprModel>,
        version: u64,
        reply: Sender<()>,
    },
    /// Clone out every window this shard owns (state inspection / tests).
    ExportWindows {
        reply: Sender<Vec<(u32, WindowState)>>,
    },
    /// Export the shard's cumulative per-version online quality.
    ExportQuality { reply: Sender<Vec<VersionQuality>> },
    /// Drain and exit the shard thread.
    Shutdown,
}

/// Everything one shard thread owns.
struct Shard {
    id: usize,
    overlay: ModelOverlay,
    pipeline: Arc<FeaturePipeline>,
    stats: Arc<TrainStats>,
    config: OnlineConfig,
    /// Every routed user's window + factor rows, bounded or not.
    tier: UserStateTier,
    rng: StdRng,
    metrics: Arc<EngineMetrics>,
    /// Model version currently installed (0 = the start snapshot);
    /// stamped onto served lists for quality attribution.
    version: u64,
    quality: Option<ShardQuality>,
    /// Fault injection: stall this user's requests (see
    /// [`ForensicsOptions::inject_slow`]).
    inject_slow: Option<(u32, Duration)>,
    /// Scratch feature buffer for the drift top-1 sample.
    fbuf: Vec<f64>,
}

impl Shard {
    /// Tracing hooks for one traced request: dequeue stamp (plus the
    /// observed queue depth) now, processed stamp when done. `None` when
    /// the request carries no trace or tracing is disabled.
    fn dequeue_stamp(&self, trace: Option<&TraceCtx>) -> Option<(Instant, u64)> {
        match (self.metrics.tracing.as_ref(), trace) {
            (Some(t), Some(tr)) => Some(t.on_dequeue(self.id, tr)),
            _ => None,
        }
    }

    fn processed_stamp(
        &self,
        trace: Option<&TraceCtx>,
        dequeued: Option<(Instant, u64)>,
        kind: &'static str,
    ) -> Option<ShardStamp> {
        let stamp = match (self.metrics.tracing.as_ref(), trace, dequeued) {
            (Some(t), Some(tr), Some((d, depth))) => {
                let (processed, stages) = t.on_processed(self.id, tr, d);
                if let Some(fx) = &self.metrics.forensics {
                    if crate::metrics::sampled(tr.id) {
                        fx.on_processed_shard(self.id, tr, &stages, depth, kind, self.version);
                    }
                }
                Some(ShardStamp {
                    dequeued: d,
                    processed,
                    queue_depth: depth,
                    version: self.version,
                })
            }
            _ => None,
        };
        if let (Some(t), Some(_)) = (self.metrics.tracing.as_ref(), trace) {
            t.on_complete(self.id);
        }
        stamp
    }

    /// Give back the bounded-queue slot this data request held (no-op on
    /// an ungated engine). Every enqueued data request — `try_*` or
    /// legacy path — took exactly one slot, so this runs unconditionally
    /// at dequeue, before the deadline check.
    fn release_slot(&self) {
        if let Some(om) = &self.metrics.overload {
            if let Some(gate) = om.gate(self.id) {
                gate.release();
            }
        }
    }

    /// True when the request sat in the queue past its deadline and must
    /// be shed instead of served late.
    fn expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() > d)
    }

    /// Account a deadline shed and balance the tracing gauges for a
    /// request that will never be processed: the dequeue drops the
    /// queue-depth gauge, the completion drops in-flight. No stage
    /// latencies are recorded — stage histograms describe *served*
    /// requests only.
    fn shed_at_dequeue(&self, kind: RequestKind, trace: Option<&TraceCtx>) {
        if let Some(om) = &self.metrics.overload {
            om.on_shed_deadline(self.id, kind);
        }
        if let Some(fx) = &self.metrics.forensics {
            fx.flight[self.id].record(
                "shed",
                vec![
                    ("kind", Json::Str(kind.as_str().to_string())),
                    (
                        "reason",
                        Json::Str(ShedReason::Deadline.as_str().to_string()),
                    ),
                ],
            );
        }
        if let (Some(t), Some(tr)) = (self.metrics.tracing.as_ref(), trace) {
            let _ = t.on_dequeue(self.id, tr);
            t.on_complete(self.id);
        }
    }

    /// Count a data request that was actually served, closing its side of
    /// the conservation law (`offered == admitted + shed`).
    fn note_admitted(&self, kind: RequestKind) {
        if let Some(om) = &self.metrics.overload {
            om.on_admitted(self.id, kind);
        }
    }

    /// Fault injection: stall scoring for the configured user so tests
    /// can manufacture a known-slow request (lands in the `score` stage,
    /// between the dequeue and processed stamps).
    fn stall_if_injected(&self, user: UserId) {
        if let Some((target, dur)) = self.inject_slow {
            if user.0 == target {
                // Deliberately profiled: the stall shows up as its own
                // path under `score`, so `rrc-prof diff --fail-on-grow`
                // can prove it catches an injected regression.
                let _p = ProfGuard::enter("inject_stall");
                std::thread::sleep(dur);
            }
        }
    }

    /// Re-account the touched user, enforce the byte budget, and drain
    /// the tier's metrics delta (hits/misses/evictions, spill/load
    /// latencies) plus footprint gauges into the engine registry.
    fn settle_tier(&mut self, user: UserId) {
        self.tier
            .note_access(user)
            .expect("user-state tier: spill evicted state");
        let delta = self.tier.take_delta();
        if let Some(fx) = &self.metrics.forensics {
            // Evictions and spills are rare, high-signal events — exactly
            // what a post-incident flight dump should show.
            for &u in &delta.evicted_users {
                fx.flight[self.id].record("eviction", vec![("user", Json::U64(u as u64))]);
            }
            for &ns in &delta.spill_ns {
                fx.flight[self.id].record("spill", vec![("spill_ns", Json::U64(ns))]);
            }
        }
        self.metrics.ustate.record(self.id, &delta);
        self.metrics.ustate.set_footprint(
            self.id,
            self.tier.resident_bytes(),
            self.tier.resident_users(),
            self.tier.spilled_users(),
            self.tier.spill_file_bytes(),
            self.tier.budget_bytes(),
        );
    }

    fn run(mut self, rx: Receiver<Request>) {
        for req in rx.iter() {
            match req {
                Request::Observe {
                    user,
                    item,
                    trace,
                    reply,
                    deadline,
                } => {
                    // Profile frames cover only the *active* request body:
                    // the blocking `rx.iter()` wait above reads as idle, so
                    // shares measure work, not queue time.
                    let _shard = ProfGuard::enter_path(&["serve", "shard", "observe"]);
                    let dequeued = {
                        let _p = ProfGuard::enter("dequeue");
                        self.release_slot();
                        if Self::expired(deadline) {
                            self.shed_at_dequeue(RequestKind::Observe, trace.as_ref());
                            if let Some(reply) = reply {
                                let _ = reply.send(ObserveReply {
                                    outcome: Err(ShedReason::Deadline),
                                    stamp: None,
                                });
                            }
                            continue;
                        }
                        self.dequeue_stamp(trace.as_ref())
                    };
                    let (kind, updates) = {
                        let _p = ProfGuard::enter("score");
                        self.stall_if_injected(user);
                        let base = self.tier.base().clone();
                        let (window, factors) = self
                            .tier
                            .get_or_load(user)
                            .expect("user-state tier: reload spilled state");
                        let mut params = TierParams::new(user, factors, &base, &mut self.overlay);
                        let out = observe_single(
                            &mut params,
                            &self.pipeline,
                            &self.stats,
                            &self.config,
                            user,
                            window,
                            &mut self.rng,
                            item,
                        );
                        if let Some(q) = &mut self.quality {
                            q.on_observe(user, item, out.0);
                        }
                        self.settle_tier(user);
                        out
                    };
                    let _p = ProfGuard::enter("respond");
                    let counters = &self.metrics.shards[self.id];
                    counters.observes.inc();
                    counters.online_updates.add(updates);
                    self.note_admitted(RequestKind::Observe);
                    let stamp = self.processed_stamp(trace.as_ref(), dequeued, "observe");
                    if let Some(reply) = reply {
                        let _ = reply.send(ObserveReply {
                            outcome: Ok(kind),
                            stamp,
                        });
                    }
                }
                Request::Recommend {
                    user,
                    n,
                    trace,
                    reply,
                    deadline,
                } => {
                    let _shard = ProfGuard::enter_path(&["serve", "shard", "recommend"]);
                    let dequeued = {
                        let _p = ProfGuard::enter("dequeue");
                        self.release_slot();
                        if Self::expired(deadline) {
                            self.shed_at_dequeue(RequestKind::Recommend, trace.as_ref());
                            let _ = reply.send(RecommendReply {
                                items: Err(ShedReason::Deadline),
                                stamp: None,
                            });
                            continue;
                        }
                        self.dequeue_stamp(trace.as_ref())
                    };
                    let recs = {
                        let _p = ProfGuard::enter("score");
                        self.stall_if_injected(user);
                        let base = self.tier.base().clone();
                        let (window, factors) = self
                            .tier
                            .get_or_load(user)
                            .expect("user-state tier: reload spilled state");
                        let params = TierParams::new(user, factors, &base, &mut self.overlay);
                        let recs = recommend_single(
                            &params,
                            &self.pipeline,
                            &self.stats,
                            self.config.omega,
                            user,
                            window,
                            n,
                        );
                        if let Some(q) = &mut self.quality {
                            // Drift sample: the top-1 item's predicted score and
                            // feature mean, under the model that just served it.
                            let sample = recs.first().map(|&top| {
                                let fctx = FeatureContext {
                                    window,
                                    stats: &self.stats,
                                };
                                self.pipeline.extract_into(&fctx, top, &mut self.fbuf);
                                let mean =
                                    self.fbuf.iter().sum::<f64>() / self.fbuf.len().max(1) as f64;
                                (micro(params.score(user, top, &self.fbuf)), micro(mean))
                            });
                            q.on_recommend(user, &recs, self.version, sample);
                        }
                        self.settle_tier(user);
                        recs
                    };
                    let _p = ProfGuard::enter("respond");
                    self.metrics.shards[self.id].recommends.inc();
                    self.note_admitted(RequestKind::Recommend);
                    let stamp = self.processed_stamp(trace.as_ref(), dequeued, "recommend");
                    let _ = reply.send(RecommendReply {
                        items: Ok(recs),
                        stamp,
                    });
                }
                Request::Flush { reply } => {
                    let _ = reply.send(());
                }
                Request::Harvest { reply } => {
                    // Item-side deltas come from the overlay; user-side
                    // (`u` rows and transforms) from the tier, which also
                    // folds in deltas sitting in spilled records — the
                    // delta-merge-before-evict rule means no online
                    // learning is lost to an eviction.
                    let mut diff = self.overlay.harvest();
                    let (users, transforms) =
                        self.tier.harvest().expect("user-state tier: harvest");
                    debug_assert!(
                        diff.users.is_empty() && diff.transforms.is_empty(),
                        "user-side writes route through the tier"
                    );
                    diff.users = users;
                    diff.transforms = transforms;
                    let _ = reply.send(diff);
                }
                Request::Install {
                    model,
                    version,
                    reply,
                } => {
                    self.overlay.install(model.clone());
                    self.tier.install(model, version);
                    self.version = version;
                    if let Some(fx) = &self.metrics.forensics {
                        fx.flight[self.id].record("swap", vec![("version", Json::U64(version))]);
                    }
                    self.metrics.shards[self.id].swaps.inc();
                    let _ = reply.send(());
                }
                Request::ExportWindows { reply } => {
                    let out = self
                        .tier
                        .export_windows()
                        .expect("user-state tier: read spilled windows");
                    let _ = reply.send(out);
                }
                Request::ExportQuality { reply } => {
                    let out = self
                        .quality
                        .as_ref()
                        .map(|q| q.export())
                        .unwrap_or_default();
                    let _ = reply.send(out);
                }
                Request::Shutdown => break,
            }
        }
    }
}

/// Handle to a running sharded serving engine.
///
/// The handle is the client side: it routes requests, measures
/// client-observed latency, and orchestrates hot swaps. Shards exit when
/// the handle is dropped (or [`ServeEngine::shutdown`] is called).
pub struct ServeEngine {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    metrics: Arc<EngineMetrics>,
    /// Last published snapshot. Behind a mutex (held for the whole
    /// two-phase swap) so hot swaps can run from any client thread while
    /// traffic continues; shards never touch this lock.
    model: Mutex<Arc<TsPprModel>>,
    /// Monotone install counter; the snapshot the engine started with is
    /// version 0. Bumped under the model mutex.
    version: AtomicU64,
    config: OnlineConfig,
    /// Default per-request deadline the `try_*` paths apply when the
    /// caller passes none ([`OverloadOptions::deadline`]).
    default_deadline: Option<Duration>,
    started: Instant,
}

impl ServeEngine {
    /// Spin up `shards` worker threads with default options (tracing on,
    /// quality monitoring off). See [`ServeEngine::start_with`].
    pub fn start(online: OnlineTsPpr, shards: usize) -> Self {
        Self::start_with(online, shards, EngineOptions::default())
    }

    /// Spin up `shards` worker threads, taking over the state of `online`.
    ///
    /// Each user's window moves to the shard `shard_for(user, shards)`
    /// selects; the model becomes the shared immutable snapshot
    /// (version 0). `options` picks the observability subsystems.
    pub fn start_with(online: OnlineTsPpr, shards: usize, options: EngineOptions) -> Self {
        assert!(shards > 0, "at least one shard required");
        let (model, pipeline, stats, config, windows) = online.into_parts();
        let model = Arc::new(model);
        let pipeline = Arc::new(pipeline);
        let stats = Arc::new(stats);
        let metrics = Arc::new(EngineMetrics::new(
            shards,
            options.tracing,
            options.window,
            options.quality,
            options.ustate.budget_bytes,
            &options.forensics,
            &options.overload,
        ));

        // Partition per-user windows by the routing function, in user
        // order — tier seeding (and thus the eviction scan order under a
        // tight budget) stays deterministic across runs.
        let mut partitions: Vec<Vec<(u32, WindowState)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (idx, window) in windows.into_iter().enumerate() {
            let user = UserId(idx as u32);
            partitions[shard_for(user, shards)].push((user.0, window));
        }

        // Bounded engines need somewhere to spill; default to a
        // process-private temp directory. Stale segments from a previous
        // engine in the same directory are removed — spill files only
        // make sense together with the in-memory tier that wrote them.
        let spill_dir = options.ustate.spill_dir.clone().or_else(|| {
            options.ustate.budget_bytes.map(|_| {
                static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
                std::env::temp_dir().join(format!(
                    "rrc-ustate-{}-{}",
                    std::process::id(),
                    SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
                ))
            })
        });
        if let Some(dir) = &spill_dir {
            std::fs::create_dir_all(dir).expect("create spill directory");
        }

        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (id, windows) in partitions.into_iter().enumerate() {
            let (tx, rx) = unbounded();
            let spill_path = spill_dir
                .as_ref()
                .map(|d| d.join(format!("shard-{id}.useg")));
            if let Some(p) = &spill_path {
                std::fs::remove_file(p).ok();
            }
            let mut tier = UserStateTier::new(
                TierConfig {
                    window: config.window,
                    budget_bytes: options.ustate.budget_bytes,
                    policy: options.ustate.policy,
                    spill_path,
                    remove_spill_on_drop: true,
                },
                model.clone(),
                0,
            )
            .expect("user-state tier: open spill segment");
            for (u, w) in windows {
                tier.seed_window(u, w);
            }
            tier.enforce_budget()
                .expect("user-state tier: spill warm windows");
            let shard = Shard {
                id,
                overlay: ModelOverlay::new(model.clone()),
                pipeline: pipeline.clone(),
                stats: stats.clone(),
                config,
                tier,
                // Shard 0 draws the stream OnlineTsPpr would, which makes a
                // 1-shard engine's online learning byte-for-byte comparable.
                rng: StdRng::seed_from_u64(config.seed.wrapping_add(id as u64)),
                metrics: metrics.clone(),
                version: 0,
                quality: metrics
                    .quality
                    .as_ref()
                    .map(|q| ShardQuality::new(metrics.registry.clone(), q.spec, q.drift.clone())),
                inject_slow: options.forensics.inject_slow,
                fbuf: Vec::with_capacity(pipeline.len()),
            };
            let handle = std::thread::Builder::new()
                .name(format!("rrc-serve-shard-{id}"))
                .spawn(move || shard.run(rx))
                .expect("spawn shard thread");
            senders.push(tx);
            handles.push(handle);
        }

        ServeEngine {
            senders,
            handles,
            metrics,
            model: Mutex::new(model),
            version: AtomicU64::new(0),
            config,
            default_deadline: options.overload.deadline,
            started: Instant::now(),
        }
    }

    /// Number of shard threads.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The serving configuration (window size, omega, online-learning
    /// settings) inherited from the [`OnlineTsPpr`].
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The most recently published model snapshot. Shards may hold
    /// unharvested online deltas on top of it; [`ServeEngine::publish`]
    /// folds those in.
    pub fn model(&self) -> Arc<TsPprModel> {
        self.model.lock().expect("model lock").clone()
    }

    /// Mint a trace context for a request bound for `shard` (bumping its
    /// queue-depth / in-flight gauges), or `None` with tracing off.
    fn trace_for(&self, shard: usize, user: UserId) -> Option<TraceCtx> {
        self.metrics
            .tracing
            .as_ref()
            .map(|t| t.on_enqueue(shard, mix64(user.0 as u64)))
    }

    /// Close a traced request: decompose the four stamps into stages,
    /// record the `respond` leg, and hand the completed timeline to
    /// forensics (reservoir admission, exemplars, trace sink).
    fn close_trace(
        &self,
        shard: usize,
        kind: &'static str,
        trace: Option<TraceCtx>,
        stamp: Option<ShardStamp>,
    ) {
        let (Some(t), Some(tr), Some(st)) = (self.metrics.tracing.as_ref(), trace, stamp) else {
            return;
        };
        let stages = StageNanos::from_instants(tr.enqueued, st.dequeued, st.processed);
        t.on_respond(shard, &tr, &stages);
        if let Some(fx) = &self.metrics.forensics {
            fx.on_client_complete(shard, kind, &tr, &st, &stages);
        }
    }

    /// Account an offered data request and take a bounded-queue slot for
    /// it. `Err` means the request was shed at enqueue (already counted)
    /// and must not be sent. On an engine without overload accounting
    /// this is free and always admits.
    fn admit(&self, shard: usize, kind: RequestKind) -> Result<(), ShedReason> {
        let Some(om) = &self.metrics.overload else {
            return Ok(());
        };
        om.on_offered(shard, kind);
        match om.gate(shard) {
            Some(gate) => match gate.try_admit(kind) {
                Ok(()) => Ok(()),
                Err(reason) => {
                    om.on_shed_queue(shard, kind);
                    Err(reason)
                }
            },
            None => Ok(()),
        }
    }

    /// Slot accounting for the legacy (non-`try`) request paths, which
    /// promise the caller no shedding: the request is counted as offered
    /// and takes a slot unconditionally — it may transiently push the
    /// depth past the cap, but the conservation law still holds since it
    /// will be counted admitted when served. Bounded deployments should
    /// prefer the `try_*` paths.
    fn admit_forced(&self, shard: usize, kind: RequestKind) {
        if let Some(om) = &self.metrics.overload {
            om.on_offered(shard, kind);
            if let Some(gate) = om.gate(shard) {
                gate.force_admit();
            }
        }
    }

    /// Resolve the effective deadline for a `try_*` request: an explicit
    /// per-request deadline wins; otherwise the engine-wide default from
    /// [`OverloadOptions::deadline`] (measured from now) applies.
    fn effective_deadline(&self, deadline: Option<Instant>) -> Option<Instant> {
        deadline.or_else(|| self.default_deadline.map(|d| Instant::now() + d))
    }

    /// Ingest one event and wait for its classification. Latency
    /// (queueing + processing + reply) lands in the observe histogram.
    pub fn observe(&self, user: UserId, item: ItemId) -> ConsumptionKind {
        let start = Instant::now();
        let shard = shard_for(user, self.senders.len());
        let (reply_tx, reply_rx) = bounded(1);
        let trace = {
            // The enqueue frame covers routing + admission + send only;
            // the blocking reply wait below is deliberately unprofiled
            // (it is the *shard's* work, sampled on the shard thread).
            let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
            self.admit_forced(shard, RequestKind::Observe);
            let trace = self.trace_for(shard, user);
            self.senders[shard]
                .send(Request::Observe {
                    user,
                    item,
                    trace,
                    reply: Some(reply_tx),
                    deadline: None,
                })
                .expect("shard thread alive");
            trace
        };
        let reply = reply_rx.recv().expect("shard replies to observe");
        self.close_trace(shard, "observe", trace, reply.stamp);
        self.metrics
            .observe_latency
            .record_duration(start.elapsed());
        reply.outcome.expect("deadline-free observe cannot be shed")
    }

    /// Overload-aware ingestion: take a bounded-queue slot (or return the
    /// typed shed decision without enqueueing anything) and honor the
    /// request deadline — `Err(Deadline)` means the event was admitted
    /// but expired in the queue and was *not* applied. Only latencies of
    /// served requests are recorded, so the observe histogram is an
    /// admitted-request histogram under overload.
    pub fn try_observe(
        &self,
        user: UserId,
        item: ItemId,
        deadline: Option<Instant>,
    ) -> Result<ConsumptionKind, ShedReason> {
        let start = Instant::now();
        let shard = shard_for(user, self.senders.len());
        let (reply_tx, reply_rx) = bounded(1);
        let trace = {
            let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
            self.admit(shard, RequestKind::Observe)?;
            let deadline = self.effective_deadline(deadline);
            let trace = self.trace_for(shard, user);
            self.senders[shard]
                .send(Request::Observe {
                    user,
                    item,
                    trace,
                    reply: Some(reply_tx),
                    deadline,
                })
                .expect("shard thread alive");
            trace
        };
        let reply = reply_rx.recv().expect("shard replies to observe");
        self.close_trace(shard, "observe", trace, reply.stamp);
        if reply.outcome.is_ok() {
            self.metrics
                .observe_latency
                .record_duration(start.elapsed());
        }
        reply.outcome
    }

    /// Fire-and-forget ingestion: enqueue the event and return
    /// immediately. FIFO routing still guarantees it is applied in order
    /// relative to the user's other requests. Traced requests record
    /// `enqueue_wait` and `score`; there is no reply, so no `respond` leg.
    pub fn observe_nowait(&self, user: UserId, item: ItemId) {
        let shard = shard_for(user, self.senders.len());
        let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
        self.admit_forced(shard, RequestKind::Observe);
        let trace = self.trace_for(shard, user);
        self.senders[shard]
            .send(Request::Observe {
                user,
                item,
                trace,
                reply: None,
                deadline: None,
            })
            .expect("shard thread alive");
    }

    /// Overload-aware fire-and-forget ingestion: the typed
    /// [`Admission`] says whether the event entered the shard queue or
    /// was refused at the gate. An admitted event carrying a deadline
    /// may still be shed at dequeue (counted, but with no reply channel
    /// the caller does not learn which events expired).
    pub fn try_observe_nowait(
        &self,
        user: UserId,
        item: ItemId,
        deadline: Option<Instant>,
    ) -> Admission {
        let shard = shard_for(user, self.senders.len());
        let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
        if let Err(reason) = self.admit(shard, RequestKind::Observe) {
            return Admission::Shed(reason);
        }
        let deadline = self.effective_deadline(deadline);
        let trace = self.trace_for(shard, user);
        self.senders[shard]
            .send(Request::Observe {
                user,
                item,
                trace,
                reply: None,
                deadline,
            })
            .expect("shard thread alive");
        Admission::Admitted
    }

    /// Top-N repeat recommendations for `user` right now. Latency lands
    /// in the recommend histogram.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId> {
        let start = Instant::now();
        let shard = shard_for(user, self.senders.len());
        let (reply_tx, reply_rx) = bounded(1);
        let trace = {
            let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
            self.admit_forced(shard, RequestKind::Recommend);
            let trace = self.trace_for(shard, user);
            self.senders[shard]
                .send(Request::Recommend {
                    user,
                    n,
                    trace,
                    reply: reply_tx,
                    deadline: None,
                })
                .expect("shard thread alive");
            trace
        };
        let reply = reply_rx.recv().expect("shard replies to recommend");
        self.close_trace(shard, "recommend", trace, reply.stamp);
        self.metrics
            .recommend_latency
            .record_duration(start.elapsed());
        reply.items.expect("deadline-free recommend cannot be shed")
    }

    /// Overload-aware top-N: `Err(QueueFull)` means the request was
    /// refused at the gate (recommends are refused only once the queue
    /// is at its *full* cap — observes shed first); `Err(Deadline)`
    /// means it was admitted but expired in the queue. Only served
    /// requests land in the recommend latency histogram, so under
    /// overload it reads as the admitted-request p99.
    pub fn try_recommend(
        &self,
        user: UserId,
        n: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<ItemId>, ShedReason> {
        let start = Instant::now();
        let shard = shard_for(user, self.senders.len());
        let (reply_tx, reply_rx) = bounded(1);
        let trace = {
            let _p = ProfGuard::enter_path(&["serve", "enqueue"]);
            self.admit(shard, RequestKind::Recommend)?;
            let deadline = self.effective_deadline(deadline);
            let trace = self.trace_for(shard, user);
            self.senders[shard]
                .send(Request::Recommend {
                    user,
                    n,
                    trace,
                    reply: reply_tx,
                    deadline,
                })
                .expect("shard thread alive");
            trace
        };
        let reply = reply_rx.recv().expect("shard replies to recommend");
        self.close_trace(shard, "recommend", trace, reply.stamp);
        if reply.items.is_ok() {
            self.metrics
                .recommend_latency
                .record_duration(start.elapsed());
        }
        reply.items
    }

    /// Barrier: returns once every request enqueued before this call —
    /// on every shard — has been fully processed.
    pub fn flush(&self) {
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Request::Flush { reply: reply_tx })
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("shard replies to flush");
        }
    }

    /// Hot-swap the model without stopping traffic: harvest every shard's
    /// accumulated online delta, merge all deltas into `new_model`, and
    /// install the merged snapshot everywhere. Returns the snapshot that
    /// was published.
    ///
    /// Both phases travel the ordinary request queues, so no user's event
    /// stream is dropped or reordered by a swap; deltas a shard
    /// accumulates between the two phases are rebased onto the new
    /// weights rather than discarded.
    pub fn swap_model(&self, new_model: TsPprModel) -> Arc<TsPprModel> {
        self.swap_model_tagged(new_model, None)
    }

    /// [`ServeEngine::swap_model`] with provenance: `fingerprint` is the
    /// training-config fingerprint stored alongside the model (see
    /// [`rrc_store::META_FINGERPRINT`]), exposed as the
    /// `serve_model_fingerprint` gauge so scrapes can tie online quality
    /// and drift back to the exact training run.
    pub fn swap_model_tagged(
        &self,
        new_model: TsPprModel,
        fingerprint: Option<u64>,
    ) -> Arc<TsPprModel> {
        // Held across both phases: concurrent swappers serialize here.
        let mut published = self.model.lock().expect("model lock");
        assert_eq!(
            (new_model.num_users(), new_model.num_items()),
            (published.num_users(), published.num_items()),
            "hot-swap requires an identically-shaped model"
        );
        // Version numbers are handed out under the model lock, so install
        // order across shards matches version order.
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        // Phase 1: harvest deltas from every shard (in-band).
        let replies: Vec<Receiver<ModelDiff>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Request::Harvest { reply: reply_tx })
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        let mut merged = new_model;
        for rx in replies {
            let diff = rx.recv().expect("shard replies to harvest");
            diff.apply_to(&mut merged);
        }
        // Phase 2: install the merged snapshot everywhere (in-band).
        let merged = Arc::new(merged);
        let replies: Vec<Receiver<()>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Request::Install {
                    model: merged.clone(),
                    version,
                    reply: reply_tx,
                })
                .expect("shard thread alive");
                reply_rx
            })
            .collect();
        for rx in replies {
            rx.recv().expect("shard replies to install");
        }
        self.metrics.on_install(version, fingerprint);
        *published = merged.clone();
        merged
    }

    /// The model version currently serving (0 until the first swap).
    pub fn model_version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Publish the online learning accumulated so far: harvest every
    /// shard and merge the deltas into the *current* snapshot. Equivalent
    /// to a hot swap that doesn't change the base weights.
    pub fn publish(&self) -> Arc<TsPprModel> {
        let base = self.model();
        self.swap_model((*base).clone())
    }

    /// Clone out every user's window, keyed by user id, sorted. Runs
    /// in-band, so call after [`ServeEngine::flush`] for a quiescent view.
    pub fn export_windows(&self) -> Vec<(u32, WindowState)> {
        let replies: Vec<Receiver<Vec<(u32, WindowState)>>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Request::ExportWindows { reply: reply_tx })
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        let mut out: Vec<(u32, WindowState)> = replies
            .into_iter()
            .flat_map(|rx| rx.recv().expect("shard replies to export"))
            .collect();
        out.sort_by_key(|(u, _)| *u);
        out
    }

    /// Online quality report (per model version, cumulative + windowed,
    /// plus the drift signal), or `None` when the engine was started
    /// without quality monitoring. Runs in-band: each shard exports its
    /// accumulated per-version quality through its FIFO queue, so the
    /// report reflects everything enqueued before this call completes.
    pub fn quality_report(&self) -> Option<QualityReport> {
        let q = self.metrics.quality.as_ref()?;
        let replies: Vec<Receiver<Vec<VersionQuality>>> = self
            .senders
            .iter()
            .map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Request::ExportQuality { reply: reply_tx })
                    .expect("shard thread alive");
                reply_rx
            })
            .collect();
        let exports = replies
            .into_iter()
            .map(|rx| rx.recv().expect("shard replies to quality export"))
            .collect();
        Some(quality::build_report(
            &self.metrics.registry,
            q.spec,
            exports,
            q.drift.values(),
        ))
    }

    /// Point-in-time traffic and latency report.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report(self.started.elapsed())
    }

    /// Advance the SLO burn-rate engine one evaluation tick and return
    /// the worst objective state, or `None` when no objectives are
    /// configured. Call at a steady cadence (the burn windows are
    /// counted in ticks). When a quality objective is configured this
    /// runs an in-band quality export to compute the windowed-over-
    /// cumulative hit@10 ratio.
    pub fn slo_tick(&self) -> Option<SloState> {
        self.metrics.slo.as_ref()?;
        let quality_ratio = if self.metrics.slo_wants_quality() {
            self.quality_report()
                .and_then(|r| r.windowed_over_cumulative_hit10())
        } else {
            None
        };
        self.metrics.slo_tick(quality_ratio)
    }

    /// The per-shard flight-recorder rings (empty when forensics is
    /// off). Shared handles: loadgen clones them into a panic-hook dump
    /// target so a crash can still dump the rings.
    pub fn flight_recorders(&self) -> Vec<Arc<FlightRecorder>> {
        self.metrics
            .forensics
            .as_ref()
            .map(|fx| fx.flight.clone())
            .unwrap_or_default()
    }

    /// Metadata lines stamped into flight-bundle headers. (`reason` is
    /// added separately — [`rrc_obs::dump_flight_now`] stamps its own.)
    fn flight_meta(&self) -> Vec<(String, Json)> {
        vec![
            ("shards".to_string(), Json::from(self.senders.len())),
            ("model_version".to_string(), Json::U64(self.model_version())),
            (
                "uptime_ms".to_string(),
                Json::U64(self.started.elapsed().as_millis().min(u64::MAX as u128) as u64),
            ),
        ]
    }

    /// Dump every shard's flight ring to a CRC-checked JSONL bundle at
    /// `path` (atomic tmp+rename), or `None` when forensics is off.
    pub fn write_flight_bundle(
        &self,
        path: &Path,
        reason: &str,
    ) -> Option<io::Result<FlightBundleStats>> {
        let fx = self.metrics.forensics.as_ref()?;
        let mut meta = self.flight_meta();
        meta.push(("reason".to_string(), Json::Str(reason.to_string())));
        Some(rrc_obs::write_flight_bundle(path, &meta, &fx.flight))
    }

    /// A [`FlightDumpTarget`] for `rrc_obs::install_flight_dump` — the
    /// panic-hook / SIGTERM dump path — or `None` when forensics is off.
    pub fn flight_dump_target(&self, path: PathBuf) -> Option<FlightDumpTarget> {
        let fx = self.metrics.forensics.as_ref()?;
        Some(FlightDumpTarget {
            path,
            meta: self.flight_meta(),
            recorders: fx.flight.clone(),
        })
    }

    /// Prometheus text exposition of the engine's metrics registry:
    /// request-latency histograms (`serve_recommend_latency_ns`,
    /// `serve_observe_latency_ns` — cumulative `_bucket{le=…}` series)
    /// and per-shard traffic counters (`serve_observes_total{shard="0"}`,
    /// …). Ready to serve on a `/metrics` endpoint.
    pub fn metrics_text(&self) -> String {
        self.metrics.touch_uptime(self.started.elapsed());
        self.metrics.registry.prometheus_text()
    }

    /// The engine's private metrics registry (each engine owns one, so
    /// concurrent engines never share series). Use it to attach a
    /// [`rrc_obs::JsonlSink`] or export a JSON snapshot.
    pub fn metrics_registry(&self) -> &rrc_obs::Registry {
        &self.metrics.registry
    }

    /// Stop every shard and join the threads. (Dropping the handle does
    /// the same; this form surfaces join panics.)
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in self.senders.drain(..) {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("shard thread panicked");
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if !self.handles.is_empty() && !std::thread::panicking() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::TrainStats;

    fn engine_fixture_with(
        negatives_per_event: usize,
        shards: usize,
        options: EngineOptions,
    ) -> (ServeEngine, Vec<Vec<ItemId>>) {
        let data = GeneratorConfig::tiny().with_seed(7).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 30);
        let pipeline = FeaturePipeline::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let model = TsPprModel::init(
            &mut rng,
            data.num_users(),
            data.num_items(),
            8,
            pipeline.len(),
            0.1,
            0.05,
        );
        let mut online = OnlineTsPpr::new(
            model,
            pipeline,
            stats,
            OnlineConfig {
                window: 30,
                omega: 5,
                negatives_per_event,
                ..OnlineConfig::default()
            },
        );
        online.warm_from(&split.train);
        let tests: Vec<Vec<ItemId>> = split.test.iter().map(|s| s.events().to_vec()).collect();
        (ServeEngine::start_with(online, shards, options), tests)
    }

    fn engine_fixture(
        negatives_per_event: usize,
        shards: usize,
    ) -> (ServeEngine, Vec<Vec<ItemId>>) {
        engine_fixture_with(negatives_per_event, shards, EngineOptions::default())
    }

    #[test]
    fn serves_recommendations_from_owned_windows() {
        let (engine, _) = engine_fixture(0, 3);
        for u in 0..4u32 {
            let recs = engine.recommend(UserId(u), 5);
            assert!(recs.len() <= 5);
        }
        let report = engine.metrics();
        assert_eq!(report.total_recommends(), 4);
        engine.shutdown();
    }

    #[test]
    fn observes_advance_the_right_window() {
        let (engine, tests) = engine_fixture(0, 4);
        let before = engine.export_windows();
        for (u, events) in tests.iter().enumerate() {
            for &item in events {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        engine.flush();
        let after = engine.export_windows();
        for ((u, w0), (u1, w1)) in before.iter().zip(&after) {
            assert_eq!(u, u1);
            assert_eq!(
                w1.time(),
                w0.time() + tests[*u as usize].len(),
                "user {u} window must advance by its own events"
            );
        }
        let report = engine.metrics();
        let total: usize = tests.iter().map(|t| t.len()).sum();
        assert_eq!(report.total_observes(), total as u64);
        engine.shutdown();
    }

    #[test]
    fn flush_is_a_barrier() {
        let (engine, tests) = engine_fixture(0, 2);
        for (u, events) in tests.iter().enumerate() {
            for &item in events {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        engine.flush();
        // After flush, counters must reflect every queued observe.
        let total: usize = tests.iter().map(|t| t.len()).sum();
        assert_eq!(engine.metrics().total_observes(), total as u64);
        engine.shutdown();
    }

    #[test]
    fn hot_swap_mid_stream_keeps_serving_and_merges_deltas() {
        let (engine, tests) = engine_fixture(3, 2);
        let base = engine.model();
        // First half of the stream.
        for (u, events) in tests.iter().enumerate() {
            for &item in &events[..events.len() / 2] {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        // Swap to a clone of the base mid-stream, without flushing first.
        let swapped = engine.swap_model((*base).clone());
        // Second half.
        for (u, events) in tests.iter().enumerate() {
            for &item in &events[events.len() / 2..] {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        engine.flush();
        let report = engine.metrics();
        let total: usize = tests.iter().map(|t| t.len()).sum();
        assert_eq!(
            report.total_observes(),
            total as u64,
            "no event may be dropped across a swap"
        );
        for s in &report.shards {
            assert_eq!(s.swaps, 1);
        }
        assert!(report.total_online_updates() > 0);
        // The published model folded in pre-swap online deltas.
        assert_ne!(&*swapped, &*base, "swap must merge online learning");
        assert!(swapped.is_finite());
        // And the final publish folds in post-swap learning too.
        let final_model = engine.publish();
        assert!(final_model.is_finite());
        engine.shutdown();
    }

    #[test]
    fn metrics_text_exposes_live_series() {
        let (engine, _) = engine_fixture(0, 2);
        let _ = engine.recommend(UserId(1), 5);
        engine.observe(UserId(1), ItemId(0));
        let text = engine.metrics_text();
        assert!(
            text.contains("# TYPE serve_recommend_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("serve_recommend_latency_ns_count 1"),
            "{text}"
        );
        assert!(text.contains("serve_observe_latency_ns_count 1"), "{text}");
        assert!(text.contains("serve_shards 2"), "{text}");
        // Exactly one shard owns user 1's single observe.
        let owned: u64 = (0..2)
            .map(|s| {
                engine
                    .metrics_registry()
                    .counter_with("serve_observes_total", &[("shard", &s.to_string())])
                    .get()
            })
            .sum();
        assert_eq!(owned, 1);
        engine.shutdown();
    }

    #[test]
    fn unknown_users_get_fresh_windows() {
        let (engine, _) = engine_fixture(0, 2);
        // UserId far outside the trained range still routes, gets an empty
        // window on demand, and its first event classifies as novel.
        let ghost = UserId(100);
        assert_eq!(engine.observe(ghost, ItemId(0)), ConsumptionKind::Novel);
        engine.shutdown();
    }

    #[test]
    fn tracing_records_stage_breakdown_and_gauges() {
        // Default options: tracing on.
        let (engine, tests) = engine_fixture(0, 2);
        for (u, events) in tests.iter().enumerate() {
            for &item in events {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        for u in 0..4u32 {
            let _ = engine.recommend(UserId(u), 5);
        }
        engine.flush();
        let report = engine.metrics();
        assert_eq!(report.stages.len(), 2, "one stage row per shard");
        let score_count: u64 = report.stages.iter().map(|s| s.score.count).sum();
        let total = report.total_observes() + report.total_recommends();
        assert_eq!(score_count, total, "every traced request scores");
        // Only replied-to requests have a respond leg.
        let respond_count: u64 = report.stages.iter().map(|s| s.respond.count).sum();
        assert_eq!(respond_count, report.total_recommends());
        let w = report
            .windowed
            .expect("windowed throughput with tracing on");
        assert_eq!(w.events, total);
        // Short test: the rolling window covers the whole run, so windowed
        // and cumulative rates agree tightly.
        assert!(
            (w.over_cumulative - 1.0).abs() < 0.05,
            "windowed/cumulative ratio {}",
            w.over_cumulative
        );
        // Quiescent after flush: depth and in-flight gauges back to zero.
        let text = engine.metrics_text();
        assert!(text.contains("serve_queue_depth{shard=\"0\"} 0"), "{text}");
        assert!(text.contains("serve_inflight{shard=\"1\"} 0"), "{text}");
        assert!(
            text.contains("serve_stage_duration_ns_count{shard=\"0\",stage=\"score\"}"),
            "{text}"
        );
        engine.shutdown();
    }

    #[test]
    fn tracing_off_disables_stage_series() {
        let data = GeneratorConfig::tiny().with_seed(7).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 30);
        let pipeline = FeaturePipeline::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let model = TsPprModel::init(
            &mut rng,
            data.num_users(),
            data.num_items(),
            8,
            pipeline.len(),
            0.1,
            0.05,
        );
        let mut online = OnlineTsPpr::new(
            model,
            pipeline,
            stats,
            OnlineConfig {
                window: 30,
                omega: 5,
                negatives_per_event: 0,
                ..OnlineConfig::default()
            },
        );
        online.warm_from(&split.train);
        let engine = ServeEngine::start_with(
            online,
            2,
            EngineOptions {
                tracing: false,
                ..EngineOptions::default()
            },
        );
        let _ = engine.recommend(UserId(0), 5);
        let report = engine.metrics();
        assert!(report.stages.is_empty());
        assert!(report.windowed.is_none());
        assert!(!engine.metrics_text().contains("serve_stage_duration_ns"));
        engine.shutdown();
    }

    /// Find `(user, item)` pairs whose next consumption would classify as
    /// an eligible repeat — i.e. real recommendation opportunities.
    fn eligible_pairs(engine: &ServeEngine) -> Vec<(UserId, ItemId)> {
        let omega = engine.config().omega;
        engine
            .export_windows()
            .into_iter()
            .filter_map(|(u, w)| {
                w.eligible_candidates(omega)
                    .first()
                    .map(|&item| (UserId(u), item))
            })
            .collect()
    }

    #[test]
    fn quality_attribution_survives_hot_swap() {
        let data = GeneratorConfig::tiny().with_seed(7).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 30);
        let pipeline = FeaturePipeline::standard();
        let mut rng = StdRng::seed_from_u64(3);
        let model = TsPprModel::init(
            &mut rng,
            data.num_users(),
            data.num_items(),
            8,
            pipeline.len(),
            0.1,
            0.05,
        );
        let mut online = OnlineTsPpr::new(
            model,
            pipeline,
            stats,
            OnlineConfig {
                window: 30,
                omega: 5,
                negatives_per_event: 0,
                ..OnlineConfig::default()
            },
        );
        online.warm_from(&split.train);
        let engine = ServeEngine::start_with(
            online,
            2,
            EngineOptions {
                quality: Some(QualityConfig::default()),
                ..EngineOptions::default()
            },
        );
        let pairs = eligible_pairs(&engine);
        assert!(
            pairs.len() >= 2,
            "fixture must provide at least two users with an eligible repeat"
        );
        let (user_a, item_a) = pairs[0];
        let (user_b, item_b) = pairs[1];

        // Serve user A under version 0, but evaluate only AFTER the swap:
        // the opportunity must still land on version 0.
        let _ = engine.recommend(user_a, 10);
        let base = engine.model();
        engine.swap_model((*base).clone());
        assert_eq!(engine.model_version(), 1);
        assert_eq!(
            engine.observe(user_a, item_a),
            ConsumptionKind::EligibleRepeat
        );

        // Serve and evaluate user B under version 1.
        let _ = engine.recommend(user_b, 10);
        assert_eq!(
            engine.observe(user_b, item_b),
            ConsumptionKind::EligibleRepeat
        );

        engine.flush();
        let report = engine.quality_report().expect("quality enabled");
        let by_version: std::collections::HashMap<u64, u64> = report
            .versions
            .iter()
            .map(|v| (v.quality.version, v.quality.ranking.opportunities))
            .collect();
        assert_eq!(
            by_version.get(&0),
            Some(&1),
            "pre-swap serve evaluates against version 0: {report:?}"
        );
        assert_eq!(
            by_version.get(&1),
            Some(&1),
            "post-swap serve evaluates against version 1: {report:?}"
        );
        assert_eq!(report.overall().ranking.opportunities, 2);
        // Drift gauges were fed by the recommends (top-1 samples).
        assert!(report.drift.window_samples >= 2);
        // The JSON view renders finite numbers.
        let doc = rrc_obs::Json::parse(&report.to_json().render()).unwrap();
        let hit10 = doc.at("overall.hit10").unwrap().as_f64().unwrap();
        assert!(hit10.is_finite());
        engine.shutdown();
    }

    #[test]
    fn quality_disabled_reports_none() {
        let (engine, _) = engine_fixture(0, 2);
        assert!(engine.quality_report().is_none());
        engine.shutdown();
    }

    /// Per-shard budget small enough that the tiny fixture's users are
    /// constantly evicted and reloaded.
    const TIGHT_BUDGET: usize = 4_000;

    fn bounded_options(budget: usize) -> EngineOptions {
        EngineOptions {
            ustate: UstateOptions {
                budget_bytes: Some(budget),
                ..UstateOptions::default()
            },
            ..EngineOptions::default()
        }
    }

    /// Drive a fixed request mix (observes, recommends, one mid-stream
    /// hot swap, one final publish) and digest everything observable:
    /// every recommendation list, every window, and the final published
    /// model bit-for-bit.
    type DriveOutcome = (
        Vec<Vec<u32>>,
        Vec<(u32, usize, Vec<u32>)>,
        Vec<u64>,
        MetricsReport,
    );

    fn drive(engine: ServeEngine, tests: &[Vec<ItemId>]) -> DriveOutcome {
        let mut recs = Vec::new();
        for round in 0..2 {
            for (u, events) in tests.iter().enumerate() {
                let user = UserId(u as u32);
                let half = events.len() / 2;
                let slice = if round == 0 {
                    &events[..half]
                } else {
                    &events[half..]
                };
                for &item in slice {
                    engine.observe(user, item);
                }
                recs.push(engine.recommend(user, 5).into_iter().map(|i| i.0).collect());
            }
            if round == 0 {
                let base = engine.model();
                engine.swap_model((*base).clone());
            }
        }
        engine.flush();
        let windows = engine
            .export_windows()
            .into_iter()
            .map(|(u, w)| (u, w.time(), w.events().map(|i| i.0).collect()))
            .collect();
        let published = engine.publish();
        let model_bits = published
            .u_matrix()
            .as_slice()
            .iter()
            .chain(published.v_matrix().as_slice())
            .chain(published.transforms().iter().flat_map(|a| a.as_slice()))
            .map(|x| x.to_bits())
            .collect();
        let report = engine.metrics();
        engine.shutdown();
        (recs, windows, model_bits, report)
    }

    #[test]
    fn bounded_engine_matches_unbounded_bit_for_bit_frozen() {
        let (unb_engine, tests) = engine_fixture(0, 2);
        let unbounded = drive(unb_engine, &tests);
        let (b_engine, tests2) = engine_fixture_with(0, 2, bounded_options(TIGHT_BUDGET));
        let bounded = drive(b_engine, &tests2);
        assert_eq!(unbounded.0, bounded.0, "recommendations diverged");
        assert_eq!(unbounded.1, bounded.1, "windows diverged");
        assert_eq!(unbounded.2, bounded.2, "published model diverged");
        let u = &bounded.3.ustate;
        assert!(u.evictions > 0, "tight budget must evict: {u:?}");
        assert!(u.misses > 0, "evicted users must reload: {u:?}");
        assert!(
            u.resident_bytes <= 2 * TIGHT_BUDGET as u64,
            "resident bytes {} exceed the engine-wide budget",
            u.resident_bytes
        );
    }

    #[test]
    fn bounded_engine_matches_unbounded_bit_for_bit_learning() {
        // Online SGD materialises factor rows; spills must carry the
        // deltas (and the mid-stream swap must rebase spilled rows) for
        // the published models to stay byte-equal.
        let (unb_engine, tests) = engine_fixture(3, 2);
        let unbounded = drive(unb_engine, &tests);
        let (b_engine, tests2) = engine_fixture_with(3, 2, bounded_options(TIGHT_BUDGET));
        let bounded = drive(b_engine, &tests2);
        assert_eq!(unbounded.0, bounded.0, "recommendations diverged");
        assert_eq!(unbounded.2, bounded.2, "published model diverged");
        assert!(bounded.3.ustate.evictions > 0);
        assert!(bounded.3.total_online_updates() > 0);
    }

    #[test]
    fn bounded_engine_exposes_cache_series() {
        let (engine, tests) = engine_fixture_with(0, 2, bounded_options(TIGHT_BUDGET));
        for (u, events) in tests.iter().enumerate() {
            for &item in events {
                engine.observe_nowait(UserId(u as u32), item);
            }
        }
        engine.flush();
        let report = engine.metrics();
        let u = &report.ustate;
        assert!(u.hits > 0 && u.hits + u.misses > 0);
        assert_eq!(u.budget_bytes, Some(TIGHT_BUDGET as u64));
        assert!(u.resident_users > 0);
        if u.evictions > 0 {
            assert!(u.spill.count > 0, "evictions must time spills: {u:?}");
        }
        let text = engine.metrics_text();
        assert!(
            text.contains("ustate_cache_hits_total{shard=\"0\"}"),
            "{text}"
        );
        assert!(
            text.contains("ustate_resident_bytes{shard=\"1\"}"),
            "{text}"
        );
        // JSON view carries the ustate block.
        let doc = rrc_obs::Json::parse(&report.to_json().render()).unwrap();
        assert!(
            doc.at("ustate.cache.hit")
                .and_then(rrc_obs::Json::as_u64)
                .unwrap()
                > 0
        );
        assert!(doc.at("ustate.cache.hit_rate").unwrap().as_f64().is_some());
        engine.shutdown();
    }

    /// A `Write` that appends into a shared Vec for inspection.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The PR's end-to-end acceptance path: a known-slow request is
    /// recoverable after the fact — its trace id is the exemplar on the
    /// p99 `score` bucket, its full per-stage timeline is in the trace
    /// sink, it tops the slowest-trace reservoir, and the SLO engine
    /// walks ok → warn → page on the sustained latency breach.
    #[test]
    fn injected_slow_request_is_recoverable_end_to_end() {
        let buf = SharedBuf::default();
        let sink = rrc_obs::JsonlSink::to_writer(Box::new(buf.clone()));
        let slow_user = 1u32;
        let options = EngineOptions {
            forensics: ForensicsOptions {
                enabled: true,
                trace_sink: Some(sink.clone()),
                slo: SloOptions {
                    // Far below the injected 20ms stall: every tick
                    // under traffic is a breach.
                    observe_p99_ns: Some(100_000),
                    ..SloOptions::default()
                },
                inject_slow: Some((slow_user, Duration::from_millis(20))),
                ..ForensicsOptions::default()
            },
            ..EngineOptions::default()
        };
        let (engine, _) = engine_fixture_with(0, 2, options);

        // The slow user's request goes first so it draws trace id 0 —
        // inside the 1-in-4 sample, so its stage exemplars are pinned.
        let _ = engine.observe(UserId(slow_user), ItemId(0));
        for u in 0..8u32 {
            if u != slow_user {
                engine.observe(UserId(u), ItemId(0));
            }
        }
        engine.flush();

        // 1. The slow request's trace id is the exemplar on the p99
        //    score bucket of its shard.
        let report = engine.metrics();
        let fx = report.forensics.as_ref().expect("forensics enabled");
        let slow_shard = shard_for(UserId(slow_user), 2);
        let score_exemplar = fx
            .p99_exemplars
            .iter()
            .find(|e| e.shard == slow_shard && e.stage == "score")
            .expect("score p99 exemplar on the slow shard");
        assert_eq!(score_exemplar.trace_id, 0, "{fx:?}");
        assert!(
            score_exemplar.p99_ns >= 15_000_000,
            "p99 must sit in the stalled bucket: {score_exemplar:?}"
        );

        // 2. The reservoir ranks it slowest engine-wide.
        let slowest = fx.slowest.first().expect("reservoir has traces");
        assert_eq!(slowest.id, 0);
        assert_eq!(slowest.user_hash, mix64(slow_user as u64));
        assert!(slowest.score_ns >= 15_000_000);

        // 3. Its full per-stage timeline reached the trace sink.
        sink.flush();
        let lines = buf.0.lock().unwrap().clone();
        let lines = String::from_utf8(lines).expect("sink is utf-8");
        let slow_line = lines
            .lines()
            .map(|l| Json::parse(l).expect("sink lines parse"))
            .find(|doc| {
                doc.get("event").and_then(Json::as_str) == Some("trace")
                    && doc.get("trace_id").and_then(Json::as_u64) == Some(0)
            })
            .expect("slow trace admitted to the sink");
        assert!(slow_line.get("score_ns").and_then(Json::as_u64).unwrap() >= 15_000_000);
        assert!(slow_line.get("enqueue_wait_ns").is_some());
        assert!(slow_line.get("respond_ns").is_some());
        assert_eq!(
            slow_line.get("shard").and_then(Json::as_u64),
            Some(slow_shard as u64)
        );

        // 4. Sustained breach: the burn-rate engine escalates
        //    ok → warn → page, in order, without skipping warn.
        let states: Vec<SloState> = (0..12).map(|_| engine.slo_tick().unwrap()).collect();
        assert_eq!(states[0], SloState::Ok, "one breach tick cannot warn");
        assert_eq!(*states.last().unwrap(), SloState::Page, "{states:?}");
        let first_warn = states.iter().position(|s| *s == SloState::Warn);
        let first_page = states.iter().position(|s| *s == SloState::Page);
        assert!(
            first_warn.unwrap() < first_page.unwrap(),
            "must pass through warn before paging: {states:?}"
        );

        // 5. The flight rings saw the traffic and dump to a valid bundle.
        let dir = std::env::temp_dir().join(format!("rrc-e2e-flight-{}", std::process::id()));
        let path = dir.join("bundle.jsonl");
        let stats = engine
            .write_flight_bundle(&path, "test")
            .expect("forensics on")
            .expect("bundle writes");
        assert!(stats.events > 0);
        assert_eq!(rrc_obs::validate_flight_bundle(&path).unwrap(), stats);
        std::fs::remove_dir_all(&dir).ok();
        engine.shutdown();
    }

    #[test]
    fn forensics_off_reports_no_sections() {
        let (engine, _) = engine_fixture(0, 2);
        let _ = engine.recommend(UserId(0), 5);
        let report = engine.metrics();
        assert!(report.forensics.is_none());
        assert!(report.slo.is_none());
        assert!(engine.slo_tick().is_none());
        assert!(engine.flight_recorders().is_empty());
        assert!(engine
            .write_flight_bundle(Path::new("/dev/null"), "x")
            .is_none());
        engine.shutdown();
    }
}
