//! Bounded admission and priority load-shedding for the serving engine.
//!
//! The shard channels themselves stay unbounded crossbeam FIFOs (control
//! messages — `Flush`, `Harvest`, `Install` — must never be refused or the
//! hot-swap protocol deadlocks). Instead, *data* requests pass through a
//! per-shard [`AdmissionGate`]: a CAS-maintained depth counter with two
//! monotone thresholds,
//!
//! ```text
//!   0 ───────────── observe_cap ───────────── queue_cap
//!        Observe admitted          only Recommend admitted
//! ```
//!
//! `Observe` is admitted only while the depth is below `observe_cap`;
//! `Recommend` is admitted up to the full `queue_cap`. Because
//! `observe_cap <= queue_cap`, any depth that sheds a `Recommend` also
//! sheds an `Observe` — observes always shed first, which is the priority
//! order the engine promises (a lost observe costs one online-learning
//! step; a lost recommend is a user-visible failure).
//!
//! The depth is incremented with a compare-and-swap loop that only
//! succeeds below the threshold, so the queue **never** exceeds its cap,
//! even transiently under concurrent callers (proven by a proptest in
//! `tests/overload.rs`). The shard decrements the depth when it dequeues
//! the request, before processing it.
//!
//! Every offered request is accounted exactly once: it is either admitted
//! and eventually served, shed at the gate (`ShedReason::QueueFull`), or
//! admitted but expired in the queue and shed at dequeue time
//! (`ShedReason::Deadline`). That yields the conservation law
//!
//! ```text
//!   offered == admitted + shed      (per shard, per request kind)
//! ```
//!
//! which the metrics layer exposes and the test suite enforces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The two data-request classes the gate distinguishes.
///
/// Control messages (flush, harvest/install, window export, shutdown)
/// bypass the gate entirely: they are few, they are the engine's own
/// protocol, and refusing them would wedge a hot swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// An implicit-feedback event (online-learning step). Shed first.
    Observe,
    /// A top-N request. Admitted up to the full queue cap.
    Recommend,
}

impl RequestKind {
    /// Stable label value used for `{kind=...}` metric series.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Observe => "observe",
            RequestKind::Recommend => "recommend",
        }
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The shard queue was at this kind's admission threshold when the
    /// request arrived; it was refused at enqueue and never queued.
    QueueFull,
    /// The request was admitted but reached the front of the queue after
    /// its deadline; it was shed at dequeue instead of served late.
    Deadline,
}

impl ShedReason {
    /// Stable label value used for `{reason=...}` metric series.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue",
            ShedReason::Deadline => "deadline",
        }
    }
}

/// Typed enqueue outcome for fire-and-forget requests
/// ([`crate::ServeEngine::try_observe_nowait`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request is in the shard queue and will be processed (or shed
    /// at dequeue if it carries a deadline and expires first).
    Admitted,
    /// The request was refused at enqueue and had no effect.
    Shed(ShedReason),
}

impl Admission {
    /// `true` when the request made it into the queue.
    pub fn is_admitted(self) -> bool {
        matches!(self, Admission::Admitted)
    }
}

/// Overload policy for a [`crate::ServeEngine`].
///
/// The default (`queue_cap: None`, `deadline: None`) preserves the
/// engine's historical behavior exactly: unbounded queues, no shedding,
/// no overload metrics, no `engine.overload` report section.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadOptions {
    /// Bounded per-shard queue capacity for data requests. `None` keeps
    /// the queues unbounded (no gate, no `QueueFull` sheds).
    pub queue_cap: Option<usize>,
    /// Fraction of `queue_cap` open to `Observe` requests (clamped to
    /// `[0, 1]`, at least 1 slot). `Recommend` always gets the full cap,
    /// so observes shed strictly first.
    pub observe_fraction: f64,
    /// Default per-request deadline applied by the `try_*` request paths
    /// when the caller does not pass one. A request that reaches the
    /// front of its shard queue after `enqueue + deadline` is shed, not
    /// served late. `None` means no default deadline.
    pub deadline: Option<Duration>,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        OverloadOptions {
            queue_cap: None,
            observe_fraction: 0.75,
            deadline: None,
        }
    }
}

impl OverloadOptions {
    /// Overload accounting is active (metrics registered, report section
    /// emitted) when any overload policy is configured.
    pub fn enabled(&self) -> bool {
        self.queue_cap.is_some() || self.deadline.is_some()
    }

    /// The observe admission threshold implied by `queue_cap` and
    /// `observe_fraction`: at least 1, at most the full cap.
    pub fn observe_cap(&self) -> Option<usize> {
        self.queue_cap.map(|cap| {
            let frac = self.observe_fraction.clamp(0.0, 1.0);
            (((cap as f64) * frac).floor() as usize).clamp(1, cap.max(1))
        })
    }
}

/// Per-shard bounded admission gate.
///
/// Tracks the number of *data* requests currently sitting in the shard's
/// channel. `try_admit` increments the depth only while it is below the
/// requesting kind's threshold (CAS loop — the cap is never exceeded,
/// even transiently); `release` decrements it at dequeue.
#[derive(Debug)]
pub struct AdmissionGate {
    queue_cap: u64,
    observe_cap: u64,
    depth: AtomicU64,
    peak: AtomicU64,
}

impl AdmissionGate {
    /// A gate with the given full capacity and observe threshold.
    /// `observe_cap` is clamped into `[1, queue_cap]`.
    pub fn new(queue_cap: usize, observe_cap: usize) -> Self {
        let cap = queue_cap.max(1) as u64;
        AdmissionGate {
            queue_cap: cap,
            observe_cap: (observe_cap as u64).clamp(1, cap),
            depth: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// The admission threshold for `kind`.
    pub fn threshold(&self, kind: RequestKind) -> u64 {
        match kind {
            RequestKind::Observe => self.observe_cap,
            RequestKind::Recommend => self.queue_cap,
        }
    }

    /// Full queue capacity.
    pub fn queue_cap(&self) -> u64 {
        self.queue_cap
    }

    /// Observe admission threshold.
    pub fn observe_cap(&self) -> u64 {
        self.observe_cap
    }

    /// Try to take a queue slot for `kind`. On success the caller *must*
    /// enqueue the request (the slot is released by the shard at
    /// dequeue). On failure nothing was changed.
    pub fn try_admit(&self, kind: RequestKind) -> Result<(), ShedReason> {
        let limit = self.threshold(kind);
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return Err(ShedReason::QueueFull);
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(cur + 1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Take a slot unconditionally (may push the depth past the cap).
    /// Used by the legacy non-`try` request paths, which promise the
    /// caller no shedding but must stay in the depth accounting so the
    /// shard-side `release` balances.
    pub fn force_admit(&self) {
        let prev = self.depth.fetch_add(1, Ordering::AcqRel);
        self.peak.fetch_max(prev + 1, Ordering::Relaxed);
    }

    /// Release a slot at dequeue.
    pub fn release(&self) {
        self.depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Current gated depth (data requests sitting in the shard queue).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the gated depth since engine start.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_monotone() {
        let g = AdmissionGate::new(8, 6);
        assert_eq!(g.threshold(RequestKind::Observe), 6);
        assert_eq!(g.threshold(RequestKind::Recommend), 8);
        assert!(g.observe_cap() <= g.queue_cap());
    }

    #[test]
    fn observe_cap_is_clamped() {
        let g = AdmissionGate::new(4, 0);
        assert_eq!(g.observe_cap(), 1);
        let g = AdmissionGate::new(4, 99);
        assert_eq!(g.observe_cap(), 4);
        let opts = OverloadOptions {
            queue_cap: Some(10),
            observe_fraction: 2.0,
            ..OverloadOptions::default()
        };
        assert_eq!(opts.observe_cap(), Some(10));
        let opts = OverloadOptions {
            queue_cap: Some(10),
            observe_fraction: -1.0,
            ..OverloadOptions::default()
        };
        assert_eq!(opts.observe_cap(), Some(1));
    }

    #[test]
    fn admit_release_cycle_tracks_depth_and_peak() {
        let g = AdmissionGate::new(2, 1);
        assert!(g.try_admit(RequestKind::Observe).is_ok());
        // Observe threshold (1) reached; recommend still has headroom.
        assert_eq!(
            g.try_admit(RequestKind::Observe),
            Err(ShedReason::QueueFull)
        );
        assert!(g.try_admit(RequestKind::Recommend).is_ok());
        assert_eq!(
            g.try_admit(RequestKind::Recommend),
            Err(ShedReason::QueueFull)
        );
        assert_eq!(g.depth(), 2);
        g.release();
        g.release();
        assert_eq!(g.depth(), 0);
        assert_eq!(g.peak(), 2);
    }

    #[test]
    fn observe_sheds_before_recommend_at_every_depth() {
        // The monotone-threshold invariant behind priority shedding:
        // at any depth where an Observe is admitted, a Recommend would
        // have been admitted too.
        let g = AdmissionGate::new(7, 5);
        for depth in 0..g.queue_cap() {
            assert_eq!(g.depth(), depth);
            let obs_ok = g.threshold(RequestKind::Observe) > depth;
            let rec_ok = g.threshold(RequestKind::Recommend) > depth;
            assert!(rec_ok || !obs_ok, "observe admitted where recommend shed");
            g.force_admit();
        }
        assert_eq!(
            g.try_admit(RequestKind::Recommend),
            Err(ShedReason::QueueFull)
        );
    }

    #[test]
    fn disabled_options_mean_no_overload() {
        let opts = OverloadOptions::default();
        assert!(!opts.enabled());
        assert_eq!(opts.observe_cap(), None);
        let opts = OverloadOptions {
            deadline: Some(Duration::from_micros(500)),
            ..OverloadOptions::default()
        };
        assert!(opts.enabled());
    }
}
