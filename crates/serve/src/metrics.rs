//! Serving observability, wired through the workspace-wide [`rrc_obs`]
//! registry.
//!
//! Every engine owns a private [`Registry`] so concurrent engines (tests,
//! benches) never share series. The hot path stays wait-free: shards and
//! the client handle record through pre-registered `Arc` handles —
//! request latency into power-of-two [`Histogram`]s
//! (`serve_recommend_latency_ns`, `serve_observe_latency_ns`), traffic
//! into per-shard counters (`serve_observes_total{shard="0"}`, …). Reads
//! snapshot into a [`MetricsReport`] without stopping traffic, and
//! [`ServeEngine::metrics_text`](crate::ServeEngine::metrics_text)
//! exposes the same registry as Prometheus text.

use crate::engine::ForensicsOptions;
use crate::overload::{AdmissionGate, OverloadOptions, RequestKind};
use crate::quality::{DriftAccum, QualityConfig};
use crate::trace::{ShardStamp, StageNanos, TraceCtx};
use rrc_obs::{
    top_slowest, BucketExemplars, Counter, ExemplarTrace, FlightRecorder, Gauge, Histogram,
    HistogramSnapshot, Json, JsonlSink, Registry, SloEngine, SloState, SloVerdict, TraceReservoir,
    WindowSpec, WindowedCounter, WindowedHistogram,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Names of the three traced request stages, in pipeline order.
pub const STAGE_NAMES: [&str; 3] = ["enqueue_wait", "score", "respond"];

/// Rolling-window stage quantiles and queue-depth samples are recorded
/// for one request in `1 << WINDOW_SAMPLE_SHIFT` (selected by request
/// id, so the sample is unbiased w.r.t. shard and client). Cumulative
/// stage histograms, gauges, and the windowed event counter stay exact —
/// sampling only thins the rolling quantile estimators, which still see
/// thousands of samples per window at any realistic traffic level. This
/// is a hot-path cost control: on a saturated single-core host the full
/// per-event record set costs ~10% throughput; sampled, tracing fits in
/// the ≤5% budget tracked by BENCH_serve.json.
const WINDOW_SAMPLE_SHIFT: u32 = 2;

/// True when this request id is in the 1-in-2^shift rolling sample.
#[inline]
pub(crate) fn sampled(id: u64) -> bool {
    id & ((1 << WINDOW_SAMPLE_SHIFT) - 1) == 0
}

/// Pre-registered per-shard counter handles (recording is wait-free).
#[derive(Debug, Clone)]
pub struct ShardCounters {
    pub observes: Arc<Counter>,
    pub recommends: Arc<Counter>,
    pub online_updates: Arc<Counter>,
    pub swaps: Arc<Counter>,
}

impl ShardCounters {
    fn register(registry: &Registry, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        ShardCounters {
            observes: registry.counter_with("serve_observes_total", labels),
            recommends: registry.counter_with("serve_recommends_total", labels),
            online_updates: registry.counter_with("serve_online_updates_total", labels),
            swaps: registry.counter_with("serve_swaps_total", labels),
        }
    }

    pub fn snapshot(&self) -> ShardCountersSnapshot {
        ShardCountersSnapshot {
            observes: self.observes.get(),
            recommends: self.recommends.get(),
            online_updates: self.online_updates.get(),
            swaps: self.swaps.get(),
        }
    }
}

/// Plain-data copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCountersSnapshot {
    pub observes: u64,
    pub recommends: u64,
    pub online_updates: u64,
    pub swaps: u64,
}

/// One shard's per-stage cumulative histograms
/// (`serve_stage_duration_ns{shard=…,stage=…}`).
#[derive(Debug, Clone)]
pub(crate) struct StageHists {
    pub enqueue_wait: Arc<Histogram>,
    pub score: Arc<Histogram>,
    pub respond: Arc<Histogram>,
}

impl StageHists {
    fn register(registry: &Registry, shard: usize) -> Self {
        let shard = shard.to_string();
        let hist = |stage: &str| {
            registry.histogram_with(
                "serve_stage_duration_ns",
                &[("shard", &shard), ("stage", stage)],
            )
        };
        StageHists {
            enqueue_wait: hist("enqueue_wait"),
            score: hist("score"),
            respond: hist("respond"),
        }
    }
}

/// One shard's rolling-window stage histograms
/// (`serve_stage_duration_window_ns{shard=…,stage=…}`). Sharded (rather
/// than one global series per stage) so that the per-event record stays
/// on a shard-private cache line: with a single global handle every
/// shard and client thread contends on the same bucket words, which
/// costs double-digit percent throughput under load.
#[derive(Debug, Clone)]
pub(crate) struct StageWindows {
    pub enqueue_wait: Arc<WindowedHistogram>,
    pub score: Arc<WindowedHistogram>,
    pub respond: Arc<WindowedHistogram>,
}

impl StageWindows {
    fn register(registry: &Registry, shard: usize, window: WindowSpec) -> Self {
        let shard = shard.to_string();
        let hist = |stage: &str| {
            registry.windowed_histogram_with(
                "serve_stage_duration_window_ns",
                &[("shard", &shard), ("stage", stage)],
                window,
            )
        };
        StageWindows {
            enqueue_wait: hist("enqueue_wait"),
            score: hist("score"),
            respond: hist("respond"),
        }
    }
}

/// Request-scoped tracing state: stage histograms (cumulative and
/// rolling-window, both per shard), queue-depth/in-flight gauges, and
/// the windowed event counters behind the windowed-vs-cumulative
/// throughput check. All hooks are wait-free handle operations; when
/// tracing is off the engine skips them entirely, which is what
/// BENCH_serve.json's tracing-overhead comparison measures.
#[derive(Debug)]
pub(crate) struct TracingMetrics {
    pub stages: Vec<StageHists>,
    pub windows: Vec<StageWindows>,
    pub queue_depth: Vec<Arc<Gauge>>,
    pub inflight: Vec<Arc<Gauge>>,
    pub queue_sampled: Vec<Arc<Histogram>>,
    pub events_window: Vec<Arc<WindowedCounter>>,
    next_id: AtomicU64,
}

impl TracingMetrics {
    fn register(registry: &Registry, shards: usize, window: WindowSpec) -> Self {
        let shard_label: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
        TracingMetrics {
            stages: (0..shards)
                .map(|s| StageHists::register(registry, s))
                .collect(),
            windows: (0..shards)
                .map(|s| StageWindows::register(registry, s, window))
                .collect(),
            queue_depth: shard_label
                .iter()
                .map(|s| registry.gauge_with("serve_queue_depth", &[("shard", s)]))
                .collect(),
            inflight: shard_label
                .iter()
                .map(|s| registry.gauge_with("serve_inflight", &[("shard", s)]))
                .collect(),
            queue_sampled: shard_label
                .iter()
                .map(|s| registry.histogram_with("serve_queue_depth_sampled", &[("shard", s)]))
                .collect(),
            events_window: shard_label
                .iter()
                .map(|s| {
                    registry.windowed_counter_with("serve_events_window", &[("shard", s)], window)
                })
                .collect(),
            next_id: AtomicU64::new(0),
        }
    }

    /// Client side, just before the request enters the shard channel:
    /// bump the queue-depth and in-flight gauges and mint the context.
    pub fn on_enqueue(&self, shard: usize, user_hash: u64) -> TraceCtx {
        self.queue_depth[shard].add(1);
        self.inflight[shard].add(1);
        TraceCtx {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            user_hash,
            enqueued: Instant::now(),
        }
    }

    /// Shard side, right after pulling a traced request off the channel:
    /// drop the depth gauge and (for sampled requests) record the
    /// remaining depth. Returns the dequeue stamp and the observed depth
    /// (for the reply's [`ShardStamp`]).
    pub fn on_dequeue(&self, shard: usize, trace: &TraceCtx) -> (Instant, u64) {
        self.queue_depth[shard].add(-1);
        let depth = self.queue_depth[shard].get().max(0) as u64;
        if sampled(trace.id) {
            self.queue_sampled[shard].record(depth);
        }
        (Instant::now(), depth)
    }

    /// Shard side, when processing finishes: record `enqueue_wait` and
    /// `score` (the `respond` leg is only observable by the client).
    /// Returns the `processed` stamp to embed in the reply plus the
    /// stage decomposition so far (respond still zero), which forensic
    /// hooks reuse without a second clock read.
    pub fn on_processed(
        &self,
        shard: usize,
        trace: &TraceCtx,
        dequeued: Instant,
    ) -> (Instant, StageNanos) {
        let processed = Instant::now();
        let stages = StageNanos::from_instants(trace.enqueued, dequeued, processed);
        self.stages[shard].enqueue_wait.record(stages.enqueue_wait);
        self.stages[shard].score.record(stages.score);
        if sampled(trace.id) {
            let w = &self.windows[shard];
            w.enqueue_wait
                .record_at_instant(processed, stages.enqueue_wait);
            w.score.record_at_instant(processed, stages.score);
        }
        self.events_window[shard].add_at_instant(processed, 1);
        (processed, stages)
    }

    /// Shard side, after the reply (if any) is sent: the request is no
    /// longer in flight.
    pub fn on_complete(&self, shard: usize) {
        self.inflight[shard].add(-1);
    }

    /// Client side, after receiving a reply: record the `respond` stage
    /// from the client-computed stage decomposition.
    pub fn on_respond(&self, shard: usize, trace: &TraceCtx, stages: &StageNanos) {
        self.stages[shard].respond.record(stages.respond);
        if sampled(trace.id) {
            self.windows[shard].respond.record(stages.respond);
        }
    }
}

/// One shard's per-stage bucket exemplars: a trace id pinned to every
/// populated stage-histogram bucket, so a p99 bucket links to a concrete
/// replayable trace.
pub(crate) struct StageExemplars {
    pub enqueue_wait: BucketExemplars,
    pub score: BucketExemplars,
    pub respond: BucketExemplars,
}

impl StageExemplars {
    fn new() -> Self {
        StageExemplars {
            enqueue_wait: BucketExemplars::new(),
            score: BucketExemplars::new(),
            respond: BucketExemplars::new(),
        }
    }
}

/// Forensic state: per-shard tail-sampling reservoirs, stage bucket
/// exemplars, flight-recorder rings, and per-shard rolling request
/// latency histograms (`serve_request_latency_window_ns{shard,kind}`)
/// that feed the SLO engine's latency objectives.
///
/// Hot-path cost discipline: exemplars and flight events are recorded
/// only for sampled requests (the 1-in-4 id sample); the reservoir is
/// consulted for every completed reply but takes its mutex only when the
/// trace clears the lock-free [`TraceReservoir::admission_floor`] (i.e.
/// is a tail candidate) or is in the sample.
pub(crate) struct ForensicsMetrics {
    pub reservoirs: Vec<Arc<TraceReservoir>>,
    pub exemplars: Vec<StageExemplars>,
    pub flight: Vec<Arc<FlightRecorder>>,
    pub observe_window: Vec<Arc<WindowedHistogram>>,
    pub recommend_window: Vec<Arc<WindowedHistogram>>,
    pub sink: Option<Arc<JsonlSink>>,
    /// Epoch for the reservoirs' monotonic aging clock.
    origin: Instant,
}

impl std::fmt::Debug for ForensicsMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForensicsMetrics")
            .field("shards", &self.flight.len())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl ForensicsMetrics {
    fn register(
        registry: &Registry,
        shards: usize,
        window: WindowSpec,
        opts: &ForensicsOptions,
    ) -> Self {
        let window_ns = window.window().as_nanos().min(u64::MAX as u128) as u64;
        let shard_label: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
        let latency = |kind: &str| -> Vec<Arc<WindowedHistogram>> {
            shard_label
                .iter()
                .map(|s| {
                    registry.windowed_histogram_with(
                        "serve_request_latency_window_ns",
                        &[("shard", s), ("kind", kind)],
                        window,
                    )
                })
                .collect()
        };
        ForensicsMetrics {
            reservoirs: (0..shards)
                .map(|_| Arc::new(TraceReservoir::new(opts.reservoir_k, window_ns)))
                .collect(),
            exemplars: (0..shards).map(|_| StageExemplars::new()).collect(),
            flight: (0..shards)
                .map(|s| Arc::new(FlightRecorder::new(s, opts.flight_capacity)))
                .collect(),
            observe_window: latency("observe"),
            recommend_window: latency("recommend"),
            sink: opts.trace_sink.clone(),
            origin: Instant::now(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Shard side, for *sampled* traced requests only: pin stage
    /// exemplars for the shard-observable stages and drop a `request`
    /// event into the shard's flight ring.
    pub fn on_processed_shard(
        &self,
        shard: usize,
        trace: &TraceCtx,
        stages: &StageNanos,
        queue_depth: u64,
        kind: &'static str,
        version: u64,
    ) {
        let e = &self.exemplars[shard];
        e.enqueue_wait.record(stages.enqueue_wait, trace.id);
        e.score.record(stages.score, trace.id);
        self.flight[shard].record(
            "request",
            vec![
                ("trace_id", Json::U64(trace.id)),
                ("user_hash", Json::U64(trace.user_hash)),
                ("kind", Json::Str(kind.to_string())),
                ("queue_depth", Json::U64(queue_depth)),
                ("enqueue_wait_ns", Json::U64(stages.enqueue_wait)),
                ("score_ns", Json::U64(stages.score)),
                ("version", Json::U64(version)),
            ],
        );
    }

    /// Client side, when a traced reply closes: finish the exemplar
    /// trace, offer it to the shard's tail reservoir (admission = the
    /// sampling decision → JSONL sink), and feed the rolling request
    /// latency histogram behind the SLO latency objectives.
    pub fn on_client_complete(
        &self,
        shard: usize,
        kind: &'static str,
        trace: &TraceCtx,
        stamp: &ShardStamp,
        stages: &StageNanos,
    ) {
        let total = stages.total();
        let in_sample = sampled(trace.id);
        if in_sample {
            self.exemplars[shard]
                .respond
                .record(stages.respond, trace.id);
            let w = if kind == "recommend" {
                &self.recommend_window[shard]
            } else {
                &self.observe_window[shard]
            };
            w.record(total);
        }
        let reservoir = &self.reservoirs[shard];
        if !in_sample && total < reservoir.admission_floor() {
            return; // fast path: cannot be tail, not in the sample
        }
        let exemplar = ExemplarTrace {
            id: trace.id,
            user_hash: trace.user_hash,
            shard,
            version: stamp.version,
            kind,
            queue_depth: stamp.queue_depth,
            enqueue_wait_ns: stages.enqueue_wait,
            score_ns: stages.score,
            respond_ns: stages.respond,
        };
        let admitted = reservoir.offer(exemplar, self.now_ns());
        if admitted {
            if let Some(sink) = &self.sink {
                sink.event(
                    "trace",
                    &[
                        ("trace_id", Json::U64(trace.id)),
                        ("user_hash", Json::U64(trace.user_hash)),
                        ("shard", Json::U64(shard as u64)),
                        ("version", Json::U64(stamp.version)),
                        ("kind", Json::Str(kind.to_string())),
                        ("queue_depth", Json::U64(stamp.queue_depth)),
                        ("enqueue_wait_ns", Json::U64(stages.enqueue_wait)),
                        ("score_ns", Json::U64(stages.score)),
                        ("respond_ns", Json::U64(stages.respond)),
                        ("total_ns", Json::U64(total)),
                    ],
                );
            }
        }
    }
}

/// Which live measurement feeds each SLO objective, in objective order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SloValueKind {
    /// Max across shards of the windowed observe-latency p99.
    ObserveP99,
    /// Max across shards of the windowed recommend-latency p99.
    RecommendP99,
    /// Windowed hit@10 over since-install hit@10 (needs quality
    /// monitoring; `None` until both sides have opportunities).
    QualityRatio,
    /// Windowed shed / offered fraction across all shards and kinds
    /// (needs overload accounting; `None` while nothing is offered).
    ShedRate,
}

/// The SLO burn-rate engine plus its exposition gauges
/// (`slo_state{objective=…}`: 0 ok / 1 warn / 2 page, and `slo_worst`).
pub(crate) struct SloMetrics {
    engine: Mutex<SloEngine>,
    wants: Vec<SloValueKind>,
    state_gauges: Vec<Arc<Gauge>>,
    worst_gauge: Arc<Gauge>,
}

impl std::fmt::Debug for SloMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMetrics")
            .field("objectives", &self.wants)
            .finish()
    }
}

impl SloMetrics {
    fn register(registry: &Registry, opts: &crate::engine::SloOptions) -> Option<Self> {
        let mut objectives = Vec::new();
        let mut wants = Vec::new();
        if let Some(ns) = opts.observe_p99_ns {
            objectives.push(rrc_obs::Objective::le("observe_p99_ns", ns as f64));
            wants.push(SloValueKind::ObserveP99);
        }
        if let Some(ns) = opts.recommend_p99_ns {
            objectives.push(rrc_obs::Objective::le("recommend_p99_ns", ns as f64));
            wants.push(SloValueKind::RecommendP99);
        }
        if let Some(r) = opts.quality_ratio {
            objectives.push(rrc_obs::Objective::ge("quality_hit10_ratio", r));
            wants.push(SloValueKind::QualityRatio);
        }
        if let Some(r) = opts.shed_rate {
            objectives.push(rrc_obs::Objective::le("shed_rate", r));
            wants.push(SloValueKind::ShedRate);
        }
        if objectives.is_empty() {
            return None;
        }
        let state_gauges = objectives
            .iter()
            .map(|o| registry.gauge_with("slo_state", &[("objective", &o.name)]))
            .collect();
        Some(SloMetrics {
            engine: Mutex::new(SloEngine::new(objectives, opts.burn)),
            wants,
            state_gauges,
            worst_gauge: registry.gauge("slo_worst"),
        })
    }

    /// True when any objective needs an in-band quality report per tick.
    pub fn wants_quality(&self) -> bool {
        self.wants.contains(&SloValueKind::QualityRatio)
    }

    fn tick(&self, values: &[Option<f64>]) -> SloState {
        let mut engine = self.engine.lock().expect("slo engine lock");
        engine.tick(values);
        for (gauge, verdict) in self.state_gauges.iter().zip(engine.verdicts()) {
            gauge.set(verdict.state.as_gauge() as i64);
        }
        let worst = engine.worst();
        self.worst_gauge.set(worst.as_gauge() as i64);
        worst
    }

    fn section(&self) -> SloSection {
        let engine = self.engine.lock().expect("slo engine lock");
        SloSection {
            worst: engine.worst(),
            verdicts: engine.verdicts(),
        }
    }
}

/// Per-shard user-state-tier instrumentation: cumulative *and*
/// rolling-window cache counters (`ustate_cache_hits_total{shard=…}`,
/// `ustate_cache_hits_window{shard=…}`, …), resident-footprint gauges,
/// and spill/load latency histograms. Shards drain their tier's
/// [`TierDelta`](rrc_ustate::TierDelta) into these handles after each
/// request; the drain is a handful of wait-free adds when nothing
/// spilled.
#[derive(Debug)]
pub(crate) struct UstateMetrics {
    pub hits: Vec<Arc<Counter>>,
    pub misses: Vec<Arc<Counter>>,
    pub evictions: Vec<Arc<Counter>>,
    pub hits_window: Vec<Arc<WindowedCounter>>,
    pub misses_window: Vec<Arc<WindowedCounter>>,
    pub evictions_window: Vec<Arc<WindowedCounter>>,
    pub resident_bytes: Vec<Arc<Gauge>>,
    pub resident_users: Vec<Arc<Gauge>>,
    pub spilled_users: Vec<Arc<Gauge>>,
    pub spill_file_bytes: Vec<Arc<Gauge>>,
    pub budget_bytes: Vec<Arc<Gauge>>,
    pub spill_ns: Vec<Arc<Histogram>>,
    pub load_ns: Vec<Arc<Histogram>>,
}

impl UstateMetrics {
    fn register(registry: &Registry, shards: usize, window: WindowSpec) -> Self {
        let shard_label: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
        let counters = |name: &str| -> Vec<Arc<Counter>> {
            shard_label
                .iter()
                .map(|s| registry.counter_with(name, &[("shard", s)]))
                .collect()
        };
        let windowed = |name: &str| -> Vec<Arc<WindowedCounter>> {
            shard_label
                .iter()
                .map(|s| registry.windowed_counter_with(name, &[("shard", s)], window))
                .collect()
        };
        let gauges = |name: &str| -> Vec<Arc<Gauge>> {
            shard_label
                .iter()
                .map(|s| registry.gauge_with(name, &[("shard", s)]))
                .collect()
        };
        let hists = |name: &str| -> Vec<Arc<Histogram>> {
            shard_label
                .iter()
                .map(|s| registry.histogram_with(name, &[("shard", s)]))
                .collect()
        };
        UstateMetrics {
            hits: counters("ustate_cache_hits_total"),
            misses: counters("ustate_cache_misses_total"),
            evictions: counters("ustate_cache_evictions_total"),
            hits_window: windowed("ustate_cache_hits_window"),
            misses_window: windowed("ustate_cache_misses_window"),
            evictions_window: windowed("ustate_cache_evictions_window"),
            resident_bytes: gauges("ustate_resident_bytes"),
            resident_users: gauges("ustate_resident_users"),
            spilled_users: gauges("ustate_spilled_users"),
            spill_file_bytes: gauges("ustate_spill_file_bytes"),
            budget_bytes: gauges("ustate_budget_bytes"),
            spill_ns: hists("ustate_spill_ns"),
            load_ns: hists("ustate_load_ns"),
        }
    }

    /// Drain one shard's tier delta into the cumulative and windowed
    /// series. Cheap when the delta is empty (the common, all-hit case).
    pub fn record(&self, shard: usize, delta: &rrc_ustate::TierDelta) {
        if delta.hits > 0 {
            self.hits[shard].add(delta.hits);
            self.hits_window[shard].add(delta.hits);
        }
        if delta.misses > 0 {
            self.misses[shard].add(delta.misses);
            self.misses_window[shard].add(delta.misses);
        }
        if delta.evictions > 0 {
            self.evictions[shard].add(delta.evictions);
            self.evictions_window[shard].add(delta.evictions);
        }
        for &ns in &delta.spill_ns {
            self.spill_ns[shard].record(ns);
        }
        for &ns in &delta.load_ns {
            self.load_ns[shard].record(ns);
        }
    }

    /// Refresh one shard's footprint gauges from the live tier.
    pub fn set_footprint(
        &self,
        shard: usize,
        resident_bytes: usize,
        resident_users: usize,
        spilled_users: usize,
        spill_file_bytes: usize,
        budget: Option<usize>,
    ) {
        let clamp = |v: usize| v.min(i64::MAX as usize) as i64;
        self.resident_bytes[shard].set(clamp(resident_bytes));
        self.resident_users[shard].set(clamp(resident_users));
        self.spilled_users[shard].set(clamp(spilled_users));
        self.spill_file_bytes[shard].set(clamp(spill_file_bytes));
        self.budget_bytes[shard].set(budget.map_or(0, clamp));
    }
}

/// One request kind's per-shard overload accounting series. Offered and
/// shed have rolling-window twins (the SLO shed-rate objective and
/// `rrc-top` read recent behavior, not lifetime totals); admitted is
/// derivable inside a window only at quiescence, so only its cumulative
/// form exists.
#[derive(Debug)]
pub(crate) struct OverloadKindSeries {
    pub offered: Vec<Arc<Counter>>,
    pub admitted: Vec<Arc<Counter>>,
    pub shed_queue: Vec<Arc<Counter>>,
    pub shed_deadline: Vec<Arc<Counter>>,
    pub deadline_miss: Vec<Arc<Counter>>,
    pub offered_window: Vec<Arc<WindowedCounter>>,
    pub shed_queue_window: Vec<Arc<WindowedCounter>>,
    pub shed_deadline_window: Vec<Arc<WindowedCounter>>,
}

impl OverloadKindSeries {
    fn register(registry: &Registry, shards: usize, window: WindowSpec, kind: &str) -> Self {
        let shard_label: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
        let counters = |name: &str| -> Vec<Arc<Counter>> {
            shard_label
                .iter()
                .map(|s| registry.counter_with(name, &[("shard", s), ("kind", kind)]))
                .collect()
        };
        let shed = |name: &str, reason: &str| -> Vec<Arc<Counter>> {
            shard_label
                .iter()
                .map(|s| {
                    registry.counter_with(name, &[("shard", s), ("kind", kind), ("reason", reason)])
                })
                .collect()
        };
        let shed_window = |reason: &str| -> Vec<Arc<WindowedCounter>> {
            shard_label
                .iter()
                .map(|s| {
                    registry.windowed_counter_with(
                        "serve_shed_window",
                        &[("shard", s), ("kind", kind), ("reason", reason)],
                        window,
                    )
                })
                .collect()
        };
        OverloadKindSeries {
            offered: counters("serve_offered_total"),
            admitted: counters("serve_admitted_total"),
            shed_queue: shed("serve_shed_total", "queue"),
            shed_deadline: shed("serve_shed_total", "deadline"),
            deadline_miss: counters("serve_deadline_miss_total"),
            offered_window: shard_label
                .iter()
                .map(|s| {
                    registry.windowed_counter_with(
                        "serve_offered_window",
                        &[("shard", s), ("kind", kind)],
                        window,
                    )
                })
                .collect(),
            shed_queue_window: shed_window("queue"),
            shed_deadline_window: shed_window("deadline"),
        }
    }

    fn shard_stats(&self, shard: usize) -> OverloadKindStats {
        OverloadKindStats {
            offered: self.offered[shard].get(),
            admitted: self.admitted[shard].get(),
            shed_queue: self.shed_queue[shard].get(),
            shed_deadline: self.shed_deadline[shard].get(),
        }
    }
}

/// Overload accounting shared by the engine handle (offered / enqueue
/// sheds) and the shards (admitted / deadline sheds), plus the per-shard
/// admission gates themselves when the queue is bounded. Present only
/// when [`OverloadOptions::enabled`]; a default engine pays nothing.
#[derive(Debug)]
pub(crate) struct OverloadMetrics {
    gates: Option<Vec<Arc<AdmissionGate>>>,
    observe: OverloadKindSeries,
    recommend: OverloadKindSeries,
    queue_peak: Vec<Arc<Gauge>>,
    queue_cap: Option<u64>,
    observe_cap: Option<u64>,
}

impl OverloadMetrics {
    fn register(
        registry: &Registry,
        shards: usize,
        window: WindowSpec,
        opts: &OverloadOptions,
    ) -> Option<Self> {
        if !opts.enabled() {
            return None;
        }
        let observe_cap = opts.observe_cap();
        let gates = opts.queue_cap.map(|cap| {
            let ocap = observe_cap.unwrap_or(cap);
            (0..shards)
                .map(|_| Arc::new(AdmissionGate::new(cap, ocap)))
                .collect::<Vec<_>>()
        });
        registry.gauge("serve_queue_cap").set(
            opts.queue_cap
                .map_or(0, |c| c.min(i64::MAX as usize) as i64),
        );
        registry
            .gauge("serve_queue_observe_cap")
            .set(observe_cap.map_or(0, |c| c.min(i64::MAX as usize) as i64));
        Some(OverloadMetrics {
            gates,
            observe: OverloadKindSeries::register(registry, shards, window, "observe"),
            recommend: OverloadKindSeries::register(registry, shards, window, "recommend"),
            queue_peak: (0..shards)
                .map(|s| registry.gauge_with("serve_queue_peak", &[("shard", &s.to_string())]))
                .collect(),
            queue_cap: opts.queue_cap.map(|c| c as u64),
            observe_cap: observe_cap.map(|c| c as u64),
        })
    }

    fn series(&self, kind: RequestKind) -> &OverloadKindSeries {
        match kind {
            RequestKind::Observe => &self.observe,
            RequestKind::Recommend => &self.recommend,
        }
    }

    /// The shard's admission gate, or `None` when only deadlines (no
    /// queue bound) are configured.
    pub fn gate(&self, shard: usize) -> Option<&Arc<AdmissionGate>> {
        self.gates.as_ref().map(|g| &g[shard])
    }

    /// Client side, on every data request before the gate decision.
    pub fn on_offered(&self, shard: usize, kind: RequestKind) {
        let s = self.series(kind);
        s.offered[shard].inc();
        s.offered_window[shard].add(1);
    }

    /// Client side, when the gate refuses a request (never enqueued).
    pub fn on_shed_queue(&self, shard: usize, kind: RequestKind) {
        let s = self.series(kind);
        s.shed_queue[shard].inc();
        s.shed_queue_window[shard].add(1);
    }

    /// Shard side, when an admitted request is actually served.
    pub fn on_admitted(&self, shard: usize, kind: RequestKind) {
        self.series(kind).admitted[shard].inc();
    }

    /// Shard side, when an admitted request expires at dequeue.
    pub fn on_shed_deadline(&self, shard: usize, kind: RequestKind) {
        let s = self.series(kind);
        s.shed_deadline[shard].inc();
        s.shed_deadline_window[shard].add(1);
        s.deadline_miss[shard].inc();
    }

    /// Windowed shed fraction (all kinds, all shards): shed / offered
    /// over the rolling window, or `None` while nothing was offered —
    /// the SLO shed-rate objective freezes rather than paging on idle.
    pub fn shed_rate_window(&self) -> Option<f64> {
        let sum = |v: &[Arc<WindowedCounter>]| v.iter().map(|c| c.window_total()).sum::<u64>();
        let offered = sum(&self.observe.offered_window) + sum(&self.recommend.offered_window);
        if offered == 0 {
            return None;
        }
        let shed = sum(&self.observe.shed_queue_window)
            + sum(&self.observe.shed_deadline_window)
            + sum(&self.recommend.shed_queue_window)
            + sum(&self.recommend.shed_deadline_window);
        Some(shed as f64 / offered as f64)
    }

    /// Snapshot the overload section, refreshing the per-shard peak
    /// gauges from the live gates on the way.
    fn section(&self) -> OverloadReport {
        let shards = self.queue_peak.len();
        let mut per_shard = Vec::with_capacity(shards);
        for shard in 0..shards {
            let peak = self
                .gates
                .as_ref()
                .map_or(0, |g| g[shard].peak().min(i64::MAX as u64));
            self.queue_peak[shard].set(peak as i64);
            per_shard.push(OverloadShardStats {
                shard,
                peak_depth: peak,
                observe: self.observe.shard_stats(shard),
                recommend: self.recommend.shard_stats(shard),
            });
        }
        let fold = |pick: fn(&OverloadShardStats) -> OverloadKindStats| -> OverloadKindStats {
            per_shard.iter().fold(OverloadKindStats::default(), |a, s| {
                let k = pick(s);
                OverloadKindStats {
                    offered: a.offered + k.offered,
                    admitted: a.admitted + k.admitted,
                    shed_queue: a.shed_queue + k.shed_queue,
                    shed_deadline: a.shed_deadline + k.shed_deadline,
                }
            })
        };
        let sum_w = |v: &[Arc<WindowedCounter>]| v.iter().map(|c| c.window_total()).sum::<u64>();
        let offered_window =
            sum_w(&self.observe.offered_window) + sum_w(&self.recommend.offered_window);
        let shed_window = sum_w(&self.observe.shed_queue_window)
            + sum_w(&self.observe.shed_deadline_window)
            + sum_w(&self.recommend.shed_queue_window)
            + sum_w(&self.recommend.shed_deadline_window);
        OverloadReport {
            queue_cap: self.queue_cap,
            observe_cap: self.observe_cap,
            peak_depth: per_shard.iter().map(|s| s.peak_depth).max().unwrap_or(0),
            observe: fold(|s| s.observe),
            recommend: fold(|s| s.recommend),
            offered_window,
            shed_window,
            shards: per_shard,
        }
    }
}

/// Online-quality metric state: the shared drift accumulator plus the
/// exposition gauges it refreshes.
#[derive(Debug)]
pub(crate) struct QualityMetrics {
    pub spec: WindowSpec,
    pub drift: Arc<DriftAccum>,
    drift_score: Arc<Gauge>,
    drift_feature: Arc<Gauge>,
}

impl QualityMetrics {
    fn register(registry: &Registry, cfg: QualityConfig) -> Self {
        QualityMetrics {
            spec: cfg.window,
            drift: Arc::new(DriftAccum::new(cfg.window)),
            drift_score: registry.gauge("serve_drift_score_micro"),
            drift_feature: registry.gauge("serve_drift_feature_micro"),
        }
    }

    /// Recompute the drift gauges from the accumulator (called at every
    /// exposition, so scrapes always see a current value).
    pub fn refresh(&self) {
        let v = self.drift.values();
        self.drift_score.set(v.score_micro);
        self.drift_feature.set(v.feature_micro);
    }
}

/// All metric state shared between the engine handle and its shards.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    pub registry: Registry,
    pub recommend_latency: Arc<Histogram>,
    pub observe_latency: Arc<Histogram>,
    pub shards: Vec<ShardCounters>,
    pub tracing: Option<TracingMetrics>,
    pub forensics: Option<ForensicsMetrics>,
    pub slo: Option<SloMetrics>,
    pub quality: Option<QualityMetrics>,
    pub ustate: UstateMetrics,
    pub overload: Option<OverloadMetrics>,
    /// Per-shard tier budget (None = unbounded), echoed in the report.
    ustate_budget: Option<usize>,
    model_version: Arc<Gauge>,
    model_fingerprint: Arc<Gauge>,
    uptime_ms: Arc<Gauge>,
}

impl EngineMetrics {
    pub fn new(
        shards: usize,
        tracing: bool,
        window: WindowSpec,
        quality: Option<QualityConfig>,
        ustate_budget: Option<usize>,
        forensics: &ForensicsOptions,
        overload: &OverloadOptions,
    ) -> Self {
        let registry = Registry::new();
        registry.gauge("serve_shards").set(shards as i64);
        EngineMetrics {
            recommend_latency: registry.histogram("serve_recommend_latency_ns"),
            observe_latency: registry.histogram("serve_observe_latency_ns"),
            shards: (0..shards)
                .map(|id| ShardCounters::register(&registry, id))
                .collect(),
            tracing: tracing.then(|| TracingMetrics::register(&registry, shards, window)),
            // Forensics rides on tracing — without stage stamps there is
            // nothing to put in an exemplar trace.
            forensics: (forensics.enabled && tracing)
                .then(|| ForensicsMetrics::register(&registry, shards, window, forensics)),
            slo: SloMetrics::register(&registry, &forensics.slo),
            quality: quality.map(|cfg| QualityMetrics::register(&registry, cfg)),
            ustate: UstateMetrics::register(&registry, shards, window),
            overload: OverloadMetrics::register(&registry, shards, window, overload),
            ustate_budget,
            model_version: registry.gauge("serve_model_version"),
            model_fingerprint: registry.gauge("serve_model_fingerprint"),
            uptime_ms: registry.gauge("serve_uptime_ms"),
            registry,
        }
    }

    /// Record a model install: stamp the version/fingerprint gauges and
    /// restart the drift baseline — drift is always measured against the
    /// model currently serving.
    pub fn on_install(&self, version: u64, fingerprint: Option<u64>) {
        self.model_version.set(version.min(i64::MAX as u64) as i64);
        if let Some(fp) = fingerprint {
            // Bit-cast: the gauge is a label, not an arithmetic value.
            self.model_fingerprint.set(fp as i64);
        }
        if let Some(q) = &self.quality {
            q.drift.reset_baseline();
        }
    }

    /// True when the SLO engine has an objective fed by quality
    /// monitoring (the caller must then supply `quality_ratio` to
    /// [`EngineMetrics::slo_tick`]).
    pub fn slo_wants_quality(&self) -> bool {
        self.slo.as_ref().is_some_and(|s| s.wants_quality())
    }

    /// Advance the SLO burn-rate engine one evaluation tick against the
    /// live windowed series; returns the worst objective state, or
    /// `None` when no objectives are configured. Latency objectives read
    /// the max-across-shards windowed p99; the quality objective takes
    /// the caller-computed windowed/cumulative hit@10 ratio.
    pub fn slo_tick(&self, quality_ratio: Option<f64>) -> Option<SloState> {
        let slo = self.slo.as_ref()?;
        let windowed_p99 = |windows: &[Arc<WindowedHistogram>]| -> Option<f64> {
            windows
                .iter()
                .filter_map(|w| w.snapshot().quantile(0.99))
                .max()
                .map(|ns| ns as f64)
        };
        let values: Vec<Option<f64>> = slo
            .wants
            .iter()
            .map(|kind| match kind {
                SloValueKind::ObserveP99 => self
                    .forensics
                    .as_ref()
                    .and_then(|fx| windowed_p99(&fx.observe_window)),
                SloValueKind::RecommendP99 => self
                    .forensics
                    .as_ref()
                    .and_then(|fx| windowed_p99(&fx.recommend_window)),
                SloValueKind::QualityRatio => quality_ratio,
                SloValueKind::ShedRate => self.overload.as_ref().and_then(|o| o.shed_rate_window()),
            })
            .collect();
        Some(slo.tick(&values))
    }

    /// Refresh the uptime gauge (called at every exposition).
    pub fn touch_uptime(&self, uptime: Duration) {
        self.uptime_ms
            .set(uptime.as_millis().min(i64::MAX as u128) as i64);
        if let Some(q) = &self.quality {
            q.refresh();
        }
    }

    pub fn report(&self, uptime: Duration) -> MetricsReport {
        self.touch_uptime(uptime);
        let shards: Vec<ShardCountersSnapshot> = self.shards.iter().map(|s| s.snapshot()).collect();
        let stages = self
            .tracing
            .as_ref()
            .map(|t| {
                t.stages
                    .iter()
                    .enumerate()
                    .map(|(shard, h)| StageSummary {
                        shard,
                        enqueue_wait: LatencySummary::from(h.enqueue_wait.snapshot()),
                        score: LatencySummary::from(h.score.snapshot()),
                        respond: LatencySummary::from(h.respond.snapshot()),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let windowed = self.tracing.as_ref().map(|t| {
            let events: u64 = t.events_window.iter().map(|c| c.window_total()).sum();
            // The ring's origin is metric registration, a moment before the
            // engine's own start stamp (shard spawn happens in between);
            // clamp so the ratio compares rates over the same span.
            let covered = t
                .events_window
                .iter()
                .map(|c| c.covered())
                .max()
                .unwrap_or_default()
                .min(uptime);
            let rate_per_sec = events as f64 / covered.as_secs_f64().max(1e-9);
            let cum: u64 = shards.iter().map(|s| s.observes + s.recommends).sum();
            let cum_rate = cum as f64 / uptime.as_secs_f64().max(1e-9);
            WindowedThroughput {
                events,
                rate_per_sec,
                covered,
                over_cumulative: if cum_rate > 0.0 {
                    rate_per_sec / cum_rate
                } else {
                    0.0
                },
            }
        });
        let sum_counters = |v: &[Arc<Counter>]| v.iter().map(|c| c.get()).sum::<u64>();
        let sum_gauges = |v: &[Arc<Gauge>]| v.iter().map(|g| g.get().max(0) as u64).sum::<u64>();
        let merge_hists = |v: &[Arc<Histogram>]| {
            let mut total = LatencySummary::from(v[0].snapshot());
            // Per-shard histograms share bucket boundaries; report the
            // worst shard's tails and the summed count.
            for h in &v[1..] {
                let s = LatencySummary::from(h.snapshot());
                total.count += s.count;
                total.p50 = total.p50.max(s.p50);
                total.p95 = total.p95.max(s.p95);
                total.p99 = total.p99.max(s.p99);
                total.mean = total.mean.max(s.mean);
                total.max = total.max.max(s.max);
            }
            total
        };
        let u = &self.ustate;
        let hits = sum_counters(&u.hits);
        let misses = sum_counters(&u.misses);
        let ustate = UstateReport {
            hits,
            misses,
            evictions: sum_counters(&u.evictions),
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            resident_bytes: sum_gauges(&u.resident_bytes),
            resident_users: sum_gauges(&u.resident_users),
            spilled_users: sum_gauges(&u.spilled_users),
            spill_file_bytes: sum_gauges(&u.spill_file_bytes),
            budget_bytes: self.ustate_budget.map(|b| b as u64),
            spill: merge_hists(&u.spill_ns),
            load: merge_hists(&u.load_ns),
        };
        let forensics = self.forensics.as_ref().map(|fx| {
            let mut p99_exemplars = Vec::new();
            if let Some(t) = &self.tracing {
                for (shard, hists) in t.stages.iter().enumerate() {
                    let ex = &fx.exemplars[shard];
                    let per_stage: [(&'static str, &Arc<Histogram>, &BucketExemplars); 3] = [
                        ("enqueue_wait", &hists.enqueue_wait, &ex.enqueue_wait),
                        ("score", &hists.score, &ex.score),
                        ("respond", &hists.respond, &ex.respond),
                    ];
                    for (stage, hist, exemplars) in per_stage {
                        let Some(p99) = hist.snapshot().quantile(0.99) else {
                            continue;
                        };
                        if let Some(trace_id) = exemplars.exemplar_for_value(p99) {
                            p99_exemplars.push(P99Exemplar {
                                shard,
                                stage,
                                p99_ns: p99,
                                trace_id,
                            });
                        }
                    }
                }
            }
            ForensicsReport {
                slowest: top_slowest(fx.reservoirs.iter().map(|r| r.as_ref()), 10),
                p99_exemplars,
                flight_events: fx.flight.iter().map(|r| r.recorded()).sum(),
            }
        });
        MetricsReport {
            uptime,
            recommend_latency: LatencySummary::from(self.recommend_latency.snapshot()),
            observe_latency: LatencySummary::from(self.observe_latency.snapshot()),
            shards,
            stages,
            windowed,
            ustate,
            forensics,
            overload: self.overload.as_ref().map(|o| o.section()),
            slo: self.slo.as_ref().map(|s| s.section()),
        }
    }
}

/// A stage-histogram p99 pinned to a concrete trace: the exemplar that
/// turns "shard 2's score p99 regressed" into a replayable request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P99Exemplar {
    pub shard: usize,
    /// One of [`STAGE_NAMES`].
    pub stage: &'static str,
    /// The stage's cumulative p99 at report time, in nanoseconds.
    pub p99_ns: u64,
    /// Trace id pinned to (or nearest below) the p99 bucket.
    pub trace_id: u64,
}

impl P99Exemplar {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", Json::from(self.shard)),
            ("stage", Json::Str(self.stage.to_string())),
            ("p99_ns", Json::U64(self.p99_ns)),
            ("trace_id", Json::U64(self.trace_id)),
        ])
    }
}

/// Forensic digest inside a [`MetricsReport`]: the engine-wide slowest
/// exemplar traces, the p99 bucket exemplars per shard × stage, and the
/// lifetime flight-recorder event count.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsReport {
    /// Slowest completed traces across all shard reservoirs, slowest
    /// first (at most 10).
    pub slowest: Vec<ExemplarTrace>,
    pub p99_exemplars: Vec<P99Exemplar>,
    /// Events ever recorded into flight rings (not just the survivors).
    pub flight_events: u64,
}

impl ForensicsReport {
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "slowest",
                Json::Arr(self.slowest.iter().map(ExemplarTrace::to_json).collect()),
            ),
            (
                "p99_exemplars",
                Json::Arr(
                    self.p99_exemplars
                        .iter()
                        .map(P99Exemplar::to_json)
                        .collect(),
                ),
            ),
            ("flight_events", Json::U64(self.flight_events)),
        ])
    }
}

/// One request kind's overload accounting (per shard, or summed across
/// shards). The conservation law every quiescent engine satisfies:
/// `offered == admitted + shed_queue + shed_deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadKindStats {
    /// Data requests presented to the engine (before any gate decision).
    pub offered: u64,
    /// Requests actually served to completion.
    pub admitted: u64,
    /// Requests refused at enqueue (bounded queue at threshold).
    pub shed_queue: u64,
    /// Requests admitted but expired in the queue (shed at dequeue).
    pub shed_deadline: u64,
}

impl OverloadKindStats {
    /// Total sheds, both reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue + self.shed_deadline
    }

    /// `offered == admitted + shed` — true at quiescence (after a
    /// flush, with no clients mid-request).
    pub fn conserved(&self) -> bool {
        self.offered == self.admitted + self.shed()
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("offered", Json::U64(self.offered)),
            ("admitted", Json::U64(self.admitted)),
            ("shed", Json::U64(self.shed())),
            ("shed_queue", Json::U64(self.shed_queue)),
            ("shed_deadline", Json::U64(self.shed_deadline)),
        ])
    }
}

/// One shard's overload accounting, split by request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadShardStats {
    pub shard: usize,
    /// High-water mark of the shard's gated queue depth (0 without a
    /// queue bound).
    pub peak_depth: u64,
    pub observe: OverloadKindStats,
    pub recommend: OverloadKindStats,
}

impl OverloadShardStats {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", Json::from(self.shard)),
            ("peak_depth", Json::U64(self.peak_depth)),
            ("observe", self.observe.to_json()),
            ("recommend", self.recommend.to_json()),
        ])
    }
}

/// Overload digest inside a [`MetricsReport`]: queue bounds, engine-wide
/// per-kind conservation counters, the rolling-window shed rate, and the
/// per-shard breakdown. Present only when the engine was started with
/// overload accounting ([`crate::OverloadOptions::enabled`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Per-shard bounded queue capacity (`None` = deadline-only mode).
    pub queue_cap: Option<u64>,
    /// Observe admission threshold (`None` = deadline-only mode).
    pub observe_cap: Option<u64>,
    /// Max queue-depth high-water mark across shards.
    pub peak_depth: u64,
    /// Engine-wide observe accounting (sum over shards).
    pub observe: OverloadKindStats,
    /// Engine-wide recommend accounting (sum over shards).
    pub recommend: OverloadKindStats,
    /// Requests offered inside the rolling window (all kinds).
    pub offered_window: u64,
    /// Requests shed inside the rolling window (all kinds, all reasons).
    pub shed_window: u64,
    pub shards: Vec<OverloadShardStats>,
}

impl OverloadReport {
    /// Engine-wide totals across both kinds.
    pub fn total(&self) -> OverloadKindStats {
        OverloadKindStats {
            offered: self.observe.offered + self.recommend.offered,
            admitted: self.observe.admitted + self.recommend.admitted,
            shed_queue: self.observe.shed_queue + self.recommend.shed_queue,
            shed_deadline: self.observe.shed_deadline + self.recommend.shed_deadline,
        }
    }

    /// Windowed shed / offered fraction (0 while idle).
    pub fn shed_rate_window(&self) -> f64 {
        if self.offered_window == 0 {
            0.0
        } else {
            self.shed_window as f64 / self.offered_window as f64
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queue_cap", Json::from(self.queue_cap)),
            ("observe_cap", Json::from(self.observe_cap)),
            ("peak_depth", Json::U64(self.peak_depth)),
            ("observe", self.observe.to_json()),
            ("recommend", self.recommend.to_json()),
            ("total", self.total().to_json()),
            (
                "window",
                Json::obj([
                    ("offered", Json::U64(self.offered_window)),
                    ("shed", Json::U64(self.shed_window)),
                    ("shed_rate", Json::F64(self.shed_rate_window())),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(OverloadShardStats::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// SLO verdicts inside a [`MetricsReport`]: worst state plus the full
/// per-objective burn-rate detail, machine-readable for `obs-check`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSection {
    pub worst: SloState,
    pub verdicts: Vec<SloVerdict>,
}

impl SloSection {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("worst", Json::Str(self.worst.as_str().to_string())),
            (
                "objectives",
                Json::Arr(self.verdicts.iter().map(SloVerdict::to_json).collect()),
            ),
        ])
    }
}

/// Engine-wide view of the user-state tier: cumulative cache traffic,
/// the aggregate resident footprint, and spill/load latency digests.
/// `budget_bytes` is the *per-shard* budget (None when unbounded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UstateReport {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// hits / (hits + misses); 0 before any traffic.
    pub hit_rate: f64,
    pub resident_bytes: u64,
    pub resident_users: u64,
    pub spilled_users: u64,
    pub spill_file_bytes: u64,
    pub budget_bytes: Option<u64>,
    pub spill: LatencySummary,
    pub load: LatencySummary,
}

impl UstateReport {
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "cache",
                Json::obj([
                    ("hit", Json::U64(self.hits)),
                    ("miss", Json::U64(self.misses)),
                    ("evict", Json::U64(self.evictions)),
                    ("hit_rate", Json::F64(self.hit_rate)),
                ]),
            ),
            ("resident_bytes", Json::U64(self.resident_bytes)),
            ("resident_users", Json::U64(self.resident_users)),
            ("spilled_users", Json::U64(self.spilled_users)),
            ("spill_file_bytes", Json::U64(self.spill_file_bytes)),
            ("budget_bytes_per_shard", Json::from(self.budget_bytes)),
            ("spill", self.spill.to_json()),
            ("load", self.load.to_json()),
        ])
    }
}

/// Point-in-time digest of one latency histogram: count and
/// p50/p95/p99/mean/max, all answered from a single
/// [`HistogramSnapshot`] capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: Option<Duration>,
    pub p95: Option<Duration>,
    pub p99: Option<Duration>,
    pub mean: Option<Duration>,
    pub max: Option<Duration>,
}

impl From<HistogramSnapshot> for LatencySummary {
    fn from(snap: HistogramSnapshot) -> Self {
        LatencySummary {
            count: snap.count(),
            p50: snap.quantile_duration(0.50),
            p95: snap.quantile_duration(0.95),
            p99: snap.quantile_duration(0.99),
            mean: snap.mean().map(|ns| Duration::from_nanos(ns as u64)),
            max: snap.max().map(Duration::from_nanos),
        }
    }
}

impl LatencySummary {
    /// JSON shape used inside [`RunReport`](rrc_obs::RunReport)s:
    /// nanosecond-valued quantiles plus the count.
    pub fn to_json(&self) -> Json {
        fn ns(d: Option<Duration>) -> Json {
            Json::from(d.map(|d| d.as_nanos().min(u64::MAX as u128) as u64))
        }
        Json::obj([
            ("count", Json::U64(self.count)),
            ("p50_ns", ns(self.p50)),
            ("p95_ns", ns(self.p95)),
            ("p99_ns", ns(self.p99)),
            ("mean_ns", ns(self.mean)),
            ("max_ns", ns(self.max)),
        ])
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn d(x: Option<Duration>) -> String {
            match x {
                Some(v) => format!("{v:.1?}"),
                None => "-".to_string(),
            }
        }
        write!(
            f,
            "n={:<9} p50={:<9} p95={:<9} p99={:<9} mean={:<9} max={}",
            self.count,
            d(self.p50),
            d(self.p95),
            d(self.p99),
            d(self.mean),
            d(self.max)
        )
    }
}

/// One shard's traced stage latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    pub shard: usize,
    /// Time queued in the shard channel.
    pub enqueue_wait: LatencySummary,
    /// Shard processing (feature extraction, scoring, online SGD).
    pub score: LatencySummary,
    /// Reply channel transit plus client wakeup.
    pub respond: LatencySummary,
}

impl StageSummary {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard", Json::from(self.shard)),
            ("enqueue_wait", self.enqueue_wait.to_json()),
            ("score", self.score.to_json()),
            ("respond", self.respond.to_json()),
        ])
    }
}

/// Rolling-window event throughput next to its cumulative counterpart.
/// `over_cumulative` near 1.0 means the recent rate matches the lifetime
/// mean (the CI sanity band); it diverges when traffic ramps or stalls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedThroughput {
    /// Traced events processed inside the rolling window.
    pub events: u64,
    /// Windowed events per second (over the covered span).
    pub rate_per_sec: f64,
    /// How much wall-clock the window actually covers.
    pub covered: Duration,
    /// Windowed rate / cumulative lifetime rate (0 when idle).
    pub over_cumulative: f64,
}

impl WindowedThroughput {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::U64(self.events)),
            ("rate_per_sec", Json::F64(self.rate_per_sec)),
            (
                "covered_ms",
                Json::U64(self.covered.as_millis().min(u64::MAX as u128) as u64),
            ),
            ("over_cumulative", Json::F64(self.over_cumulative)),
        ])
    }
}

/// A point-in-time view of engine traffic and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Time since the engine started.
    pub uptime: Duration,
    /// Client-observed recommend latency (queueing + scoring + reply).
    pub recommend_latency: LatencySummary,
    /// Client-observed latency of *synchronous* observes only;
    /// fire-and-forget observes are counted per shard but not timed.
    pub observe_latency: LatencySummary,
    /// Per-shard traffic counters, indexed by shard id.
    pub shards: Vec<ShardCountersSnapshot>,
    /// Per-shard traced stage breakdown (empty when tracing is off).
    pub stages: Vec<StageSummary>,
    /// Rolling-window throughput (None when tracing is off).
    pub windowed: Option<WindowedThroughput>,
    /// User-state tier traffic and footprint.
    pub ustate: UstateReport,
    /// Exemplar traces and flight-recorder digest (None when forensics
    /// is off).
    pub forensics: Option<ForensicsReport>,
    /// Overload accounting (None when overload is not configured).
    pub overload: Option<OverloadReport>,
    /// SLO verdicts (None when no objectives are configured).
    pub slo: Option<SloSection>,
}

impl MetricsReport {
    /// Events ingested across all shards.
    pub fn total_observes(&self) -> u64 {
        self.shards.iter().map(|s| s.observes).sum()
    }

    /// Recommendations served across all shards.
    pub fn total_recommends(&self) -> u64 {
        self.shards.iter().map(|s| s.recommends).sum()
    }

    /// Online SGD updates taken across all shards.
    pub fn total_online_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.online_updates).sum()
    }

    /// Mean observes per second over the engine's uptime.
    pub fn observes_per_sec(&self) -> f64 {
        self.total_observes() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }

    /// The report as JSON: per-request-type latency summaries and the
    /// per-shard counter table (the `loadgen --json` payload core).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "uptime_ms",
                Json::U64(self.uptime.as_millis().min(u64::MAX as u128) as u64),
            ),
            (
                "requests",
                Json::obj([
                    ("recommend", self.recommend_latency.to_json()),
                    ("observe", self.observe_latency.to_json()),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .enumerate()
                        .map(|(id, s)| {
                            Json::obj([
                                ("shard", Json::from(id)),
                                ("observes", Json::U64(s.observes)),
                                ("recommends", Json::U64(s.recommends)),
                                ("online_updates", Json::U64(s.online_updates)),
                                ("swaps", Json::U64(s.swaps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                Json::obj([
                    ("observes", Json::U64(self.total_observes())),
                    ("recommends", Json::U64(self.total_recommends())),
                    ("online_updates", Json::U64(self.total_online_updates())),
                    ("observes_per_sec", Json::F64(self.observes_per_sec())),
                ]),
            ),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageSummary::to_json).collect()),
            ),
            (
                "windowed",
                self.windowed
                    .as_ref()
                    .map_or(Json::Null, WindowedThroughput::to_json),
            ),
            ("ustate", self.ustate.to_json()),
            (
                "forensics",
                self.forensics
                    .as_ref()
                    .map_or(Json::Null, ForensicsReport::to_json),
            ),
            (
                "overload",
                self.overload
                    .as_ref()
                    .map_or(Json::Null, OverloadReport::to_json),
            ),
            (
                "slo",
                self.slo.as_ref().map_or(Json::Null, SloSection::to_json),
            ),
        ])
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uptime {:.2?}", self.uptime)?;
        writeln!(f, "recommend  {}", self.recommend_latency)?;
        writeln!(f, "observe    {}", self.observe_latency)?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "shard {i:<2} observes={:<9} recommends={:<9} online_updates={:<9} swaps={}",
                s.observes, s.recommends, s.online_updates, s.swaps
            )?;
        }
        for st in &self.stages {
            writeln!(f, "shard {:<2} enqueue_wait {}", st.shard, st.enqueue_wait)?;
            writeln!(f, "shard {:<2} score        {}", st.shard, st.score)?;
            writeln!(f, "shard {:<2} respond      {}", st.shard, st.respond)?;
        }
        if let Some(w) = &self.windowed {
            writeln!(
                f,
                "windowed events={} rate={:.0}/s covered={:.1?} over_cumulative={:.3}",
                w.events, w.rate_per_sec, w.covered, w.over_cumulative
            )?;
        }
        if let Some(fx) = &self.forensics {
            for t in fx.slowest.iter().take(3) {
                writeln!(
                    f,
                    "slow trace id={} shard={} kind={} total={}ns wait={}ns score={}ns respond={}ns depth={}",
                    t.id,
                    t.shard,
                    t.kind,
                    t.total_ns(),
                    t.enqueue_wait_ns,
                    t.score_ns,
                    t.respond_ns,
                    t.queue_depth
                )?;
            }
            for e in &fx.p99_exemplars {
                writeln!(
                    f,
                    "p99 exemplar shard={} stage={} p99={}ns trace={}",
                    e.shard, e.stage, e.p99_ns, e.trace_id
                )?;
            }
        }
        if let Some(slo) = &self.slo {
            for v in &slo.verdicts {
                writeln!(
                    f,
                    "slo {} {} {:.0} state={} burn short={:.2} long={:.2}",
                    v.name,
                    v.cmp.as_str(),
                    v.bound,
                    v.state.as_str(),
                    v.short_burn,
                    v.long_burn
                )?;
            }
        }
        if let Some(o) = &self.overload {
            let cap = |c: Option<u64>| c.map_or("-".to_string(), |v| v.to_string());
            writeln!(
                f,
                "overload cap={} observe_cap={} peak_depth={} window_shed_rate={:.3}",
                cap(o.queue_cap),
                cap(o.observe_cap),
                o.peak_depth,
                o.shed_rate_window()
            )?;
            for (kind, k) in [("observe", &o.observe), ("recommend", &o.recommend)] {
                writeln!(
                    f,
                    "overload {kind:<9} offered={} admitted={} shed_queue={} shed_deadline={}",
                    k.offered, k.admitted, k.shed_queue, k.shed_deadline
                )?;
            }
        }
        let u = &self.ustate;
        if u.hits + u.misses > 0 {
            writeln!(
                f,
                "ustate hit={} miss={} evict={} rate={:.3} resident={}B/{} users spilled={}",
                u.hits,
                u.misses,
                u.evictions,
                u.hit_rate,
                u.resident_bytes,
                u.resident_users,
                u.spilled_users
            )?;
        }
        write!(
            f,
            "total observes={} ({:.0}/s) recommends={} online_updates={}",
            self.total_observes(),
            self.observes_per_sec(),
            self.total_recommends(),
            self.total_online_updates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(shards: usize) -> EngineMetrics {
        EngineMetrics::new(
            shards,
            false,
            WindowSpec::default(),
            None,
            None,
            &ForensicsOptions::default(),
            &OverloadOptions::default(),
        )
    }

    #[test]
    fn report_totals_sum_shards() {
        let m = plain(3);
        m.shards[0].observes.add(5);
        m.shards[2].observes.add(7);
        m.shards[1].recommends.add(2);
        let r = m.report(Duration::from_secs(2));
        assert_eq!(r.total_observes(), 12);
        assert_eq!(r.total_recommends(), 2);
        assert!((r.observes_per_sec() - 6.0).abs() < 1e-9);
        // Display renders without panicking.
        let _ = r.to_string();
    }

    #[test]
    fn latency_summary_tracks_histogram_snapshot() {
        let m = plain(1);
        for micros in [100u64, 200, 400, 800] {
            m.recommend_latency
                .record_duration(Duration::from_micros(micros));
        }
        let r = m.report(Duration::from_secs(1));
        let s = r.recommend_latency;
        assert_eq!(s.count, 4);
        assert!(s.p50.unwrap() >= Duration::from_micros(64));
        assert_eq!(s.max, Some(Duration::from_micros(800)));
        let mean = s.mean.unwrap();
        assert!(
            mean >= Duration::from_micros(300) && mean <= Duration::from_micros(450),
            "mean={mean:?}"
        );
        // Empty observe histogram reports no quantiles.
        assert_eq!(r.observe_latency.p99, None);
    }

    #[test]
    fn engine_registry_exposes_prometheus_series() {
        let m = plain(2);
        m.shards[1].observes.add(9);
        m.observe_latency.record_duration(Duration::from_micros(50));
        m.touch_uptime(Duration::from_millis(1500));
        let text = m.registry.prometheus_text();
        assert!(
            text.contains("serve_observes_total{shard=\"1\"} 9"),
            "{text}"
        );
        assert!(text.contains("# TYPE serve_observe_latency_ns histogram"));
        assert!(text.contains("serve_observe_latency_ns_count 1"));
        assert!(text.contains("serve_shards 2"));
        assert!(text.contains("serve_uptime_ms 1500"));
    }

    #[test]
    fn ustate_report_aggregates_shards() {
        let m = EngineMetrics::new(
            2,
            false,
            WindowSpec::default(),
            None,
            Some(4096),
            &ForensicsOptions::default(),
            &OverloadOptions::default(),
        );
        m.ustate.record(
            0,
            &rrc_ustate::TierDelta {
                hits: 3,
                misses: 1,
                evictions: 2,
                evicted_users: vec![7, 9],
                spill_ns: vec![1_000, 2_000],
                load_ns: vec![500],
            },
        );
        m.ustate.record(
            1,
            &rrc_ustate::TierDelta {
                hits: 5,
                misses: 1,
                evictions: 0,
                evicted_users: vec![],
                spill_ns: vec![],
                load_ns: vec![],
            },
        );
        m.ustate.set_footprint(0, 1_000, 4, 2, 600, Some(4096));
        m.ustate.set_footprint(1, 900, 3, 1, 400, Some(4096));
        let r = m.report(Duration::from_secs(1)).ustate;
        assert_eq!((r.hits, r.misses, r.evictions), (8, 2, 2));
        assert!((r.hit_rate - 0.8).abs() < 1e-9);
        assert_eq!(r.resident_bytes, 1_900);
        assert_eq!(r.resident_users, 7);
        assert_eq!(r.spilled_users, 3);
        assert_eq!(r.spill_file_bytes, 1_000);
        assert_eq!(r.budget_bytes, Some(4096));
        assert_eq!(r.spill.count, 2);
        assert_eq!(r.load.count, 1);
        let doc = Json::parse(&r.to_json().render()).unwrap();
        assert_eq!(doc.at("cache.hit").and_then(Json::as_u64), Some(8));
        assert_eq!(
            doc.at("budget_bytes_per_shard").and_then(Json::as_u64),
            Some(4096)
        );
    }

    #[test]
    fn overload_section_absent_by_default_present_when_enabled() {
        let m = plain(1);
        assert!(m.overload.is_none());
        let r = m.report(Duration::from_secs(1));
        assert!(r.overload.is_none());
        let doc = Json::parse(&r.to_json().render()).unwrap();
        assert!(doc.get("overload").is_some_and(Json::is_null));

        let bounded = EngineMetrics::new(
            2,
            false,
            WindowSpec::default(),
            None,
            None,
            &ForensicsOptions::default(),
            &OverloadOptions {
                queue_cap: Some(8),
                observe_fraction: 0.75,
                deadline: None,
            },
        );
        let om = bounded.overload.as_ref().unwrap();
        // Simulate: 3 observes offered on shard 0 (2 served, 1 queue
        // shed), 2 recommends on shard 1 (1 served, 1 deadline shed).
        for _ in 0..3 {
            om.on_offered(0, RequestKind::Observe);
        }
        om.on_admitted(0, RequestKind::Observe);
        om.on_admitted(0, RequestKind::Observe);
        om.on_shed_queue(0, RequestKind::Observe);
        om.on_offered(1, RequestKind::Recommend);
        om.on_offered(1, RequestKind::Recommend);
        om.on_admitted(1, RequestKind::Recommend);
        om.on_shed_deadline(1, RequestKind::Recommend);
        let r = bounded.report(Duration::from_secs(1));
        let o = r.overload.as_ref().unwrap();
        assert_eq!(o.queue_cap, Some(8));
        assert_eq!(o.observe_cap, Some(6));
        assert!(o.observe.conserved(), "{:?}", o.observe);
        assert!(o.recommend.conserved(), "{:?}", o.recommend);
        assert_eq!(o.total().offered, 5);
        assert_eq!(o.total().shed(), 2);
        assert_eq!(o.observe.shed_queue, 1);
        assert_eq!(o.recommend.shed_deadline, 1);
        // Window saw 5 offered, 2 shed.
        assert!((o.shed_rate_window() - 0.4).abs() < 1e-9);
        assert_eq!(om.shed_rate_window(), Some(0.4));
        let doc = Json::parse(&r.to_json().render()).unwrap();
        assert_eq!(
            doc.at("overload.total.offered").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            doc.at("overload.observe.shed_queue").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.at("overload.shards.1.recommend.shed_deadline")
                .and_then(Json::as_u64),
            Some(1)
        );
        // Prometheus exposition carries the labelled shed series.
        let text = bounded.registry.prometheus_text();
        assert!(
            text.contains("serve_shed_total{kind=\"observe\",reason=\"queue\",shard=\"0\"} 1")
                || text
                    .contains("serve_shed_total{shard=\"0\",kind=\"observe\",reason=\"queue\"} 1"),
            "{text}"
        );
        let _ = r.to_string();
    }

    #[test]
    fn report_json_parses_with_expected_keys() {
        let m = plain(2);
        m.shards[0].observes.add(3);
        m.observe_latency.record_duration(Duration::from_micros(10));
        let doc = Json::parse(&m.report(Duration::from_secs(1)).to_json().render()).unwrap();
        assert_eq!(
            doc.at("requests.observe.count").and_then(Json::as_u64),
            Some(1)
        );
        assert!(doc
            .at("requests.observe.p50_ns")
            .unwrap()
            .as_u64()
            .is_some());
        assert_eq!(doc.at("shards.0.observes").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.at("totals.observes").and_then(Json::as_u64), Some(3));
    }
}
