//! Built-in serving observability: lock-free latency histograms and
//! per-shard counters.
//!
//! Everything here is updated on the hot path, so the primitives are
//! wait-free: a histogram is 64 power-of-two nanosecond buckets of
//! relaxed `AtomicU64`s (recording = one `fetch_add`), and counters are
//! plain relaxed atomics. Reads produce a consistent-enough
//! [`MetricsReport`] snapshot without stopping traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds, except bucket 63 which absorbs the tail.
const BUCKETS: usize = 64;

/// A fixed-bucket, lock-free latency histogram.
///
/// Power-of-two nanosecond buckets trade resolution (quantiles are exact
/// only to within a factor of two; reported values use the geometric mean
/// of the winning bucket) for a wait-free `record` with no allocation —
/// the right trade for per-request instrumentation.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Wait-free; callable from any thread.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        let idx = (63 - nanos.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The latency at quantile `q ∈ [0, 1]`, or `None` when empty.
    ///
    /// Returns the geometric midpoint of the bucket containing the
    /// quantile, so the answer is within ×√2 of the true value.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric mean of [2^i, 2^(i+1)) = 2^i * sqrt(2).
                let nanos = (1u128 << i) as f64 * std::f64::consts::SQRT_2;
                return Some(Duration::from_nanos(nanos.min(u64::MAX as f64) as u64));
            }
        }
        unreachable!("rank is bounded by the total")
    }

    /// Snapshot `(count, p50, p95, p99)` in one pass.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: Option<Duration>,
    pub p95: Option<Duration>,
    pub p99: Option<Duration>,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn d(x: Option<Duration>) -> String {
            match x {
                Some(v) => format!("{v:.1?}"),
                None => "-".to_string(),
            }
        }
        write!(
            f,
            "n={:<9} p50={:<9} p95={:<9} p99={}",
            self.count,
            d(self.p50),
            d(self.p95),
            d(self.p99)
        )
    }
}

/// Wait-free per-shard traffic counters.
#[derive(Debug, Default)]
pub struct ShardCounters {
    pub observes: AtomicU64,
    pub recommends: AtomicU64,
    pub online_updates: AtomicU64,
    pub swaps: AtomicU64,
}

impl ShardCounters {
    pub fn snapshot(&self) -> ShardCountersSnapshot {
        ShardCountersSnapshot {
            observes: self.observes.load(Ordering::Relaxed),
            recommends: self.recommends.load(Ordering::Relaxed),
            online_updates: self.online_updates.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ShardCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCountersSnapshot {
    pub observes: u64,
    pub recommends: u64,
    pub online_updates: u64,
    pub swaps: u64,
}

/// All metric state shared between the engine handle and its shards.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    pub recommend_latency: LatencyHistogram,
    pub observe_latency: LatencyHistogram,
    pub shards: Vec<ShardCounters>,
}

impl EngineMetrics {
    pub fn new(shards: usize) -> Self {
        EngineMetrics {
            recommend_latency: LatencyHistogram::new(),
            observe_latency: LatencyHistogram::new(),
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
        }
    }

    pub fn report(&self, uptime: Duration) -> MetricsReport {
        MetricsReport {
            uptime,
            recommend_latency: self.recommend_latency.summary(),
            observe_latency: self.observe_latency.summary(),
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
        }
    }
}

/// A point-in-time view of engine traffic and latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Time since the engine started.
    pub uptime: Duration,
    /// Client-observed recommend latency (queueing + scoring + reply).
    pub recommend_latency: LatencySummary,
    /// Client-observed latency of *synchronous* observes only;
    /// fire-and-forget observes are counted per shard but not timed.
    pub observe_latency: LatencySummary,
    /// Per-shard traffic counters, indexed by shard id.
    pub shards: Vec<ShardCountersSnapshot>,
}

impl MetricsReport {
    /// Events ingested across all shards.
    pub fn total_observes(&self) -> u64 {
        self.shards.iter().map(|s| s.observes).sum()
    }

    /// Recommendations served across all shards.
    pub fn total_recommends(&self) -> u64 {
        self.shards.iter().map(|s| s.recommends).sum()
    }

    /// Online SGD updates taken across all shards.
    pub fn total_online_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.online_updates).sum()
    }

    /// Mean observes per second over the engine's uptime.
    pub fn observes_per_sec(&self) -> f64 {
        self.total_observes() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uptime {:.2?}", self.uptime)?;
        writeln!(f, "recommend  {}", self.recommend_latency)?;
        writeln!(f, "observe    {}", self.observe_latency)?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "shard {i:<2} observes={:<9} recommends={:<9} online_updates={:<9} swaps={}",
                s.observes, s.recommends, s.online_updates, s.swaps
            )?;
        }
        write!(
            f,
            "total observes={} ({:.0}/s) recommends={} online_updates={}",
            self.total_observes(),
            self.observes_per_sec(),
            self.total_recommends(),
            self.total_online_updates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_bracket_true_values_within_a_bucket() {
        let h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        // True median is 500µs; a power-of-two bucket answer must land
        // within [256µs, 1024µs] and the geometric-mid rule within ×√2.
        assert!(p50 >= Duration::from_micros(256), "p50={p50:?}");
        assert!(p50 <= Duration::from_micros(1024), "p50={p50:?}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= p50);
    }

    #[test]
    fn extreme_samples_are_clamped_not_lost() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(40_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(Duration::from_nanos(i + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn report_totals_sum_shards() {
        let m = EngineMetrics::new(3);
        m.shards[0].observes.fetch_add(5, Ordering::Relaxed);
        m.shards[2].observes.fetch_add(7, Ordering::Relaxed);
        m.shards[1].recommends.fetch_add(2, Ordering::Relaxed);
        let r = m.report(Duration::from_secs(2));
        assert_eq!(r.total_observes(), 12);
        assert_eq!(r.total_recommends(), 2);
        assert!((r.observes_per_sec() - 6.0).abs() < 1e-9);
        // Display renders without panicking.
        let _ = r.to_string();
    }
}
