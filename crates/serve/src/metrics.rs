//! Serving observability, wired through the workspace-wide [`rrc_obs`]
//! registry.
//!
//! Every engine owns a private [`Registry`] so concurrent engines (tests,
//! benches) never share series. The hot path stays wait-free: shards and
//! the client handle record through pre-registered `Arc` handles —
//! request latency into power-of-two [`Histogram`]s
//! (`serve_recommend_latency_ns`, `serve_observe_latency_ns`), traffic
//! into per-shard counters (`serve_observes_total{shard="0"}`, …). Reads
//! snapshot into a [`MetricsReport`] without stopping traffic, and
//! [`ServeEngine::metrics_text`](crate::ServeEngine::metrics_text)
//! exposes the same registry as Prometheus text.

use rrc_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Json, Registry};
use std::sync::Arc;
use std::time::Duration;

/// Pre-registered per-shard counter handles (recording is wait-free).
#[derive(Debug, Clone)]
pub struct ShardCounters {
    pub observes: Arc<Counter>,
    pub recommends: Arc<Counter>,
    pub online_updates: Arc<Counter>,
    pub swaps: Arc<Counter>,
}

impl ShardCounters {
    fn register(registry: &Registry, shard: usize) -> Self {
        let shard = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &shard)];
        ShardCounters {
            observes: registry.counter_with("serve_observes_total", labels),
            recommends: registry.counter_with("serve_recommends_total", labels),
            online_updates: registry.counter_with("serve_online_updates_total", labels),
            swaps: registry.counter_with("serve_swaps_total", labels),
        }
    }

    pub fn snapshot(&self) -> ShardCountersSnapshot {
        ShardCountersSnapshot {
            observes: self.observes.get(),
            recommends: self.recommends.get(),
            online_updates: self.online_updates.get(),
            swaps: self.swaps.get(),
        }
    }
}

/// Plain-data copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCountersSnapshot {
    pub observes: u64,
    pub recommends: u64,
    pub online_updates: u64,
    pub swaps: u64,
}

/// All metric state shared between the engine handle and its shards.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    pub registry: Registry,
    pub recommend_latency: Arc<Histogram>,
    pub observe_latency: Arc<Histogram>,
    pub shards: Vec<ShardCounters>,
    uptime_ms: Arc<Gauge>,
}

impl EngineMetrics {
    pub fn new(shards: usize) -> Self {
        let registry = Registry::new();
        registry.gauge("serve_shards").set(shards as i64);
        EngineMetrics {
            recommend_latency: registry.histogram("serve_recommend_latency_ns"),
            observe_latency: registry.histogram("serve_observe_latency_ns"),
            shards: (0..shards)
                .map(|id| ShardCounters::register(&registry, id))
                .collect(),
            uptime_ms: registry.gauge("serve_uptime_ms"),
            registry,
        }
    }

    /// Refresh the uptime gauge (called at every exposition).
    pub fn touch_uptime(&self, uptime: Duration) {
        self.uptime_ms
            .set(uptime.as_millis().min(i64::MAX as u128) as i64);
    }

    pub fn report(&self, uptime: Duration) -> MetricsReport {
        self.touch_uptime(uptime);
        MetricsReport {
            uptime,
            recommend_latency: LatencySummary::from(self.recommend_latency.snapshot()),
            observe_latency: LatencySummary::from(self.observe_latency.snapshot()),
            shards: self.shards.iter().map(|s| s.snapshot()).collect(),
        }
    }
}

/// Point-in-time digest of one latency histogram: count and
/// p50/p95/p99/mean/max, all answered from a single
/// [`HistogramSnapshot`] capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: u64,
    pub p50: Option<Duration>,
    pub p95: Option<Duration>,
    pub p99: Option<Duration>,
    pub mean: Option<Duration>,
    pub max: Option<Duration>,
}

impl From<HistogramSnapshot> for LatencySummary {
    fn from(snap: HistogramSnapshot) -> Self {
        LatencySummary {
            count: snap.count(),
            p50: snap.quantile_duration(0.50),
            p95: snap.quantile_duration(0.95),
            p99: snap.quantile_duration(0.99),
            mean: snap.mean().map(|ns| Duration::from_nanos(ns as u64)),
            max: snap.max().map(Duration::from_nanos),
        }
    }
}

impl LatencySummary {
    /// JSON shape used inside [`RunReport`](rrc_obs::RunReport)s:
    /// nanosecond-valued quantiles plus the count.
    pub fn to_json(&self) -> Json {
        fn ns(d: Option<Duration>) -> Json {
            Json::from(d.map(|d| d.as_nanos().min(u64::MAX as u128) as u64))
        }
        Json::obj([
            ("count", Json::U64(self.count)),
            ("p50_ns", ns(self.p50)),
            ("p95_ns", ns(self.p95)),
            ("p99_ns", ns(self.p99)),
            ("mean_ns", ns(self.mean)),
            ("max_ns", ns(self.max)),
        ])
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn d(x: Option<Duration>) -> String {
            match x {
                Some(v) => format!("{v:.1?}"),
                None => "-".to_string(),
            }
        }
        write!(
            f,
            "n={:<9} p50={:<9} p95={:<9} p99={:<9} mean={:<9} max={}",
            self.count,
            d(self.p50),
            d(self.p95),
            d(self.p99),
            d(self.mean),
            d(self.max)
        )
    }
}

/// A point-in-time view of engine traffic and latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Time since the engine started.
    pub uptime: Duration,
    /// Client-observed recommend latency (queueing + scoring + reply).
    pub recommend_latency: LatencySummary,
    /// Client-observed latency of *synchronous* observes only;
    /// fire-and-forget observes are counted per shard but not timed.
    pub observe_latency: LatencySummary,
    /// Per-shard traffic counters, indexed by shard id.
    pub shards: Vec<ShardCountersSnapshot>,
}

impl MetricsReport {
    /// Events ingested across all shards.
    pub fn total_observes(&self) -> u64 {
        self.shards.iter().map(|s| s.observes).sum()
    }

    /// Recommendations served across all shards.
    pub fn total_recommends(&self) -> u64 {
        self.shards.iter().map(|s| s.recommends).sum()
    }

    /// Online SGD updates taken across all shards.
    pub fn total_online_updates(&self) -> u64 {
        self.shards.iter().map(|s| s.online_updates).sum()
    }

    /// Mean observes per second over the engine's uptime.
    pub fn observes_per_sec(&self) -> f64 {
        self.total_observes() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }

    /// The report as JSON: per-request-type latency summaries and the
    /// per-shard counter table (the `loadgen --json` payload core).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "uptime_ms",
                Json::U64(self.uptime.as_millis().min(u64::MAX as u128) as u64),
            ),
            (
                "requests",
                Json::obj([
                    ("recommend", self.recommend_latency.to_json()),
                    ("observe", self.observe_latency.to_json()),
                ]),
            ),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .enumerate()
                        .map(|(id, s)| {
                            Json::obj([
                                ("shard", Json::from(id)),
                                ("observes", Json::U64(s.observes)),
                                ("recommends", Json::U64(s.recommends)),
                                ("online_updates", Json::U64(s.online_updates)),
                                ("swaps", Json::U64(s.swaps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "totals",
                Json::obj([
                    ("observes", Json::U64(self.total_observes())),
                    ("recommends", Json::U64(self.total_recommends())),
                    ("online_updates", Json::U64(self.total_online_updates())),
                    ("observes_per_sec", Json::F64(self.observes_per_sec())),
                ]),
            ),
        ])
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uptime {:.2?}", self.uptime)?;
        writeln!(f, "recommend  {}", self.recommend_latency)?;
        writeln!(f, "observe    {}", self.observe_latency)?;
        for (i, s) in self.shards.iter().enumerate() {
            writeln!(
                f,
                "shard {i:<2} observes={:<9} recommends={:<9} online_updates={:<9} swaps={}",
                s.observes, s.recommends, s.online_updates, s.swaps
            )?;
        }
        write!(
            f,
            "total observes={} ({:.0}/s) recommends={} online_updates={}",
            self.total_observes(),
            self.observes_per_sec(),
            self.total_recommends(),
            self.total_online_updates()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_sum_shards() {
        let m = EngineMetrics::new(3);
        m.shards[0].observes.add(5);
        m.shards[2].observes.add(7);
        m.shards[1].recommends.add(2);
        let r = m.report(Duration::from_secs(2));
        assert_eq!(r.total_observes(), 12);
        assert_eq!(r.total_recommends(), 2);
        assert!((r.observes_per_sec() - 6.0).abs() < 1e-9);
        // Display renders without panicking.
        let _ = r.to_string();
    }

    #[test]
    fn latency_summary_tracks_histogram_snapshot() {
        let m = EngineMetrics::new(1);
        for micros in [100u64, 200, 400, 800] {
            m.recommend_latency
                .record_duration(Duration::from_micros(micros));
        }
        let r = m.report(Duration::from_secs(1));
        let s = r.recommend_latency;
        assert_eq!(s.count, 4);
        assert!(s.p50.unwrap() >= Duration::from_micros(64));
        assert_eq!(s.max, Some(Duration::from_micros(800)));
        let mean = s.mean.unwrap();
        assert!(
            mean >= Duration::from_micros(300) && mean <= Duration::from_micros(450),
            "mean={mean:?}"
        );
        // Empty observe histogram reports no quantiles.
        assert_eq!(r.observe_latency.p99, None);
    }

    #[test]
    fn engine_registry_exposes_prometheus_series() {
        let m = EngineMetrics::new(2);
        m.shards[1].observes.add(9);
        m.observe_latency.record_duration(Duration::from_micros(50));
        m.touch_uptime(Duration::from_millis(1500));
        let text = m.registry.prometheus_text();
        assert!(
            text.contains("serve_observes_total{shard=\"1\"} 9"),
            "{text}"
        );
        assert!(text.contains("# TYPE serve_observe_latency_ns histogram"));
        assert!(text.contains("serve_observe_latency_ns_count 1"));
        assert!(text.contains("serve_shards 2"));
        assert!(text.contains("serve_uptime_ms 1500"));
    }

    #[test]
    fn report_json_parses_with_expected_keys() {
        let m = EngineMetrics::new(2);
        m.shards[0].observes.add(3);
        m.observe_latency.record_duration(Duration::from_micros(10));
        let doc = Json::parse(&m.report(Duration::from_secs(1)).to_json().render()).unwrap();
        assert_eq!(
            doc.at("requests.observe.count").and_then(Json::as_u64),
            Some(1)
        );
        assert!(doc
            .at("requests.observe.p50_ns")
            .unwrap()
            .as_u64()
            .is_some());
        assert_eq!(doc.at("shards.0.observes").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.at("totals.observes").and_then(Json::as_u64), Some(3));
    }
}
