//! User → shard routing.
//!
//! Routing must be a *stable pure function* of the user id: every request
//! for a user — observe, recommend, or state export — must land on the
//! same shard for the lifetime of an engine, or windows would fragment.
//! It should also mix well, because user ids are dense small integers and
//! `id % shards` would stripe adjacent users onto adjacent shards,
//! correlating hot users.

use rrc_sequence::UserId;

/// The shard that owns `user` in an engine with `shards` shards.
///
/// SplitMix64-finalises the id before reducing so that consecutive ids
/// scatter. Pure: depends on nothing but its arguments.
#[inline]
pub fn shard_for(user: UserId, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard required");
    (mix64(user.0 as u64) % shards as u64) as usize
}

/// SplitMix64 finaliser — a fixed, well-tested 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        for shards in 1..9 {
            for u in 0..500u32 {
                let s = shard_for(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(UserId(u), shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for u in [0u32, 1, 17, u32::MAX] {
            assert_eq!(shard_for(UserId(u), 1), 0);
        }
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for u in 0..10_000u32 {
            counts[shard_for(UserId(u), shards)] += 1;
        }
        for &c in &counts {
            // Perfect balance would be 2500 per shard; allow ±10%.
            assert!((2250..=2750).contains(&c), "imbalanced: {counts:?}");
        }
    }
}
