//! User → shard routing.
//!
//! Routing must be a *stable pure function* of the user id: every request
//! for a user — observe, recommend, or state export — must land on the
//! same shard for the lifetime of an engine, or windows would fragment.
//! It should also mix well, because user ids are dense small integers and
//! `id % shards` would stripe adjacent users onto adjacent shards,
//! correlating hot users.

use rrc_sequence::UserId;

/// The shard that owns `user` in an engine with `shards` shards.
///
/// Delegates to [`rrc_core::parallel::shard_for`], the workspace's one
/// canonical routing function — the sharded-deterministic offline trainer
/// partitions users with the same hash, so a shard's trained rows and its
/// online traffic agree on ownership.
#[inline]
pub fn shard_for(user: UserId, shards: usize) -> usize {
    rrc_core::parallel::shard_for(user, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        for shards in 1..9 {
            for u in 0..500u32 {
                let s = shard_for(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(UserId(u), shards), "routing must be pure");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for u in [0u32, 1, 17, u32::MAX] {
            assert_eq!(shard_for(UserId(u), 1), 0);
        }
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for u in 0..10_000u32 {
            counts[shard_for(UserId(u), shards)] += 1;
        }
        for &c in &counts {
            // Perfect balance would be 2500 per shard; allow ±10%.
            assert!((2250..=2750).contains(&c), "imbalanced: {counts:?}");
        }
    }
}
