//! Property tests for the trace stage decomposition: for *arbitrary*
//! stamp quadruples — including out-of-order ones from cross-thread
//! `Instant` skew — every stage is non-negative (by type: `u64`) and the
//! stages sum exactly to the forward-clamped end-to-end span. No traced
//! request can ever report more (or less) stage time than it spent.

use proptest::prelude::*;
use rrc_serve::StageNanos;

/// The clamped end-to-end span: each stamp pulled forward to at least
/// its predecessor, independently of the decomposition under test.
fn clamped_total(enqueued: u64, dequeued: u64, processed: u64, received: u64) -> u64 {
    let dequeued = dequeued.max(enqueued);
    let processed = processed.max(dequeued);
    let received = received.max(processed);
    received - enqueued
}

proptest! {
    #[test]
    fn stages_partition_the_clamped_span(
        enqueued in any::<u64>(),
        dequeued in any::<u64>(),
        processed in any::<u64>(),
        received in any::<u64>(),
    ) {
        let s = StageNanos::from_stamps(enqueued, dequeued, processed, received);
        prop_assert_eq!(
            s.enqueue_wait
                .checked_add(s.score)
                .and_then(|x| x.checked_add(s.respond)),
            Some(clamped_total(enqueued, dequeued, processed, received)),
            "stages must sum to the clamped total without overflow"
        );
        prop_assert_eq!(s.total(), clamped_total(enqueued, dequeued, processed, received));
    }

    #[test]
    fn monotone_stamps_reproduce_exact_gaps(
        enqueued in 0u64..1 << 40,
        wait in 0u64..1 << 20,
        score in 0u64..1 << 20,
        respond in 0u64..1 << 20,
    ) {
        let s = StageNanos::from_stamps(
            enqueued,
            enqueued + wait,
            enqueued + wait + score,
            enqueued + wait + score + respond,
        );
        prop_assert_eq!(s.enqueue_wait, wait);
        prop_assert_eq!(s.score, score);
        prop_assert_eq!(s.respond, respond);
    }

    #[test]
    fn permuting_later_stamps_never_inflates_the_total(
        enqueued in 0u64..1 << 40,
        a in 0u64..1 << 20,
        b in 0u64..1 << 20,
        c in 0u64..1 << 20,
    ) {
        // The clamped total from any ordering of the three offsets is
        // bounded by the span to the latest stamp.
        let latest = enqueued + a.max(b).max(c);
        let s = StageNanos::from_stamps(enqueued, enqueued + a, enqueued + b, enqueued + c);
        prop_assert!(s.total() <= latest - enqueued);
    }
}
