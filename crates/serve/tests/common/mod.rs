//! Shared helpers for the serve integration tests.
//!
//! `cargo` compiles every top-level `tests/*.rs` file as its own crate;
//! subdirectories are not test roots, so this module is shared by an
//! explicit `mod common;` from each test file that wants it.

use std::time::{Duration, Instant};

/// Poll `cond` with exponential backoff until it holds or `timeout`
/// elapses; returns whether it held. Bound every cross-thread wait on a
/// *condition*, never a fixed sleep: slow CI machines wait longer
/// instead of flaking, fast ones barely wait at all.
pub fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_micros(50);
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            // One last look: the condition may have turned true while we
            // were sleeping right up against the deadline.
            return cond();
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(5));
    }
}
