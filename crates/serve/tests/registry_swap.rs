//! The deployment loop end to end: a trainer publishes into an
//! `rrc-store` registry, the serving engine's watcher notices and
//! hot-swaps, and damaged or wrongly-shaped publishes never reach the
//! engine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_serve::watcher::{poll_once, RegistryWatcher};
use rrc_serve::ServeEngine;
use rrc_store::ModelRegistry;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

mod common;

const USERS: usize = 12;
const ITEMS: usize = 40;

fn fresh_model(seed: u64) -> TsPprModel {
    let pipeline = FeaturePipeline::standard();
    TsPprModel::init(
        &mut StdRng::seed_from_u64(seed),
        USERS,
        ITEMS,
        6,
        pipeline.len(),
        0.1,
        0.05,
    )
}

fn engine() -> ServeEngine {
    let data = GeneratorConfig::tiny()
        .with_users(USERS)
        .with_items(ITEMS)
        .with_seed(5)
        .generate();
    let stats = TrainStats::compute(&data, 30);
    let online = OnlineTsPpr::new(
        fresh_model(1),
        FeaturePipeline::standard(),
        stats,
        OnlineConfig {
            window: 30,
            omega: 5,
            negatives_per_event: 0,
            ..OnlineConfig::default()
        },
    );
    ServeEngine::start(online, 2)
}

fn temp_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rrc_serve_registry_{label}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn poll_once_installs_each_new_version_exactly_once() {
    let dir = temp_dir("poll");
    let mut registry = ModelRegistry::create(&dir, 3).unwrap();
    let engine = engine();
    let mut last_seen = None;

    // Empty registry: nothing to do.
    assert_eq!(poll_once(&engine, &dir, &mut last_seen).unwrap(), None);

    let published = fresh_model(42);
    registry.publish(&published, &[]).unwrap();
    assert_eq!(poll_once(&engine, &dir, &mut last_seen).unwrap(), Some(1));
    assert_eq!(*engine.model(), published, "engine serves the new weights");
    // Same version again: no redundant swap.
    assert_eq!(poll_once(&engine, &dir, &mut last_seen).unwrap(), None);

    let next = fresh_model(43);
    registry.publish(&next, &[]).unwrap();
    assert_eq!(poll_once(&engine, &dir, &mut last_seen).unwrap(), Some(2));
    assert_eq!(*engine.model(), next);

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrongly_shaped_publish_is_rejected_and_not_retried_forever() {
    let dir = temp_dir("shape");
    let mut registry = ModelRegistry::create(&dir, 3).unwrap();
    let engine = engine();
    let before = engine.model();
    let mut last_seen = None;

    let wrong = TsPprModel::init(
        &mut StdRng::seed_from_u64(9),
        USERS + 1,
        ITEMS,
        6,
        9,
        0.1,
        0.05,
    );
    registry.publish(&wrong, &[]).unwrap();
    assert!(poll_once(&engine, &dir, &mut last_seen).is_err());
    assert_eq!(
        *engine.model(),
        *before,
        "engine must keep serving the old model"
    );
    // The bad version is remembered, not retried.
    assert_eq!(poll_once(&engine, &dir, &mut last_seen).unwrap(), None);

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_model_file_never_reaches_the_engine() {
    let dir = temp_dir("corrupt");
    let mut registry = ModelRegistry::create(&dir, 3).unwrap();
    let engine = engine();
    let before = engine.model();
    let mut last_seen = None;

    registry.publish(&fresh_model(7), &[]).unwrap();
    let (_, path) = registry.latest().unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    assert!(poll_once(&engine, &dir, &mut last_seen).is_err());
    assert_eq!(*engine.model(), *before);

    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_watcher_hot_swaps_after_publish() {
    let dir = temp_dir("thread");
    let mut registry = ModelRegistry::create(&dir, 3).unwrap();
    let engine = Arc::new(engine());
    let watcher = RegistryWatcher::spawn(engine.clone(), &dir, Duration::from_millis(10));

    let published = fresh_model(99);
    registry.publish(&published, &[]).unwrap();

    assert!(
        common::poll_until(Duration::from_secs(10), || *engine.model() == published),
        "watcher never installed the publish"
    );
    watcher.stop();

    let Ok(engine) = Arc::try_unwrap(engine) else {
        panic!("watcher should have dropped its engine handle");
    };
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
