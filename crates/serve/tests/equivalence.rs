//! The sharded engine must be *equivalent* to the single-threaded
//! reference ([`OnlineTsPpr`]), not merely similar:
//!
//! * With online learning off (`negatives_per_event = 0`) the model is
//!   frozen and equivalence is exact for **any** shard count: same
//!   windows, same recommendations, event for event.
//! * With learning on, a **1-shard** engine draws the reference's RNG
//!   stream (shard seed 0 = config seed), so served recommendations are
//!   bit-identical there too.
//! * A hot swap in the middle of a stream must not drop or reorder any
//!   user's events.
//!
//! Plus a property test that shard routing is a stable pure function.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_sequence::{ItemId, UserId, WindowState};
use rrc_serve::{shard_for, ServeEngine};

const WINDOW: usize = 30;
const OMEGA: usize = 5;
const TOPN: usize = 10;

/// A warmed reference recommender plus the per-user test streams.
fn fixture(negatives_per_event: usize) -> (OnlineTsPpr, Vec<Vec<ItemId>>) {
    let data = GeneratorConfig::tiny()
        .with_users(24)
        .with_items(80)
        .with_seed(1213)
        .generate();
    let split = data.split(0.7);
    let stats = TrainStats::compute(&split.train, WINDOW);
    let pipeline = FeaturePipeline::standard();
    let mut rng = StdRng::seed_from_u64(77);
    let model = TsPprModel::init(
        &mut rng,
        data.num_users(),
        data.num_items(),
        8,
        pipeline.len(),
        0.1,
        0.05,
    );
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: WINDOW,
            omega: OMEGA,
            negatives_per_event,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&split.train);
    let tests: Vec<Vec<ItemId>> = split.test.iter().map(|s| s.events().to_vec()).collect();
    (online, tests)
}

fn windows_equal(a: &WindowState, b: &WindowState) -> bool {
    a.time() == b.time() && a.events().eq(b.events())
}

/// Replay every user's stream in the same deterministic order on both
/// sides, then compare windows and Top-N lists user by user.
fn assert_engine_matches_reference(shards: usize, negatives_per_event: usize) {
    // Reference: single-threaded replay.
    let (mut reference, tests) = fixture(negatives_per_event);
    for (u, events) in tests.iter().enumerate() {
        for &item in events {
            reference.observe(UserId(u as u32), item);
        }
    }
    let expected: Vec<Vec<ItemId>> = (0..tests.len())
        .map(|u| reference.recommend(UserId(u as u32), TOPN))
        .collect();

    // Engine: identical starting state, identical event order.
    let (online, _) = fixture(negatives_per_event);
    let engine = ServeEngine::start(online, shards);
    for (u, events) in tests.iter().enumerate() {
        for &item in events {
            engine.observe_nowait(UserId(u as u32), item);
        }
    }
    engine.flush();

    for (u, window) in engine.export_windows() {
        assert!(
            windows_equal(&window, reference.window(UserId(u))),
            "user {u}: window diverged on {shards} shards"
        );
    }
    for (u, expect) in expected.iter().enumerate() {
        let got = engine.recommend(UserId(u as u32), TOPN);
        assert_eq!(
            &got, expect,
            "user {u}: recommendations diverged on {shards} shards"
        );
    }
    engine.shutdown();
}

#[test]
fn frozen_model_is_byte_identical_for_any_shard_count() {
    for shards in 1..=4 {
        assert_engine_matches_reference(shards, 0);
    }
}

#[test]
fn single_shard_learning_on_is_byte_identical() {
    // Shard 0's RNG seed equals the reference's, so even the online SGD
    // negative draws coincide and served Top-N stays bit-exact.
    assert_engine_matches_reference(1, 3);
}

#[test]
fn published_model_matches_reference_after_single_shard_learning() {
    let (mut reference, tests) = fixture(3);
    for (u, events) in tests.iter().enumerate() {
        for &item in events {
            reference.observe(UserId(u as u32), item);
        }
    }

    let (online, _) = fixture(3);
    let num_users = reference.model().num_users();
    let num_items = reference.model().num_items();
    let engine = ServeEngine::start(online, 1);
    for (u, events) in tests.iter().enumerate() {
        for &item in events {
            engine.observe_nowait(UserId(u as u32), item);
        }
    }
    engine.flush();
    let published = engine.publish();

    // Publishing round-trips deltas through `cur - base` and back, so the
    // comparison is to float tolerance rather than bitwise.
    let expect = reference.model();
    for u in 0..num_users as u32 {
        let (a, b) = (
            published.user_factor(UserId(u)),
            expect.user_factor(UserId(u)),
        );
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "user factor {u} diverged");
        }
        let (a, b) = (published.transform(UserId(u)), expect.transform(UserId(u)));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-9, "transform {u} diverged");
        }
    }
    for v in 0..num_items as u32 {
        let (a, b) = (
            published.item_factor(ItemId(v)),
            expect.item_factor(ItemId(v)),
        );
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "item factor {v} diverged");
        }
    }
    engine.shutdown();
}

#[test]
fn hot_swap_mid_stream_drops_and_reorders_nothing() {
    // Learning off isolates the ordering property: windows depend only on
    // the event sequence, so post-swap equality with an unswapped
    // reference proves no event was lost or reordered.
    let (mut reference, tests) = fixture(0);
    for (u, events) in tests.iter().enumerate() {
        for &item in events {
            reference.observe(UserId(u as u32), item);
        }
    }

    let (online, _) = fixture(0);
    let engine = ServeEngine::start(online, 3);
    let base = engine.model();
    for (u, events) in tests.iter().enumerate() {
        let mid = events.len() / 2;
        for &item in &events[..mid] {
            engine.observe_nowait(UserId(u as u32), item);
        }
    }
    // Swap while half the stream is still in flight (no flush first).
    engine.swap_model((*base).clone());
    for (u, events) in tests.iter().enumerate() {
        let mid = events.len() / 2;
        for &item in &events[mid..] {
            engine.observe_nowait(UserId(u as u32), item);
        }
    }
    engine.flush();

    let report = engine.metrics();
    let total: usize = tests.iter().map(|t| t.len()).sum();
    assert_eq!(report.total_observes(), total as u64, "events were dropped");
    for (u, window) in engine.export_windows() {
        assert!(
            windows_equal(&window, reference.window(UserId(u))),
            "user {u}: window diverged across the swap"
        );
    }
    engine.shutdown();
}

proptest! {
    /// Routing is a pure function of (user, shards): repeated evaluation
    /// agrees, the result is in range, and it is insensitive to
    /// evaluation order.
    #[test]
    fn shard_routing_is_a_stable_pure_function(
        users in prop::collection::vec(any::<u32>(), 1..64),
        shards in 1usize..16,
    ) {
        let first: Vec<usize> = users.iter().map(|&u| shard_for(UserId(u), shards)).collect();
        // Evaluate again in reverse order: same answers.
        let mut second: Vec<usize> = users
            .iter()
            .rev()
            .map(|&u| shard_for(UserId(u), shards))
            .collect();
        second.reverse();
        prop_assert_eq!(&first, &second);
        for s in first {
            prop_assert!(s < shards);
        }
    }
}
