//! Overload behavior, proven by its conservation law: every request the
//! clients *offer* is either *admitted* (served to completion) or *shed*
//! with a typed reason — `offered == admitted + shed_queue +
//! shed_deadline`, per shard and per request kind, no matter how many
//! writers race. Plus the gate invariants that make bounded queues safe:
//! depth never exceeds the cap (even transiently, under concurrent
//! hammering) and observes shed strictly before recommends.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{OnlineConfig, OnlineTsPpr, TsPprModel};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_sequence::{ItemId, UserId};
use rrc_serve::{
    Admission, AdmissionGate, EngineOptions, ForensicsOptions, OverloadOptions, RequestKind,
    ServeEngine, ShedReason,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const USERS: usize = 16;
const ITEMS: usize = 60;

fn engine_with(
    shards: usize,
    overload: OverloadOptions,
    inject_slow: Option<(u32, Duration)>,
) -> ServeEngine {
    let data = GeneratorConfig::tiny()
        .with_users(USERS)
        .with_items(ITEMS)
        .with_seed(7)
        .generate();
    let stats = TrainStats::compute(&data, 30);
    let pipeline = FeaturePipeline::standard();
    let model = TsPprModel::init(
        &mut StdRng::seed_from_u64(3),
        USERS,
        ITEMS,
        6,
        pipeline.len(),
        0.1,
        0.05,
    );
    let mut online = OnlineTsPpr::new(
        model,
        pipeline,
        stats,
        OnlineConfig {
            window: 30,
            omega: 5,
            negatives_per_event: 0,
            ..OnlineConfig::default()
        },
    );
    online.warm_from(&data);
    ServeEngine::start_with(
        online,
        shards,
        EngineOptions {
            overload,
            forensics: ForensicsOptions {
                enabled: inject_slow.is_some(),
                inject_slow,
                ..ForensicsOptions::default()
            },
            ..EngineOptions::default()
        },
    )
}

/// The conservation law under concurrent load: many writer threads race
/// typed observes and recommends against a small bounded queue with a
/// deadline, and afterwards the books balance — per shard, per kind, and
/// against the client-side attempt counts.
#[test]
fn conservation_holds_per_shard_and_kind_under_concurrent_writers() {
    let engine = engine_with(
        4,
        OverloadOptions {
            queue_cap: Some(8),
            observe_fraction: 0.75,
            deadline: Some(Duration::from_micros(500)),
        },
        None,
    );
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 500;
    let observes_offered = AtomicU64::new(0);
    let recommends_offered = AtomicU64::new(0);
    let client_shed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let (observes, recommends, shed) =
                (&observes_offered, &recommends_offered, &client_shed);
            let engine = &engine;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let user = UserId(((w as u64 * 31 + i * 7) % USERS as u64) as u32);
                    let item = ItemId(((w as u64 * 13 + i) % ITEMS as u64) as u32);
                    if i % 5 == 0 {
                        recommends.fetch_add(1, Ordering::Relaxed);
                        if engine.try_recommend(user, 5, None).is_err() {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        observes.fetch_add(1, Ordering::Relaxed);
                        if let Admission::Shed(_) = engine.try_observe_nowait(user, item, None) {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    engine.flush();
    let report = engine.metrics();
    let o = report.overload.expect("overload section present");

    // Per shard, per kind: offered == admitted + shed.
    for shard in &o.shards {
        assert!(
            shard.observe.conserved(),
            "shard {} observe not conserved: {:?}",
            shard.shard,
            shard.observe
        );
        assert!(
            shard.recommend.conserved(),
            "shard {} recommend not conserved: {:?}",
            shard.shard,
            shard.recommend
        );
        assert!(
            shard.peak_depth <= 8,
            "shard {} queue exceeded its cap: peak {}",
            shard.shard,
            shard.peak_depth
        );
    }
    // Engine totals equal the client-side books exactly.
    assert_eq!(o.observe.offered, observes_offered.load(Ordering::Relaxed));
    assert_eq!(
        o.recommend.offered,
        recommends_offered.load(Ordering::Relaxed)
    );
    assert_eq!(o.observe.offered, (WRITERS as u64) * PER_WRITER / 5 * 4);
    let total = o.total();
    assert!(total.conserved(), "engine totals not conserved: {total:?}");
    // Nowait observes report queue sheds but not deadline sheds (their
    // replies are discarded), so the client-side count is a lower bound.
    assert!(total.shed() >= client_shed.load(Ordering::Relaxed));
    engine.shutdown();
}

/// A full queue answers with a *typed* shed, not silence: stall the one
/// shard, flood it past its cap, and both outcomes (admitted, shed with
/// `QueueFull`) show up and are accounted.
#[test]
fn full_queue_sheds_with_typed_reason() {
    let engine = engine_with(
        1,
        OverloadOptions {
            queue_cap: Some(4),
            observe_fraction: 1.0,
            deadline: None,
        },
        Some((0, Duration::from_millis(10))),
    );
    // Wake the shard into its 10ms stall, then flood while it sleeps.
    let _ = engine.try_observe_nowait(UserId(0), ItemId(1), None);
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for i in 0..32 {
        match engine.try_observe_nowait(UserId(0), ItemId(i % ITEMS as u32), None) {
            Admission::Admitted => admitted += 1,
            Admission::Shed(reason) => {
                assert_eq!(reason, ShedReason::QueueFull);
                shed += 1;
            }
        }
    }
    assert!(admitted > 0, "some of the flood must fit in the queue");
    assert!(shed > 0, "a 4-deep queue cannot absorb 32 instant arrivals");
    engine.flush();
    let o = engine.metrics().overload.expect("overload section");
    assert!(o.total().conserved());
    assert_eq!(o.observe.shed_queue, shed);
    assert!(
        o.peak_depth <= 4,
        "peak depth {} exceeds cap 4",
        o.peak_depth
    );
    engine.shutdown();
}

/// Deadlines shed at dequeue: a request that would be served after its
/// deadline gets a typed `Deadline` error instead of a late answer, and
/// the books still balance.
#[test]
fn expired_deadline_sheds_instead_of_serving_late() {
    let engine = engine_with(
        1,
        OverloadOptions {
            // Deadlines without a queue bound: the overload accounting is
            // live, but nothing is ever refused at enqueue.
            queue_cap: None,
            observe_fraction: 0.75,
            deadline: Some(Duration::from_secs(5)),
        },
        Some((0, Duration::from_millis(5))),
    );
    // An already-expired deadline is the degenerate case: always shed.
    let past = Instant::now() - Duration::from_millis(1);
    // Park the shard in a stall first so the expired request cannot win a
    // race with the dequeue.
    let _ = engine.try_observe_nowait(UserId(0), ItemId(1), None);
    let out = engine.try_observe(UserId(0), ItemId(2), Some(past));
    assert_eq!(out.unwrap_err(), ShedReason::Deadline);
    let rec = engine.try_recommend(UserId(0), 5, Some(past));
    assert_eq!(rec.unwrap_err(), ShedReason::Deadline);
    // A generous deadline is served normally.
    let ok = engine.try_observe(
        UserId(1),
        ItemId(3),
        Some(Instant::now() + Duration::from_secs(5)),
    );
    assert!(ok.is_ok());
    engine.flush();
    let o = engine.metrics().overload.expect("overload section");
    assert_eq!(o.total().shed_deadline, 2);
    assert!(o.total().conserved());
    engine.shutdown();
}

/// The headline e2e: under the same flood against a stalled shard, the
/// bounded engine keeps recommend latency within the small backlog its
/// cap allows, while the unbounded engine queues the entire flood and
/// serves recommends catastrophically late.
#[test]
fn bounded_queue_keeps_recommends_fast_while_unbounded_collapses() {
    let stall = Duration::from_micros(100);
    const FLOOD: u32 = 1500;
    let run = |queue_cap: Option<usize>| -> (Duration, Option<u64>) {
        let engine = engine_with(
            1,
            OverloadOptions {
                queue_cap,
                observe_fraction: 0.9,
                deadline: None,
            },
            Some((0, stall)),
        );
        for i in 0..FLOOD {
            let _ = engine.try_observe_nowait(UserId(0), ItemId(i % ITEMS as u32), None);
        }
        // The recommend joins the tail of whatever backlog survived
        // admission; its latency is the backlog drained at ~stall/event.
        let t = Instant::now();
        let _ = engine.try_recommend(UserId(1), 5, None);
        let latency = t.elapsed();
        engine.flush();
        let shed = engine.metrics().overload.map(|o| o.total().shed_queue);
        engine.shutdown();
        (latency, shed)
    };

    let (bounded, bounded_shed) = run(Some(32));
    let (unbounded, unbounded_shed) = run(None);
    assert!(
        bounded_shed.unwrap() > 0,
        "the bounded run must actually have shed"
    );
    assert_eq!(unbounded_shed, None, "no gate means no overload section? ");
    // 1500 stalled events ≈ 150ms of backlog unbounded; bounded admits at
    // most 32 ≈ 3.2ms. Compare with a wide margin so CI noise cannot flip
    // the verdict: the unbounded tail must exceed the bounded one several
    // times over.
    assert!(
        unbounded > bounded * 5,
        "graceful degradation inverted: bounded {bounded:?} vs unbounded {unbounded:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The gate invariant, exhaustively: at *every* depth from empty to
    /// full, an admitted observe implies an admitted recommend — so
    /// observes shed strictly first — and past the cap nothing enters.
    #[test]
    fn observes_shed_before_recommends_at_every_depth(
        cap in 1u64..64,
        frac in 0.0f64..=1.0,
    ) {
        let opts = OverloadOptions {
            queue_cap: Some(cap as usize),
            observe_fraction: frac,
            deadline: None,
        };
        let observe_cap = opts.observe_cap().unwrap();
        prop_assert!((1..=cap as usize).contains(&observe_cap));
        let gate = AdmissionGate::new(cap as usize, observe_cap);
        for depth in 0..=cap {
            let observe_ok = gate.try_admit(RequestKind::Observe).is_ok();
            if observe_ok {
                // Undo the probe so both kinds see the same depth.
                gate.release();
            }
            let recommend_ok = gate.try_admit(RequestKind::Recommend).is_ok();
            prop_assert!(
                !observe_ok || recommend_ok,
                "depth {depth}: observe admitted where recommend shed"
            );
            prop_assert_eq!(observe_ok, depth < observe_cap as u64);
            prop_assert_eq!(recommend_ok, depth < cap);
            if !recommend_ok {
                // Queue full: nothing was enqueued, stop advancing.
                prop_assert_eq!(gate.depth(), cap);
                break;
            }
        }
        prop_assert!(gate.peak() <= cap);
    }

    /// Concurrent hammering never lets the depth past the cap — the CAS
    /// admission loop closes the check-then-increment race — and the
    /// final depth equals admits minus releases.
    #[test]
    fn concurrent_admission_never_exceeds_the_cap(
        cap in 1u64..24,
        threads in 2usize..6,
    ) {
        let gate = AdmissionGate::new(cap as usize, cap as usize);
        let admits = AtomicU64::new(0);
        // Panics in scoped threads propagate at scope exit, which
        // proptest reports as a failing case.
        std::thread::scope(|s| {
            for t in 0..threads {
                let (gate, admits) = (&gate, &admits);
                s.spawn(move || {
                    for i in 0..400u64 {
                        let kind = if (t as u64 + i).is_multiple_of(3) {
                            RequestKind::Recommend
                        } else {
                            RequestKind::Observe
                        };
                        if gate.try_admit(kind).is_ok() {
                            admits.fetch_add(1, Ordering::Relaxed);
                            assert!(gate.depth() <= cap);
                            if i % 2 == 0 {
                                gate.release();
                                admits.fetch_sub(1, Ordering::Relaxed);
                            }
                        }
                        assert!(gate.peak() <= cap);
                    }
                });
            }
        });
        prop_assert!(gate.peak() <= cap, "peak {} exceeded cap {}", gate.peak(), cap);
        prop_assert_eq!(gate.depth(), admits.load(Ordering::Relaxed));
    }
}
