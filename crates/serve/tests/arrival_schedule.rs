//! The arrival scheduler's contract: schedules are *deterministic*
//! (same seed → byte-identical, pinned by a committed golden fixture),
//! *monotone* (time never runs backwards), and *rate-faithful* (the
//! empirical Poisson rate lands within a few percent of the target).
//!
//! Regenerate the golden fixture after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rrc-serve --test arrival_schedule
//! ```

use proptest::prelude::*;
use rrc_serve::arrival::{self, ArrivalProcess, ArrivalSpec, ArrivalTarget};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("arrival_schedule.txt")
}

/// The fixture covers one spec per open-loop process, each with a flash
/// crowd overlay, rendered compactly: a fingerprint of the full byte
/// encoding plus the first few arrivals verbatim.
fn fixture_specs() -> Vec<(&'static str, ArrivalSpec)> {
    vec![
        (
            "poisson",
            ArrivalSpec {
                process: ArrivalProcess::Poisson { rate: 25_000.0 },
                seed: 2024,
                hot_users: 8,
                hot_fraction: 0.1,
            },
        ),
        (
            "burst",
            ArrivalSpec {
                process: ArrivalProcess::Burst {
                    rate: 5_000.0,
                    burst_rate: 200_000.0,
                    period_ns: 50_000_000,
                    burst_ns: 10_000_000,
                },
                seed: 2024,
                hot_users: 8,
                hot_fraction: 0.1,
            },
        ),
        (
            "diurnal",
            ArrivalSpec {
                process: ArrivalProcess::Diurnal {
                    rate: 20_000.0,
                    period_ns: 100_000_000,
                    amplitude: 0.8,
                },
                seed: 2024,
                hot_users: 8,
                hot_fraction: 0.1,
            },
        ),
    ]
}

fn render() -> String {
    let mut out = String::new();
    out.push_str("# Golden arrival schedules. Regenerate intentionally with:\n");
    out.push_str("#   UPDATE_GOLDEN=1 cargo test -p rrc-serve --test arrival_schedule\n");
    for (name, spec) in fixture_specs() {
        let schedule = arrival::generate(&spec, 200, 0);
        writeln!(out, "process {name}").unwrap();
        writeln!(out, "arrivals {}", schedule.len()).unwrap();
        writeln!(out, "fingerprint {:#018x}", arrival::fingerprint(&schedule)).unwrap();
        for a in schedule.iter().take(8) {
            let slot = match a.target {
                ArrivalTarget::Replay => "replay".to_string(),
                ArrivalTarget::Hot(n) => format!("hot:{n}"),
            };
            writeln!(out, "  at_ns {} {slot}", a.at_ns).unwrap();
        }
    }
    out
}

#[test]
fn golden_schedules_are_stable() {
    let rendered = render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "arrival schedules drifted from the committed golden fixture; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn same_seed_is_byte_identical_across_generations() {
    for (_, spec) in fixture_specs() {
        let a = arrival::encode(&arrival::generate(&spec, 2_000, 5));
        let b = arrival::encode(&arrival::generate(&spec, 2_000, 5));
        assert_eq!(a, b, "same (spec, events, stream) must be byte-identical");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inter-arrival gaps are non-negative (time is monotone) and the
    /// schedule carries exactly the requested number of replay events,
    /// for every process shape.
    #[test]
    fn schedules_are_monotone_with_exact_replay_counts(
        seed in any::<u64>(),
        rate in 1_000.0f64..500_000.0,
        hot_users in 0u32..16,
        hot_fraction in 0.0f64..0.5,
        events in 1usize..2_000,
        process_kind in 0u8..3,
    ) {
        let process = match process_kind {
            0 => ArrivalProcess::Poisson { rate },
            1 => ArrivalProcess::Burst {
                rate,
                burst_rate: rate * 8.0,
                period_ns: 10_000_000,
                burst_ns: 2_000_000,
            },
            _ => ArrivalProcess::Diurnal {
                rate,
                period_ns: 20_000_000,
                amplitude: 0.9,
            },
        };
        let spec = ArrivalSpec { process, seed, hot_users, hot_fraction };
        let schedule = arrival::generate(&spec, events, seed % 7);
        let replays = schedule
            .iter()
            .filter(|a| a.target == ArrivalTarget::Replay)
            .count();
        prop_assert_eq!(replays, events, "replay count must be exact");
        prop_assert!(
            schedule.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "arrival times must be monotone non-decreasing"
        );
        if hot_users == 0 || hot_fraction == 0.0 {
            prop_assert_eq!(schedule.len(), events, "no hot overlay when disabled");
        }
        for a in &schedule {
            if let ArrivalTarget::Hot(n) = a.target {
                prop_assert!(n < hot_users, "hot slot {} out of range", n);
            }
        }
    }

    /// The empirical rate of a large Poisson schedule is within 5% of the
    /// target — the inversion sampler is calibrated, not just monotone.
    #[test]
    fn poisson_empirical_rate_is_within_five_percent(
        seed in any::<u64>(),
        rate in 5_000.0f64..200_000.0,
    ) {
        const N: usize = 20_000;
        let spec = ArrivalSpec {
            process: ArrivalProcess::Poisson { rate },
            seed,
            hot_users: 0,
            hot_fraction: 0.0,
        };
        let schedule = arrival::generate(&spec, N, 0);
        let span_s = schedule.last().unwrap().at_ns as f64 / 1e9;
        prop_assert!(span_s > 0.0);
        let empirical = (N - 1) as f64 / span_s;
        let err = (empirical - rate).abs() / rate;
        prop_assert!(
            err < 0.05,
            "empirical rate {empirical:.0}/s vs target {rate:.0}/s (err {:.1}%)",
            err * 100.0
        );
    }
}
