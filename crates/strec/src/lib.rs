//! **STREC** — Short-Term REConsumption prediction (Chen, Wang & Wang,
//! AAAI 2015), the companion problem to RRC (§5.7 of the paper).
//!
//! STREC answers the *switch* question: given the current window, will the
//! next consumption be a repeat (`x_{t+1} ∈ W_{ut}`) or a novel item? The
//! reproduced paper combines this classifier with TS-PPR to form a holistic
//! pipeline (Table 5): STREC gates which time steps get an RRC
//! recommendation.
//!
//! The original linear model's feature definitions are paraphrased here
//! (see DESIGN.md) as four window-level aggregates:
//!
//! 1. window concentration `1 − distinct/|W|` — how repetitive the recent
//!    stream already is;
//! 2. count-weighted mean item reconsumption ratio of the window;
//! 3. recency of the last repeat event `1/(t − t_last_repeat)`;
//! 4. count-weighted mean item quality of the window.
//!
//! The classifier is an L1-regularised (Lasso) logistic model fitted by
//! proximal gradient descent ([`lasso`]), matching the original paper's
//! "linear Lasso method".

pub mod features;
pub mod lasso;
pub mod model;

pub use features::{strec_examples, window_features, StrecFeatureState, STREC_FEATURE_NAMES};
pub use lasso::{LassoConfig, LassoLogistic};
pub use model::StrecClassifier;
