//! L1-regularised logistic regression fitted by proximal gradient descent
//! (ISTA) — the "linear Lasso method" of the original STREC paper.

use rrc_linalg::sigmoid;

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LassoConfig {
    /// L1 penalty strength on the weights (the bias is never penalised).
    pub l1: f64,
    /// Gradient step size.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// Early-stop tolerance on the loss change per epoch.
    pub tol: f64,
}

impl Default for LassoConfig {
    fn default() -> Self {
        LassoConfig {
            l1: 1e-4,
            learning_rate: 0.5,
            epochs: 500,
            tol: 1e-9,
        }
    }
}

/// A fitted L1 logistic model: `P(y = 1 | x) = σ(wᵀx + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LassoLogistic {
    weights: Vec<f64>,
    bias: f64,
}

impl LassoLogistic {
    /// Fit on `(xs, ys)` examples.
    ///
    /// # Panics
    /// Panics on empty data, ragged feature vectors, or mismatched lengths.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], config: &LassoConfig) -> Self {
        assert!(!xs.is_empty(), "need at least one example");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        let p = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == p), "ragged feature vectors");

        let n = xs.len() as f64;
        let mut w = vec![0.0; p];
        let mut b = 0.0;
        let mut prev_loss = f64::INFINITY;
        for _ in 0..config.epochs {
            // Full-batch gradient of the mean logistic loss.
            let mut gw = vec![0.0; p];
            let mut gb = 0.0;
            let mut loss = 0.0;
            for (x, &y) in xs.iter().zip(ys.iter()) {
                let z: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                let pred = sigmoid(z);
                let target = if y { 1.0 } else { 0.0 };
                let err = pred - target;
                for (g, xi) in gw.iter_mut().zip(x) {
                    *g += err * xi;
                }
                gb += err;
                loss -= if y {
                    rrc_linalg::ln_sigmoid(z)
                } else {
                    rrc_linalg::ln_sigmoid(-z)
                };
            }
            loss /= n;
            loss += config.l1 * w.iter().map(|v| v.abs()).sum::<f64>();

            // Gradient step + soft-threshold prox on the weights.
            let lr = config.learning_rate;
            let thresh = lr * config.l1;
            for (wi, g) in w.iter_mut().zip(gw.iter()) {
                let stepped = *wi - lr * g / n;
                *wi = soft_threshold(stepped, thresh);
            }
            b -= lr * gb / n;

            if (prev_loss - loss).abs() < config.tol {
                break;
            }
            prev_loss = loss;
        }
        LassoLogistic {
            weights: w,
            bias: b,
        }
    }

    /// The fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// `P(y = 1 | x)`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        let z: f64 = self
            .weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Fraction of examples classified correctly.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    /// Number of exactly-zero weights (the sparsity the Lasso buys).
    pub fn num_zero_weights(&self) -> usize {
        self.weights.iter().filter(|w| **w == 0.0).count()
    }
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // y = 1 iff x0 + noise > 0.5; x1 is pure noise.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x0: f64 = rng.gen_range(0.0..1.0);
            let x1: f64 = rng.gen_range(0.0..1.0);
            xs.push(vec![x0, x1]);
            ys.push(x0 + rng.gen_range(-0.05..0.05) > 0.5);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_problem() {
        let (xs, ys) = separable_data(2000, 1);
        let model = LassoLogistic::fit(&xs, &ys, &LassoConfig::default());
        assert!(model.accuracy(&xs, &ys) > 0.9);
        // The informative weight is positive and dominates the noise weight.
        assert!(model.weights()[0] > 0.0);
        assert!(model.weights()[0].abs() > model.weights()[1].abs());
    }

    #[test]
    fn strong_l1_zeroes_noise_weight() {
        let (xs, ys) = separable_data(2000, 2);
        let cfg = LassoConfig {
            l1: 0.05,
            ..LassoConfig::default()
        };
        let model = LassoLogistic::fit(&xs, &ys, &cfg);
        assert_eq!(model.weights()[1], 0.0, "weights: {:?}", model.weights());
        assert!(model.num_zero_weights() >= 1);
        // The informative feature survives.
        assert!(model.weights()[0] > 0.0);
    }

    #[test]
    fn extreme_l1_zeroes_everything() {
        let (xs, ys) = separable_data(200, 3);
        let cfg = LassoConfig {
            l1: 100.0,
            ..LassoConfig::default()
        };
        let model = LassoLogistic::fit(&xs, &ys, &cfg);
        assert_eq!(model.num_zero_weights(), 2);
        // Bias alone: predicts the majority class everywhere.
        let p = model.predict_proba(&[0.9, 0.9]);
        let q = model.predict_proba(&[0.1, 0.1]);
        assert!((p - q).abs() < 1e-12);
    }

    #[test]
    fn constant_labels_learn_bias_only() {
        let xs = vec![vec![0.2], vec![0.8], vec![0.5]];
        let ys = vec![true, true, true];
        let model = LassoLogistic::fit(&xs, &ys, &LassoConfig::default());
        assert!(model.predict_proba(&[0.5]) > 0.9);
        assert_eq!(model.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(1.0, 0.3), 0.7);
        assert_eq!(soft_threshold(-1.0, 0.3), -0.7);
        assert_eq!(soft_threshold(0.2, 0.3), 0.0);
        assert_eq!(soft_threshold(-0.2, 0.3), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_data_rejected() {
        LassoLogistic::fit(&[], &[], &LassoConfig::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        LassoLogistic::fit(&[vec![1.0]], &[true, false], &LassoConfig::default());
    }
}
