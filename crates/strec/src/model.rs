//! The end-to-end STREC classifier: feature extraction + Lasso logistic.

use crate::features::{strec_examples, window_features, StrecFeatureState};
use crate::lasso::{LassoConfig, LassoLogistic};
use rrc_features::TrainStats;
use rrc_sequence::{Dataset, WindowState};

/// A trained repeat-vs-novel classifier over window-level features.
#[derive(Debug, Clone, PartialEq)]
pub struct StrecClassifier {
    model: LassoLogistic,
    window_capacity: usize,
}

impl StrecClassifier {
    /// Extract examples from the training split and fit.
    ///
    /// Returns `None` when the training data produces no examples (all
    /// sequences shorter than 2 events).
    pub fn fit(
        train: &Dataset,
        stats: &TrainStats,
        window_capacity: usize,
        config: &LassoConfig,
    ) -> Option<Self> {
        let (xs, ys) = strec_examples(train, stats, window_capacity);
        if xs.is_empty() {
            return None;
        }
        Some(StrecClassifier {
            model: LassoLogistic::fit(&xs, &ys, config),
            window_capacity,
        })
    }

    /// The window capacity the classifier was trained with.
    pub fn window_capacity(&self) -> usize {
        self.window_capacity
    }

    /// Borrow the underlying Lasso model.
    pub fn model(&self) -> &LassoLogistic {
        &self.model
    }

    /// Probability that the next consumption is a repeat, given the live
    /// window and streaming state.
    pub fn predict_proba(
        &self,
        window: &WindowState,
        stats: &TrainStats,
        state: &StrecFeatureState,
    ) -> f64 {
        self.model
            .predict_proba(&window_features(window, stats, state))
    }

    /// Hard repeat/novel prediction at threshold 0.5.
    pub fn predict(
        &self,
        window: &WindowState,
        stats: &TrainStats,
        state: &StrecFeatureState,
    ) -> bool {
        self.predict_proba(window, stats, state) >= 0.5
    }

    /// Hard prediction at an explicit threshold — useful when the classes
    /// are imbalanced (repeat fractions of 70-80% push every probability
    /// above 0.5) and the caller wants to route by *relative* propensity,
    /// e.g. with the training base rate as the threshold.
    pub fn predict_with_threshold(
        &self,
        window: &WindowState,
        stats: &TrainStats,
        state: &StrecFeatureState,
        threshold: f64,
    ) -> bool {
        self.predict_proba(window, stats, state) >= threshold
    }

    /// Classification accuracy over a walked event stream starting from a
    /// warmed window (the Table 5 "STREC" column).
    pub fn accuracy_on(
        &self,
        events: &[rrc_sequence::ItemId],
        stats: &TrainStats,
        mut window: WindowState,
        mut state: StrecFeatureState,
    ) -> (usize, usize) {
        let mut correct = 0;
        let mut total = 0;
        for &item in events {
            if !window.is_empty() {
                let predicted = self.predict(&window, stats, &state);
                let actual = window.contains(item);
                if predicted == actual {
                    correct += 1;
                }
                total += 1;
            }
            state.observe(window.time(), window.contains(item));
            window.push(item);
        }
        (correct, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_sequence::{Sequence, UserId};

    #[test]
    fn beats_chance_on_generated_data() {
        let data = GeneratorConfig::tiny().with_seed(14).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 30);
        let clf = StrecClassifier::fit(&split.train, &stats, 30, &LassoConfig::default())
            .expect("examples exist");
        // Evaluate on held-out suffixes with warmed windows.
        let mut correct = 0;
        let mut total = 0;
        let mut base_repeat = 0;
        for (u, train_seq) in split.train.iter() {
            let window = WindowState::warmed(30, train_seq.events());
            let test = split.test_sequence(u);
            let (c, t) = clf.accuracy_on(test.events(), &stats, window.clone(), Default::default());
            correct += c;
            total += t;
            // Majority baseline: count repeats in test w.r.t. live window.
            let mut w = window;
            for &item in test.events() {
                if w.contains(item) {
                    base_repeat += 1;
                }
                w.push(item);
            }
        }
        let acc = correct as f64 / total as f64;
        let majority = {
            let p = base_repeat as f64 / total as f64;
            p.max(1.0 - p)
        };
        assert!(acc > 0.5, "accuracy {acc}");
        // Should at least approach the majority-class baseline.
        assert!(acc > majority - 0.1, "acc {acc} vs majority {majority}");
    }

    #[test]
    fn degenerate_training_returns_none() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 1);
        let stats = TrainStats::compute(&d, 10);
        assert!(StrecClassifier::fit(&d, &stats, 10, &LassoConfig::default()).is_none());
    }

    #[test]
    fn prediction_is_deterministic() {
        let data = GeneratorConfig::tiny().with_seed(15).generate();
        let stats = TrainStats::compute(&data, 30);
        let clf = StrecClassifier::fit(&data, &stats, 30, &LassoConfig::default()).unwrap();
        let w = WindowState::warmed(30, data.sequence(UserId(0)).events());
        let p1 = clf.predict_proba(&w, &stats, &Default::default());
        let p2 = clf.predict_proba(&w, &stats, &Default::default());
        assert_eq!(p1, p2);
        assert!((0.0..=1.0).contains(&p1));
        assert_eq!(clf.window_capacity(), 30);
    }
}
