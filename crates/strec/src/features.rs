//! Window-level features for repeat-vs-novel classification.

use rrc_features::TrainStats;
use rrc_sequence::{Dataset, ItemId, WindowState};

/// Names of the four STREC features, in vector order.
pub const STREC_FEATURE_NAMES: [&str; 4] = [
    "concentration",
    "mean_recon_ratio",
    "repeat_recency",
    "mean_quality",
];

/// Streaming state a STREC feature extraction walk must carry alongside the
/// window: when the last repeat happened.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrecFeatureState {
    /// Step index of the most recent repeat consumption, if any.
    pub last_repeat_step: Option<usize>,
}

impl StrecFeatureState {
    /// Record the classification of the event just consumed at `step`.
    pub fn observe(&mut self, step: usize, was_repeat: bool) {
        if was_repeat {
            self.last_repeat_step = Some(step);
        }
    }
}

/// The four window-level features at the current decision point.
pub fn window_features(
    window: &WindowState,
    stats: &TrainStats,
    state: &StrecFeatureState,
) -> Vec<f64> {
    let len = window.len();
    if len == 0 {
        return vec![0.0; 4];
    }
    let len_f = len as f64;
    let concentration = 1.0 - window.distinct_len() as f64 / len_f;
    let mut recon = 0.0;
    let mut quality = 0.0;
    for item in window.distinct_items() {
        let c = window.count(item) as f64;
        recon += c * stats.recon_ratio(item);
        quality += c * stats.quality(item);
    }
    recon /= len_f;
    quality /= len_f;
    let repeat_recency = match state.last_repeat_step {
        None => 0.0,
        Some(s) => 1.0 / (window.time() - s) as f64,
    };
    vec![concentration, recon, repeat_recency, quality]
}

/// Walk every user's sequence and emit one `(features, label)` example per
/// step with a non-empty preceding window; the label is whether that step's
/// consumption was a repeat from the window (any repeat — STREC does not
/// apply the Ω gap).
pub fn strec_examples(
    data: &Dataset,
    stats: &TrainStats,
    window_capacity: usize,
) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (_, seq) in data.iter() {
        let mut window = WindowState::new(window_capacity);
        let mut state = StrecFeatureState::default();
        for (step, &item) in seq.events().iter().enumerate() {
            if !window.is_empty() {
                xs.push(window_features(&window, stats, &state));
                ys.push(window.contains(item));
            }
            state.observe(step, window.contains(item));
            window.push(item);
        }
    }
    (xs, ys)
}

/// Extract examples continuing from a warmed window (used to score the test
/// suffix with training-derived state).
pub fn strec_examples_from(
    events: &[ItemId],
    stats: &TrainStats,
    mut window: WindowState,
    mut state: StrecFeatureState,
) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &item in events {
        if !window.is_empty() {
            xs.push(window_features(&window, stats, &state));
            ys.push(window.contains(item));
        }
        state.observe(window.time(), window.contains(item));
        window.push(item);
    }
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    fn stats_for(d: &Dataset) -> TrainStats {
        TrainStats::compute(d, 10)
    }

    #[test]
    fn concentration_reflects_duplicates() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 0, 0, 1])], 2);
        let stats = stats_for(&d);
        let w = WindowState::warmed(10, &[0, 0, 0, 1].map(ItemId));
        let f = window_features(&w, &stats, &StrecFeatureState::default());
        assert!((f[0] - 0.5).abs() < 1e-12); // 2 distinct of 4
        let w2 = WindowState::warmed(10, &[0, 1].map(ItemId));
        let f2 = window_features(&w2, &stats, &StrecFeatureState::default());
        assert_eq!(f2[0], 0.0); // all distinct
    }

    #[test]
    fn repeat_recency_decays() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 1);
        let stats = stats_for(&d);
        let w = WindowState::warmed(10, &[0, 0, 0, 0].map(ItemId)); // t = 4
        let mut state = StrecFeatureState::default();
        state.observe(1, true);
        let f = window_features(&w, &stats, &state);
        assert!((f[2] - 1.0 / 3.0).abs() < 1e-12);
        // No repeat yet → 0.
        let f0 = window_features(&w, &stats, &StrecFeatureState::default());
        assert_eq!(f0[2], 0.0);
    }

    #[test]
    fn empty_window_gives_zero_vector() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 1);
        let stats = stats_for(&d);
        let w = WindowState::new(5);
        assert_eq!(
            window_features(&w, &stats, &StrecFeatureState::default()),
            vec![0.0; 4]
        );
    }

    #[test]
    fn examples_have_correct_labels() {
        // Events: 0 1 0 0 → labels for steps 1.. : [false, true, true].
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 0, 0])], 2);
        let stats = stats_for(&d);
        let (xs, ys) = strec_examples(&d, &stats, 10);
        assert_eq!(xs.len(), 3);
        assert_eq!(ys, vec![false, true, true]);
        for x in &xs {
            assert_eq!(x.len(), 4);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn examples_from_warm_window_continue_state() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1])], 3);
        let stats = stats_for(&d);
        let warm = WindowState::warmed(10, &[0, 1].map(ItemId));
        let test_events = [ItemId(0), ItemId(2)];
        let (xs, ys) =
            strec_examples_from(&test_events, &stats, warm, StrecFeatureState::default());
        assert_eq!(ys, vec![true, false]);
        assert_eq!(xs.len(), 2);
    }
}
