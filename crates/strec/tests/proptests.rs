//! Property-based tests for the STREC classifier stack.

use proptest::prelude::*;
use rrc_features::TrainStats;
use rrc_sequence::{Dataset, ItemId, Sequence, WindowState};
use rrc_strec::{strec_examples, window_features, LassoConfig, LassoLogistic, StrecFeatureState};

fn event_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..10, 5..120)
}

proptest! {
    #[test]
    fn features_always_bounded(events in event_stream()) {
        let d = Dataset::new(vec![Sequence::from_raw(events.clone())], 10);
        let stats = TrainStats::compute(&d, 15);
        let mut w = WindowState::new(15);
        let mut state = StrecFeatureState::default();
        for (step, &e) in events.iter().enumerate() {
            let f = window_features(&w, &stats, &state);
            prop_assert_eq!(f.len(), 4);
            for v in &f {
                prop_assert!((0.0..=1.0).contains(v), "feature {} out of range", v);
                prop_assert!(v.is_finite());
            }
            state.observe(step, w.contains(ItemId(e)));
            w.push(ItemId(e));
        }
    }

    #[test]
    fn example_count_is_len_minus_one_per_user(
        lens in prop::collection::vec(2usize..50, 1..5)
    ) {
        let seqs: Vec<Sequence> = lens
            .iter()
            .map(|&n| Sequence::from_raw((0..n as u32).map(|i| i % 6).collect()))
            .collect();
        let d = Dataset::new(seqs, 6);
        let stats = TrainStats::compute(&d, 15);
        let (xs, ys) = strec_examples(&d, &stats, 15);
        let expected: usize = lens.iter().map(|&n| n - 1).sum();
        prop_assert_eq!(xs.len(), expected);
        prop_assert_eq!(ys.len(), expected);
    }

    #[test]
    fn lasso_probabilities_bounded(
        xs in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 5..40),
        label_bits in prop::collection::vec(any::<bool>(), 40),
    ) {
        let ys: Vec<bool> = label_bits.iter().copied().take(xs.len()).collect();
        prop_assume!(xs.len() == ys.len());
        let model = LassoLogistic::fit(&xs, &ys, &LassoConfig {
            epochs: 50,
            ..LassoConfig::default()
        });
        for x in &xs {
            let p = model.predict_proba(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p.is_finite());
        }
        let acc = model.accuracy(&xs, &ys);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn stronger_l1_never_decreases_sparsity_much(
        seed in 0u64..100,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let ys: Vec<bool> = xs.iter().map(|x| x[0] > 0.5).collect();
        let weak = LassoLogistic::fit(&xs, &ys, &LassoConfig { l1: 1e-6, ..Default::default() });
        let strong = LassoLogistic::fit(&xs, &ys, &LassoConfig { l1: 0.2, ..Default::default() });
        prop_assert!(strong.num_zero_weights() >= weak.num_zero_weights());
        // The L1 norm shrinks under the stronger penalty.
        let norm = |m: &LassoLogistic| m.weights().iter().map(|w| w.abs()).sum::<f64>();
        prop_assert!(norm(&strong) <= norm(&weak) + 1e-9);
    }
}
