//! On-disk encoding of a continuous-trainer checkpoint (`rrc-stream`).
//!
//! A stream checkpoint is a model file (`META`/`DIMS`/`UMAT`/`VMAT`/
//! `AMAT`) plus `RNGS` (the per-shard negative-sampling RNG streams,
//! `shards × 4` words) and `WNDS` — every user's live window, the part of
//! the trainer's state the batch checkpoint never needed. Together they
//! pin the *entire* deterministic state of the incremental trainer:
//! resuming from a checkpoint and replaying the remaining stream yields a
//! model bit-identical to the uninterrupted run, exactly as
//! [`crate::checkpoint`] established for batch training.
//!
//! `WNDS` layout (u64 words): `[users]`, then per user
//! `[t, buf_len, ls_len]`, `buf_len` item ids (the window contents,
//! oldest first), and `ls_len` `(item, step)` pairs — the full last-seen
//! history, sorted by item id so the encoding is canonical.

use crate::error::{corrupt, schema, StoreError};
use crate::format::{commit, encode_meta, StoreFile, Tag, Writer};
use crate::model::{check_matrix_len, model_dims, push_model_sections};
use rrc_core::TsPprModel;
use rrc_linalg::DMatrix;
use rrc_obs::global;
use rrc_sequence::{ItemId, WindowState};
use std::path::Path;

/// `META` kind for stream-checkpoint files.
pub const KIND_STREAM: &str = "tsppr-stream-checkpoint";

/// Cumulative prequential counters, checkpointed so a resumed trainer
/// reports the same evaluation totals as an uninterrupted one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrequentialCounters {
    /// Eligible repeats that were scored before being learned from.
    pub opportunities: u64,
    /// Hits at the cutoffs `[1, 5, 10]`.
    pub hits: [u64; 3],
    /// Sum of reciprocal ranks over all opportunities.
    pub rr_sum: f64,
}

/// The full deterministic state of an incremental stream trainer at an
/// event boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Shard count the trainer ran with (fixes the RNG stream layout).
    pub shards: usize,
    /// Events consumed from the stream so far; a resumed trainer must be
    /// fed the stream starting at exactly this offset.
    pub events_processed: u64,
    /// Events that triggered SGD learning (eligible repeats).
    pub events_trained: u64,
    /// Individual SGD updates taken.
    pub updates: u64,
    /// Models published to the registry so far.
    pub publishes: u64,
    /// Cumulative prequential evaluation state.
    pub preq: PrequentialCounters,
    /// Per-shard negative-sampling RNG streams.
    pub rng_states: Vec<[u64; 4]>,
    /// The incrementally-trained model.
    pub model: TsPprModel,
    /// Every user's live window, indexed by user id.
    pub windows: Vec<WindowState>,
    /// Trainer-configuration fingerprint (mismatched resume is refused by
    /// the trainer, not silently accepted).
    pub fingerprint: u64,
}

/// Serialize a stream checkpoint into container bytes.
pub fn encode_stream_checkpoint(ck: &StreamCheckpoint) -> Vec<u8> {
    let capacity = ck.windows.first().map_or(0, WindowState::capacity);
    debug_assert!(
        ck.windows.iter().all(|w| w.capacity() == capacity),
        "stream trainer windows share one capacity"
    );
    let meta = vec![
        ("kind".to_string(), KIND_STREAM.to_string()),
        ("shards".to_string(), ck.shards.to_string()),
        ("events".to_string(), ck.events_processed.to_string()),
        ("trained".to_string(), ck.events_trained.to_string()),
        ("updates".to_string(), ck.updates.to_string()),
        ("publishes".to_string(), ck.publishes.to_string()),
        (
            "preq_opportunities".to_string(),
            ck.preq.opportunities.to_string(),
        ),
        ("preq_hits1".to_string(), ck.preq.hits[0].to_string()),
        ("preq_hits5".to_string(), ck.preq.hits[1].to_string()),
        ("preq_hits10".to_string(), ck.preq.hits[2].to_string()),
        (
            "preq_rr_bits".to_string(),
            format!("{:016x}", ck.preq.rr_sum.to_bits()),
        ),
        ("window".to_string(), capacity.to_string()),
        (
            "fingerprint".to_string(),
            format!("{:016x}", ck.fingerprint),
        ),
    ];
    let mut w = Writer::new();
    w.section(Tag::META, &encode_meta(&meta));
    push_model_sections(&mut w, &ck.model);
    w.begin(Tag::RNGS);
    for state in &ck.rng_states {
        w.push_u64s(state);
    }
    w.end();
    w.begin(Tag::WNDS);
    w.push_u64s(&[ck.windows.len() as u64]);
    for window in &ck.windows {
        let events: Vec<ItemId> = window.events().collect();
        let last_seen = window.last_seen_entries();
        w.push_u64s(&[
            window.time() as u64,
            events.len() as u64,
            last_seen.len() as u64,
        ]);
        for item in &events {
            w.push_u64s(&[item.0 as u64]);
        }
        for (item, step) in &last_seen {
            w.push_u64s(&[item.0 as u64, *step as u64]);
        }
    }
    w.end();
    w.finish()
}

/// Atomically write a stream checkpoint. Returns the file size in bytes.
pub fn save_stream_checkpoint(
    ck: &StreamCheckpoint,
    path: impl AsRef<Path>,
) -> Result<u64, StoreError> {
    let _prof = rrc_obs::ProfGuard::enter("store_save");
    let bytes = encode_stream_checkpoint(ck);
    commit(path, &bytes)?;
    global().counter("store_stream_checkpoints_total").inc();
    Ok(bytes.len() as u64)
}

/// Load and fully validate a stream checkpoint.
pub fn load_stream_checkpoint(path: impl AsRef<Path>) -> Result<StreamCheckpoint, StoreError> {
    let _prof = rrc_obs::ProfGuard::enter("store_load");
    decode_stream_checkpoint(&StoreFile::open(path)?)
}

fn meta_field(file: &StoreFile, key: &str) -> Result<String, StoreError> {
    file.meta_value(key)?.ok_or_else(|| {
        schema(format!(
            "stream checkpoint is missing the {key:?} metadata field"
        ))
    })
}

fn parse_u64(key: &str, value: &str) -> Result<u64, StoreError> {
    value
        .parse::<u64>()
        .map_err(|_| schema(format!("bad {key} value {value:?}")))
}

/// Decode a parsed container as a stream checkpoint.
pub fn decode_stream_checkpoint(file: &StoreFile) -> Result<StreamCheckpoint, StoreError> {
    match file.meta_value("kind")? {
        Some(kind) if kind == KIND_STREAM => {}
        Some(kind) => {
            return Err(schema(format!(
                "expected a {KIND_STREAM} file, found {kind:?}"
            )))
        }
        None => return Err(schema(format!("no kind metadata; expected {KIND_STREAM}"))),
    }
    let shards = parse_u64("shards", &meta_field(file, "shards")?)? as usize;
    if shards == 0 {
        return Err(schema("stream checkpoint declares zero shards".to_string()));
    }
    let events_processed = parse_u64("events", &meta_field(file, "events")?)?;
    let events_trained = parse_u64("trained", &meta_field(file, "trained")?)?;
    let updates = parse_u64("updates", &meta_field(file, "updates")?)?;
    let publishes = parse_u64("publishes", &meta_field(file, "publishes")?)?;
    let preq = PrequentialCounters {
        opportunities: parse_u64(
            "preq_opportunities",
            &meta_field(file, "preq_opportunities")?,
        )?,
        hits: [
            parse_u64("preq_hits1", &meta_field(file, "preq_hits1")?)?,
            parse_u64("preq_hits5", &meta_field(file, "preq_hits5")?)?,
            parse_u64("preq_hits10", &meta_field(file, "preq_hits10")?)?,
        ],
        rr_sum: {
            let hex = meta_field(file, "preq_rr_bits")?;
            f64::from_bits(
                u64::from_str_radix(&hex, 16)
                    .map_err(|_| schema(format!("bad preq_rr_bits value {hex:?}")))?,
            )
        },
    };
    let capacity = parse_u64("window", &meta_field(file, "window")?)? as usize;
    let fp_hex = meta_field(file, "fingerprint")?;
    let fingerprint = u64::from_str_radix(&fp_hex, 16)
        .map_err(|_| schema(format!("bad fingerprint value {fp_hex:?}")))?;

    // Model sections, validated exactly like a model file.
    let (k, f_dim, users, items) = model_dims(file)?;
    check_matrix_len(file, Tag::UMAT, users, k)?;
    check_matrix_len(file, Tag::VMAT, items, k)?;
    check_matrix_len(file, Tag::AMAT, users * k, f_dim)?;
    let u = file.f64_section(Tag::UMAT)?;
    let v = file.f64_section(Tag::VMAT)?;
    let a = file.f64_section(Tag::AMAT)?;
    let stride = k * f_dim;
    let model = TsPprModel::from_parts(
        k,
        f_dim,
        DMatrix::from_vec(users, k, u.to_vec()),
        DMatrix::from_vec(items, k, v.to_vec()),
        (0..users)
            .map(|i| DMatrix::from_vec(k, f_dim, a[i * stride..(i + 1) * stride].to_vec()))
            .collect(),
    );

    let rngs = file.u64_section(Tag::RNGS)?;
    if rngs.len() != shards * 4 {
        return Err(corrupt(
            Tag::RNGS.name(),
            format!(
                "expected {} RNG words for {shards} shard(s), found {}",
                shards * 4,
                rngs.len()
            ),
        ));
    }
    let rng_states: Vec<[u64; 4]> = rngs
        .chunks_exact(4)
        .map(|c| {
            let state = [c[0], c[1], c[2], c[3]];
            if state == [0; 4] {
                return Err(corrupt(
                    Tag::RNGS.name(),
                    "all-zero xoshiro state is unreachable",
                ));
            }
            Ok(state)
        })
        .collect::<Result<_, _>>()?;

    let windows = decode_windows(file, users, capacity)?;

    Ok(StreamCheckpoint {
        shards,
        events_processed,
        events_trained,
        updates,
        publishes,
        preq,
        rng_states,
        model,
        windows,
        fingerprint,
    })
}

fn decode_windows(
    file: &StoreFile,
    users: usize,
    capacity: usize,
) -> Result<Vec<WindowState>, StoreError> {
    let bad = |msg: String| corrupt(Tag::WNDS.name(), msg);
    let words = file.u64_section(Tag::WNDS)?;
    let mut at = 0usize;
    let mut next = |n: usize| -> Result<&[u64], StoreError> {
        let slice = words
            .get(at..at + n)
            .ok_or_else(|| bad("window section truncated".to_string()))?;
        at += n;
        Ok(slice)
    };
    let declared = next(1)?[0] as usize;
    if declared != users {
        return Err(bad(format!(
            "checkpoint covers {declared} users, model has {users}"
        )));
    }
    if capacity == 0 && users > 0 {
        return Err(bad("zero window capacity".to_string()));
    }
    let mut windows = Vec::with_capacity(users);
    for user in 0..users {
        let header = next(3)?;
        let (t, buf_len, ls_len) = (header[0] as usize, header[1] as usize, header[2] as usize);
        if buf_len > capacity || t < buf_len {
            return Err(bad(format!(
                "user {user}: {buf_len} events in a capacity-{capacity} window at time {t}"
            )));
        }
        let events: Vec<ItemId> = next(buf_len)?
            .iter()
            .map(|&w| {
                u32::try_from(w)
                    .map(ItemId)
                    .map_err(|_| bad(format!("user {user}: item id {w} overflows u32")))
            })
            .collect::<Result<_, _>>()?;
        let pairs = next(ls_len * 2)?;
        let mut last_seen = Vec::with_capacity(ls_len);
        let mut prev: Option<u64> = None;
        for pair in pairs.chunks_exact(2) {
            let (item, step) = (pair[0], pair[1] as usize);
            if prev.is_some_and(|p| item <= p) {
                return Err(bad(format!(
                    "user {user}: last-seen entries not strictly sorted by item"
                )));
            }
            if step >= t {
                return Err(bad(format!(
                    "user {user}: last-seen step {step} not before time {t}"
                )));
            }
            prev = Some(item);
            let item = u32::try_from(item)
                .map(ItemId)
                .map_err(|_| bad(format!("user {user}: item id {item} overflows u32")))?;
            last_seen.push((item, step));
        }
        windows.push(WindowState::from_parts(capacity, t, &events, &last_seen));
    }
    if at != words.len() {
        return Err(bad(format!(
            "{} trailing words after the last window",
            words.len() - at
        )));
    }
    Ok(windows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checkpoint() -> StreamCheckpoint {
        let model = TsPprModel::init(&mut StdRng::seed_from_u64(3), 4, 6, 2, 2, 0.1, 0.1);
        let mut windows: Vec<WindowState> = (0..4).map(|_| WindowState::new(5)).collect();
        for (u, w) in windows.iter_mut().enumerate() {
            for i in 0..(u * 3 + 2) {
                w.push(ItemId(((i * 7 + u) % 6) as u32));
            }
        }
        StreamCheckpoint {
            shards: 2,
            events_processed: 321,
            events_trained: 57,
            updates: 171,
            publishes: 3,
            preq: PrequentialCounters {
                opportunities: 57,
                hits: [9, 21, 30],
                rr_sum: 17.25,
            },
            rng_states: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            model,
            windows,
            fingerprint: 0x0123_4567_89AB_CDEF,
        }
    }

    #[test]
    fn round_trip_preserves_every_field_bitwise() {
        let ck = checkpoint();
        let bytes = encode_stream_checkpoint(&ck);
        let back = decode_stream_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(back.shards, ck.shards);
        assert_eq!(back.events_processed, ck.events_processed);
        assert_eq!(back.events_trained, ck.events_trained);
        assert_eq!(back.updates, ck.updates);
        assert_eq!(back.publishes, ck.publishes);
        assert_eq!(back.preq.opportunities, ck.preq.opportunities);
        assert_eq!(back.preq.hits, ck.preq.hits);
        assert_eq!(back.preq.rr_sum.to_bits(), ck.preq.rr_sum.to_bits());
        assert_eq!(back.rng_states, ck.rng_states);
        assert_eq!(back.model, ck.model);
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.windows.len(), ck.windows.len());
        for (a, b) in back.windows.iter().zip(&ck.windows) {
            assert_eq!(a.time(), b.time());
            assert_eq!(a.capacity(), b.capacity());
            assert_eq!(
                a.events().collect::<Vec<_>>(),
                b.events().collect::<Vec<_>>()
            );
            assert_eq!(a.last_seen_entries(), b.last_seen_entries());
        }
    }

    #[test]
    fn model_file_is_rejected_as_stream_checkpoint() {
        let bytes = crate::model::encode_model(&checkpoint().model, &[]);
        let err = decode_stream_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
    }

    #[test]
    fn window_count_must_match_model_users() {
        let mut ck = checkpoint();
        ck.windows.pop();
        let bytes = encode_stream_checkpoint(&ck);
        let err = decode_stream_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { ref section, .. } if section == "WNDS"),
            "{err}"
        );
    }

    #[test]
    fn truncated_window_section_is_rejected() {
        // Rebuild the container with one word shaved off WNDS: every other
        // section is intact, so the failure must come from window parsing.
        let ck = checkpoint();
        let clean = encode_stream_checkpoint(&ck);
        let file = StoreFile::from_bytes(&clean).unwrap();
        let words = file.u64_section(Tag::WNDS).unwrap();
        assert!(words.len() > 4);
        let mut writer = Writer::new();
        for tag in [
            Tag::META,
            Tag::DIMS,
            Tag::UMAT,
            Tag::VMAT,
            Tag::AMAT,
            Tag::RNGS,
        ] {
            writer.section(tag, file.section(tag).unwrap());
        }
        writer.begin(Tag::WNDS);
        writer.push_u64s(&words[..words.len() - 1]);
        writer.end();
        let err = decode_stream_checkpoint(&StoreFile::from_bytes(&writer.finish()).unwrap())
            .unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { ref section, .. } if section == "WNDS"),
            "{err}"
        );
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join(format!("rrc_store_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.ckpt");
        let ck = checkpoint();
        save_stream_checkpoint(&ck, &path).unwrap();
        assert_eq!(load_stream_checkpoint(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }
}
