//! TS-PPR model save/load on top of the [`crate::format`] container.
//!
//! A model file carries `META` (`kind = "tsppr-model"` plus caller
//! metadata), `DIMS` (`[K, F, users, items]`), `UMAT`, `VMAT` and `AMAT`
//! (all `A_u` concatenated). [`ModelView`] validates everything up front
//! and then serves factor rows zero-copy out of the single read buffer;
//! [`load_model`] materialises an owned [`TsPprModel`].

use crate::error::{corrupt, schema, StoreError};
use crate::format::{commit, encode_meta, StoreFile, Tag, Writer};
use rrc_core::TsPprModel;
use rrc_linalg::DMatrix;
use std::path::Path;

/// `META` kind for TS-PPR model files.
pub const KIND_TSPPR: &str = "tsppr-model";

/// `META` key carrying the training-config fingerprint (16 lowercase hex
/// digits — the same `TrainCheckpoint::fingerprint_of` value checkpoints
/// store). Publishers write it so serving-side monitors can attribute
/// online quality and drift to the exact training configuration.
pub const META_FINGERPRINT: &str = "fingerprint";

/// Serialize a model (plus caller metadata) into container bytes.
pub fn encode_model(model: &TsPprModel, extra_meta: &[(String, String)]) -> Vec<u8> {
    let mut meta = vec![("kind".to_string(), KIND_TSPPR.to_string())];
    meta.extend(extra_meta.iter().cloned());
    let mut w = Writer::new();
    w.section(Tag::META, &encode_meta(&meta));
    push_model_sections(&mut w, model);
    w.finish()
}

/// Append `DIMS`/`UMAT`/`VMAT`/`AMAT` for `model` — shared with the
/// checkpoint encoder.
pub(crate) fn push_model_sections(w: &mut Writer, model: &TsPprModel) {
    w.u64_section(
        Tag::DIMS,
        &[
            model.k() as u64,
            model.f_dim() as u64,
            model.num_users() as u64,
            model.num_items() as u64,
        ],
    );
    w.f64_section(Tag::UMAT, model.u_matrix().as_slice());
    w.f64_section(Tag::VMAT, model.v_matrix().as_slice());
    w.begin(Tag::AMAT);
    for a in model.transforms() {
        w.push_f64s(a.as_slice());
    }
    w.end();
}

/// Atomically save `model` to `path`. Returns the file size in bytes.
pub fn save_model(
    model: &TsPprModel,
    extra_meta: &[(String, String)],
    path: impl AsRef<Path>,
) -> Result<u64, StoreError> {
    let _prof = rrc_obs::ProfGuard::enter("store_save");
    let bytes = encode_model(model, extra_meta);
    commit(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Load an owned model from `path`, rejecting anything malformed.
pub fn load_model(path: impl AsRef<Path>) -> Result<TsPprModel, StoreError> {
    let _prof = rrc_obs::ProfGuard::enter("store_load");
    Ok(ModelView::open(path)?.to_model())
}

/// Validated zero-copy view of a stored TS-PPR model: row accessors
/// borrow directly from the read buffer.
#[derive(Debug)]
pub struct ModelView {
    file: StoreFile,
    k: usize,
    f_dim: usize,
    users: usize,
    items: usize,
}

/// The `DIMS` quad of a model-shaped container, validated.
pub(crate) fn model_dims(file: &StoreFile) -> Result<(usize, usize, usize, usize), StoreError> {
    let dims = file.u64_section(Tag::DIMS)?;
    let &[k, f_dim, users, items] = dims else {
        return Err(corrupt(
            Tag::DIMS.name(),
            format!("expected 4 dimensions, found {}", dims.len()),
        ));
    };
    let as_count = |v: u64, what: &str| -> Result<usize, StoreError> {
        usize::try_from(v)
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| schema(format!("implausible {what} count {v}")))
    };
    Ok((
        as_count(k, "K")?,
        as_count(f_dim, "F")?,
        as_count(users, "user")?,
        as_count(items, "item")?,
    ))
}

/// Check that a matrix section holds exactly `rows × cols` values.
pub(crate) fn check_matrix_len(
    file: &StoreFile,
    tag: Tag,
    rows: usize,
    cols: usize,
) -> Result<(), StoreError> {
    let want = rows
        .checked_mul(cols)
        .ok_or_else(|| schema("matrix dimensions overflow".to_string()))?;
    let got = file.f64_section(tag)?.len();
    if got != want {
        return Err(corrupt(
            tag.name(),
            format!("expected {want} values ({rows}×{cols}), found {got}"),
        ));
    }
    Ok(())
}

impl ModelView {
    /// Open and fully validate the model file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<ModelView, StoreError> {
        ModelView::from_file(StoreFile::open(path)?)
    }

    /// Validate an in-memory container.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelView, StoreError> {
        ModelView::from_file(StoreFile::from_bytes(bytes)?)
    }

    /// Validate a parsed container as a TS-PPR model.
    pub fn from_file(file: StoreFile) -> Result<ModelView, StoreError> {
        match file.meta_value("kind")? {
            Some(kind) if kind == KIND_TSPPR => {}
            Some(kind) => {
                return Err(schema(format!(
                    "expected a {KIND_TSPPR} file, found {kind:?}"
                )))
            }
            None => return Err(schema(format!("no kind metadata; expected {KIND_TSPPR}"))),
        }
        let (k, f_dim, users, items) = model_dims(&file)?;
        check_matrix_len(&file, Tag::UMAT, users, k)?;
        check_matrix_len(&file, Tag::VMAT, items, k)?;
        check_matrix_len(&file, Tag::AMAT, users * k, f_dim)?;
        Ok(ModelView {
            file,
            k,
            f_dim,
            users,
            items,
        })
    }

    /// Latent dimension `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Feature dimension `F`.
    pub fn f_dim(&self) -> usize {
        self.f_dim
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.items
    }

    /// Metadata pairs stored alongside the parameters.
    pub fn meta(&self) -> Vec<(String, String)> {
        // Validated during `from_file`; cannot fail now.
        self.file.meta().expect("META revalidation")
    }

    /// One metadata value.
    pub fn meta_value(&self, key: &str) -> Option<String> {
        self.file.meta_value(key).expect("META revalidation")
    }

    /// The training-config fingerprint recorded at save time, if the
    /// publisher wrote one (and it parses as 16 hex digits).
    pub fn fingerprint(&self) -> Option<u64> {
        let hex = self.meta_value(META_FINGERPRINT)?;
        u64::from_str_radix(hex.trim(), 16).ok()
    }

    /// User `u`'s latent factor, borrowed from the read buffer.
    pub fn user_row(&self, user: usize) -> &[f64] {
        assert!(user < self.users, "user {user} out of range");
        let m = self.file.f64_section(Tag::UMAT).expect("UMAT revalidation");
        &m[user * self.k..(user + 1) * self.k]
    }

    /// Item `v`'s latent factor, borrowed from the read buffer.
    pub fn item_row(&self, item: usize) -> &[f64] {
        assert!(item < self.items, "item {item} out of range");
        let m = self.file.f64_section(Tag::VMAT).expect("VMAT revalidation");
        &m[item * self.k..(item + 1) * self.k]
    }

    /// User `u`'s transform `A_u` as one row-major `K × F` slice.
    pub fn transform(&self, user: usize) -> &[f64] {
        assert!(user < self.users, "user {user} out of range");
        let m = self.file.f64_section(Tag::AMAT).expect("AMAT revalidation");
        let stride = self.k * self.f_dim;
        &m[user * stride..(user + 1) * stride]
    }

    /// Materialise an owned [`TsPprModel`] (one copy of each section).
    pub fn to_model(&self) -> TsPprModel {
        let u = self.file.f64_section(Tag::UMAT).expect("UMAT revalidation");
        let v = self.file.f64_section(Tag::VMAT).expect("VMAT revalidation");
        let a = self.file.f64_section(Tag::AMAT).expect("AMAT revalidation");
        let stride = self.k * self.f_dim;
        TsPprModel::from_parts(
            self.k,
            self.f_dim,
            DMatrix::from_vec(self.users, self.k, u.to_vec()),
            DMatrix::from_vec(self.items, self.k, v.to_vec()),
            (0..self.users)
                .map(|i| {
                    DMatrix::from_vec(self.k, self.f_dim, a[i * stride..(i + 1) * stride].to_vec())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rrc_sequence::{ItemId, UserId};

    fn model() -> TsPprModel {
        TsPprModel::init(&mut StdRng::seed_from_u64(7), 4, 6, 5, 3, 0.05, 0.01)
    }

    #[test]
    fn encode_load_round_trip_is_exact() {
        let m = model();
        let bytes = encode_model(&m, &[("seed".into(), "7".into())]);
        let view = ModelView::from_bytes(&bytes).unwrap();
        assert_eq!(
            (view.k(), view.f_dim(), view.num_users(), view.num_items()),
            (5, 3, 4, 6)
        );
        assert_eq!(view.meta_value("seed").as_deref(), Some("7"));
        assert_eq!(view.user_row(2), m.user_factor(UserId(2)));
        assert_eq!(view.item_row(5), m.item_factor(ItemId(5)));
        assert_eq!(view.transform(3), m.transform(UserId(3)).as_slice());
        assert_eq!(view.to_model(), m);
    }

    #[test]
    fn file_round_trip_and_deterministic_bytes() {
        let dir = std::env::temp_dir().join(format!("rrc_store_model_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.rrcm");
        let m = model();
        let size = save_model(&m, &[], &path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), size);
        assert_eq!(load_model(&path).unwrap(), m);
        // Same model + same metadata ⇒ byte-identical file (no timestamps
        // or other nondeterminism) — the property the resume smoke leans on.
        let again = dir.join("m2.rrcm");
        save_model(&m, &[], &again).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&again).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_meta_round_trips_and_rejects_junk() {
        let m = model();
        let bytes = encode_model(
            &m,
            &[(META_FINGERPRINT.into(), format!("{:016x}", 0xdead_beef_u64))],
        );
        let view = ModelView::from_bytes(&bytes).unwrap();
        assert_eq!(view.fingerprint(), Some(0xdead_beef));
        // Absent or unparsable fingerprints read as None, never an error.
        let plain = ModelView::from_bytes(&encode_model(&m, &[])).unwrap();
        assert_eq!(plain.fingerprint(), None);
        let junk = ModelView::from_bytes(&encode_model(
            &m,
            &[(META_FINGERPRINT.into(), "not-hex".into())],
        ))
        .unwrap();
        assert_eq!(junk.fingerprint(), None);
    }

    #[test]
    fn wrong_kind_is_a_schema_error() {
        let m = model();
        let mut w = Writer::new();
        w.section(
            Tag::META,
            &encode_meta(&[("kind".into(), "something-else".into())]),
        );
        push_model_sections(&mut w, &m);
        let err = ModelView::from_bytes(&w.finish()).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
    }

    #[test]
    fn missing_section_is_typed() {
        let mut w = Writer::new();
        w.section(
            Tag::META,
            &encode_meta(&[("kind".into(), KIND_TSPPR.into())]),
        );
        w.u64_section(Tag::DIMS, &[2, 2, 2, 2]);
        // no UMAT/VMAT/AMAT
        let err = ModelView::from_bytes(&w.finish()).unwrap_err();
        assert!(matches!(err, StoreError::Missing { .. }), "{err}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let m = model();
        // DIMS claims 3 users but the matrices hold 4 — must fail on the
        // length check (fresh file so every CRC is still valid).
        let mut w = Writer::new();
        w.section(
            Tag::META,
            &encode_meta(&[("kind".into(), KIND_TSPPR.into())]),
        );
        w.u64_section(Tag::DIMS, &[5, 3, 3, 6]);
        w.f64_section(Tag::UMAT, m.u_matrix().as_slice());
        w.f64_section(Tag::VMAT, m.v_matrix().as_slice());
        w.begin(Tag::AMAT);
        for a in m.transforms() {
            w.push_f64s(a.as_slice());
        }
        w.end();
        let err = ModelView::from_bytes(&w.finish()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn zero_dimension_is_a_schema_error() {
        let mut w = Writer::new();
        w.section(
            Tag::META,
            &encode_meta(&[("kind".into(), KIND_TSPPR.into())]),
        );
        w.u64_section(Tag::DIMS, &[0, 1, 1, 1]);
        w.f64_section(Tag::UMAT, &[]);
        w.f64_section(Tag::VMAT, &[]);
        w.f64_section(Tag::AMAT, &[]);
        let err = ModelView::from_bytes(&w.finish()).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
    }
}
