//! On-disk encoding of [`TrainCheckpoint`] and the [`Checkpointer`] sink
//! the trainers write through.
//!
//! A checkpoint file is a model file (`META`/`DIMS`/`UMAT`/`VMAT`/`AMAT`)
//! plus two extra sections: `RNGS` (the xoshiro256++ state of every shard
//! stream, `shards × 4` words) and `TRCE` (the convergence-check history).
//! Scalar run state — mode, shard count, step, previous `r̃`, accumulated
//! wall clock, configuration fingerprint — rides in `META`, with `f64`
//! values stored as hex bit patterns so nothing is lost to decimal
//! round-tripping.

use crate::error::{corrupt, schema, StoreError};
use crate::format::{commit, encode_meta, StoreFile, Tag, Writer};
use crate::model::{check_matrix_len, model_dims, push_model_sections};
use rrc_core::{ConvergencePoint, TrainCheckpoint, TrainMode, TsPprModel};
use rrc_linalg::DMatrix;
use rrc_obs::global;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// `META` kind for checkpoint files.
pub const KIND_CHECKPOINT: &str = "tsppr-checkpoint";

/// Serialize a checkpoint into container bytes.
pub fn encode_checkpoint(ck: &TrainCheckpoint) -> Vec<u8> {
    let meta = vec![
        ("kind".to_string(), KIND_CHECKPOINT.to_string()),
        ("mode".to_string(), ck.mode.to_string()),
        ("shards".to_string(), ck.shards.to_string()),
        ("step".to_string(), ck.step.to_string()),
        (
            "prev_r_tilde_bits".to_string(),
            match ck.prev_r_tilde {
                Some(v) => format!("{:016x}", v.to_bits()),
                None => "none".to_string(),
            },
        ),
        ("elapsed_ns".to_string(), ck.elapsed.as_nanos().to_string()),
        (
            "fingerprint".to_string(),
            format!("{:016x}", ck.fingerprint),
        ),
    ];
    let mut w = Writer::new();
    w.section(Tag::META, &encode_meta(&meta));
    push_model_sections(&mut w, &ck.model);
    w.begin(Tag::RNGS);
    for state in &ck.rng_states {
        w.push_u64s(state);
    }
    w.end();
    w.begin(Tag::TRCE);
    w.push_u64s(&[ck.checks.len() as u64]);
    for c in &ck.checks {
        w.push_u64s(&[
            c.step as u64,
            c.r_tilde.to_bits(),
            c.nll.to_bits(),
            c.elapsed.as_nanos().min(u64::MAX as u128) as u64,
        ]);
    }
    w.end();
    w.finish()
}

/// Atomically write a checkpoint. Returns the file size in bytes.
pub fn save_checkpoint(ck: &TrainCheckpoint, path: impl AsRef<Path>) -> Result<u64, StoreError> {
    let bytes = encode_checkpoint(ck);
    commit(path, &bytes)?;
    global().counter("store_checkpoints_total").inc();
    Ok(bytes.len() as u64)
}

/// Load and fully validate a checkpoint.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<TrainCheckpoint, StoreError> {
    decode_checkpoint(&StoreFile::open(path)?)
}

fn meta_field(file: &StoreFile, key: &str) -> Result<String, StoreError> {
    file.meta_value(key)?
        .ok_or_else(|| schema(format!("checkpoint is missing the {key:?} metadata field")))
}

fn parse_u64(key: &str, value: &str) -> Result<u64, StoreError> {
    value
        .parse::<u64>()
        .map_err(|_| schema(format!("bad {key} value {value:?}")))
}

/// Decode a parsed container as a checkpoint.
pub fn decode_checkpoint(file: &StoreFile) -> Result<TrainCheckpoint, StoreError> {
    match file.meta_value("kind")? {
        Some(kind) if kind == KIND_CHECKPOINT => {}
        Some(kind) => {
            return Err(schema(format!(
                "expected a {KIND_CHECKPOINT} file, found {kind:?}"
            )))
        }
        None => {
            return Err(schema(format!(
                "no kind metadata; expected {KIND_CHECKPOINT}"
            )))
        }
    }
    let mode: TrainMode = meta_field(file, "mode")?
        .parse()
        .map_err(|e: String| schema(e))?;
    let shards = parse_u64("shards", &meta_field(file, "shards")?)? as usize;
    if shards == 0 {
        return Err(schema("checkpoint declares zero shards".to_string()));
    }
    let step = parse_u64("step", &meta_field(file, "step")?)? as usize;
    let prev_r_tilde = match meta_field(file, "prev_r_tilde_bits")?.as_str() {
        "none" => None,
        hex => Some(f64::from_bits(u64::from_str_radix(hex, 16).map_err(
            |_| schema(format!("bad prev_r_tilde_bits value {hex:?}")),
        )?)),
    };
    let elapsed_ns = meta_field(file, "elapsed_ns")?;
    let elapsed = Duration::from_nanos(
        elapsed_ns
            .parse::<u128>()
            .map_err(|_| schema(format!("bad elapsed_ns value {elapsed_ns:?}")))?
            .min(u64::MAX as u128) as u64,
    );
    let fp_hex = meta_field(file, "fingerprint")?;
    let fingerprint = u64::from_str_radix(&fp_hex, 16)
        .map_err(|_| schema(format!("bad fingerprint value {fp_hex:?}")))?;

    // Model sections, validated exactly like a model file.
    let (k, f_dim, users, items) = model_dims(file)?;
    check_matrix_len(file, Tag::UMAT, users, k)?;
    check_matrix_len(file, Tag::VMAT, items, k)?;
    check_matrix_len(file, Tag::AMAT, users * k, f_dim)?;
    let u = file.f64_section(Tag::UMAT)?;
    let v = file.f64_section(Tag::VMAT)?;
    let a = file.f64_section(Tag::AMAT)?;
    let stride = k * f_dim;
    let model = TsPprModel::from_parts(
        k,
        f_dim,
        DMatrix::from_vec(users, k, u.to_vec()),
        DMatrix::from_vec(items, k, v.to_vec()),
        (0..users)
            .map(|i| DMatrix::from_vec(k, f_dim, a[i * stride..(i + 1) * stride].to_vec()))
            .collect(),
    );

    let rngs = file.u64_section(Tag::RNGS)?;
    if rngs.len() != shards * 4 {
        return Err(corrupt(
            Tag::RNGS.name(),
            format!(
                "expected {} RNG words for {shards} shard(s), found {}",
                shards * 4,
                rngs.len()
            ),
        ));
    }
    let rng_states: Vec<[u64; 4]> = rngs
        .chunks_exact(4)
        .map(|c| {
            let state = [c[0], c[1], c[2], c[3]];
            if state == [0; 4] {
                return Err(corrupt(
                    Tag::RNGS.name(),
                    "all-zero xoshiro state is unreachable",
                ));
            }
            Ok(state)
        })
        .collect::<Result<_, _>>()?;

    let trace = file.u64_section(Tag::TRCE)?;
    let Some((&count, entries)) = trace.split_first() else {
        return Err(corrupt(Tag::TRCE.name(), "empty trace section"));
    };
    let count = usize::try_from(count)
        .ok()
        .filter(|&n| entries.len() == n * 4)
        .ok_or_else(|| {
            corrupt(
                Tag::TRCE.name(),
                format!(
                    "trace declares {count} entries but holds {} words",
                    entries.len()
                ),
            )
        })?;
    let checks: Vec<ConvergencePoint> = entries
        .chunks_exact(4)
        .map(|e| ConvergencePoint {
            step: e[0] as usize,
            r_tilde: f64::from_bits(e[1]),
            nll: f64::from_bits(e[2]),
            elapsed: Duration::from_nanos(e[3]),
        })
        .collect();
    debug_assert_eq!(checks.len(), count);

    Ok(TrainCheckpoint {
        mode,
        shards,
        step,
        prev_r_tilde,
        elapsed,
        checks,
        rng_states,
        model,
        fingerprint,
    })
}

/// A single-slot checkpoint sink: every snapshot atomically replaces the
/// file at `path`, so the newest durable checkpoint is always complete —
/// a kill between checkpoints loses at most one interval of work.
///
/// Records the wall-clock gap between consecutive writes in the
/// `store_checkpoint_interval_ns` histogram and counts files through
/// `store_checkpoints_total` (via [`save_checkpoint`]).
pub struct Checkpointer {
    path: PathBuf,
    written: usize,
    last_write: Option<Instant>,
}

impl Checkpointer {
    /// Create a sink writing to `path` (nothing is written until the
    /// first snapshot arrives).
    pub fn new(path: impl Into<PathBuf>) -> Checkpointer {
        Checkpointer {
            path: path.into(),
            written: 0,
            last_write: None,
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Snapshots written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Write one snapshot (atomic replace). Returns the file size.
    pub fn write(&mut self, ck: &TrainCheckpoint) -> Result<u64, StoreError> {
        if let Some(prev) = self.last_write {
            global()
                .histogram("store_checkpoint_interval_ns")
                .record_duration(prev.elapsed());
        }
        self.last_write = Some(Instant::now());
        let size = save_checkpoint(ck, &self.path)?;
        self.written += 1;
        Ok(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn checkpoint() -> TrainCheckpoint {
        let model = TsPprModel::init(&mut StdRng::seed_from_u64(2), 3, 4, 2, 2, 0.1, 0.1);
        TrainCheckpoint {
            mode: TrainMode::Sharded,
            shards: 2,
            step: 1200,
            prev_r_tilde: Some(0.731_234_567_891),
            elapsed: Duration::from_millis(1234),
            checks: vec![
                ConvergencePoint {
                    step: 600,
                    r_tilde: 0.5,
                    nll: 0.69,
                    elapsed: Duration::from_millis(700),
                },
                ConvergencePoint {
                    step: 1200,
                    r_tilde: 0.731_234_567_891,
                    nll: 0.52,
                    elapsed: Duration::from_millis(1234),
                },
            ],
            rng_states: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            model,
            fingerprint: 0xDEAD_BEEF_0123_4567,
        }
    }

    #[test]
    fn round_trip_preserves_every_field_bitwise() {
        let ck = checkpoint();
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(back.mode, ck.mode);
        assert_eq!(back.shards, ck.shards);
        assert_eq!(back.step, ck.step);
        assert_eq!(
            back.prev_r_tilde.map(f64::to_bits),
            ck.prev_r_tilde.map(f64::to_bits)
        );
        assert_eq!(back.elapsed, ck.elapsed);
        assert_eq!(back.rng_states, ck.rng_states);
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.model, ck.model);
        assert_eq!(back.checks.len(), ck.checks.len());
        for (a, b) in back.checks.iter().zip(&ck.checks) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.r_tilde.to_bits(), b.r_tilde.to_bits());
            assert_eq!(a.nll.to_bits(), b.nll.to_bits());
            assert_eq!(a.elapsed, b.elapsed);
        }
    }

    #[test]
    fn none_prev_r_tilde_round_trips() {
        let mut ck = checkpoint();
        ck.prev_r_tilde = None;
        let bytes = encode_checkpoint(&ck);
        let back = decode_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap();
        assert_eq!(back.prev_r_tilde, None);
    }

    #[test]
    fn model_file_is_rejected_as_checkpoint() {
        let bytes = crate::model::encode_model(&checkpoint().model, &[]);
        let err = decode_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
    }

    #[test]
    fn shard_count_must_match_rng_streams() {
        let mut ck = checkpoint();
        ck.rng_states.pop();
        let bytes = encode_checkpoint(&ck);
        let err = decode_checkpoint(&StoreFile::from_bytes(&bytes).unwrap()).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupt { ref section, .. } if section == "RNGS"),
            "{err}"
        );
    }

    #[test]
    fn checkpointer_replaces_single_slot() {
        let dir = std::env::temp_dir().join(format!("rrc_store_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        let mut sink = Checkpointer::new(&path);
        let mut ck = checkpoint();
        sink.write(&ck).unwrap();
        ck.step += 600;
        sink.write(&ck).unwrap();
        assert_eq!(sink.written(), 2);
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.step, ck.step, "newest snapshot wins");
        std::fs::remove_dir_all(&dir).ok();
    }
}
