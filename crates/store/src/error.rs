//! The typed error surface of the store.
//!
//! Every load path classifies failures so callers (and tests) can tell a
//! missing file from a torn write from a schema mismatch. The invariant
//! backing the whole crate: **no variant ever accompanies a
//! partially-initialized model** — loaders validate everything before
//! constructing parameters.

use std::fmt;
use std::io;

/// Why a store file could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open, read, rename, fsync…).
    Io(io::Error),
    /// The file does not start with the `RRCSTOR1` magic — not a store
    /// file at all.
    BadMagic,
    /// The container declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// Structural damage: a failed checksum, truncated section, nonzero
    /// padding, or any other byte-level inconsistency. `section` names the
    /// damaged section (or `"header"`/`"frame"` for the envelope).
    Corrupt { section: String, detail: String },
    /// The container parsed cleanly but a required section is absent.
    Missing { section: String },
    /// The sections are all intact but describe something the caller did
    /// not ask for — wrong model kind, impossible dimensions, or a
    /// checkpoint whose configuration fingerprint does not match.
    Schema { detail: String },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic => write!(f, "not a store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt section {section:?}: {detail}")
            }
            StoreError::Missing { section } => write!(f, "missing section {section:?}"),
            StoreError::Schema { detail } => write!(f, "schema mismatch: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Shorthand constructor used throughout the parsers.
pub(crate) fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        section: section.into(),
        detail: detail.into(),
    }
}

/// Shorthand [`StoreError::Schema`] constructor.
pub(crate) fn schema(detail: impl Into<String>) -> StoreError {
    StoreError::Schema {
        detail: detail.into(),
    }
}
