//! A directory of published model versions with an atomic manifest.
//!
//! Layout:
//!
//! ```text
//! registry/
//!   MANIFEST              # "rrc-model-registry v1" + "<version> <filename>" lines
//!   model-000001.rrcm
//!   model-000002.rrcm
//! ```
//!
//! Publishing is a two-step commit: the model file lands first (atomic
//! temp + rename), then the manifest is rewritten to name it. A reader
//! that wins a race therefore either sees the old manifest (old model,
//! still on disk) or the new manifest (new model, already durable) —
//! never a manifest pointing at a half-written file. Old versions beyond
//! the retention window are pruned only after the manifest stops naming
//! them. `rrc-serve` polls [`ModelRegistry::latest`] to drive hot-swap.

use crate::error::{corrupt, StoreError};
use crate::format::commit;
use crate::model::{encode_model, KIND_TSPPR};
use rrc_core::TsPprModel;
use rrc_obs::global;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "rrc-model-registry v1";

/// Default grace period before an unreferenced model file is deleted.
///
/// A watcher that read the previous manifest may still be mid-load of a
/// file the next publish just pruned; under a continuous trainer's
/// publish cadence that race goes from theoretical to routine. Files are
/// dropped from the manifest immediately but stay on disk until they have
/// been unreferenced for this long — far longer than any model load takes.
pub const DEFAULT_PRUNE_GRACE: Duration = Duration::from_secs(5);

/// One published version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Monotonically increasing version number.
    pub version: u64,
    /// File name inside the registry directory.
    pub filename: String,
}

/// Handle on a registry directory.
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    keep: usize,
    entries: Vec<RegistryEntry>,
    prune_grace: Duration,
    /// Files the manifest no longer names, awaiting deletion once their
    /// grace period expires (newest publish first sweeps, then appends).
    pending_prune: Vec<(String, Instant)>,
}

impl ModelRegistry {
    /// Create the directory (and an empty manifest) if needed, retaining
    /// the last `keep` versions on publish. `keep` is clamped to ≥ 1.
    /// Stale model files a previous run unreferenced but never deleted
    /// are swept immediately (they have been unreferenced for at least a
    /// whole process lifetime).
    pub fn create(dir: impl Into<PathBuf>, keep: usize) -> Result<ModelRegistry, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut reg = if dir.join(MANIFEST).exists() {
            ModelRegistry::open(&dir)?
        } else {
            let reg = ModelRegistry {
                dir,
                keep: 1,
                entries: Vec::new(),
                prune_grace: DEFAULT_PRUNE_GRACE,
                pending_prune: Vec::new(),
            };
            reg.write_manifest()?;
            reg
        };
        reg.keep = keep.max(1);
        reg.sweep_stale_files();
        Ok(reg)
    }

    /// Replace the prune grace period (builder style). `Duration::ZERO`
    /// restores the historical delete-on-publish behavior.
    pub fn with_prune_grace(mut self, grace: Duration) -> Self {
        self.prune_grace = grace;
        self
    }

    /// Open an existing registry (read + parse the manifest).
    pub fn open(dir: impl Into<PathBuf>) -> Result<ModelRegistry, StoreError> {
        let dir = dir.into();
        let text = fs::read_to_string(dir.join(MANIFEST))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            other => {
                return Err(corrupt(
                    MANIFEST,
                    format!("bad header {other:?} (expected {MANIFEST_HEADER:?})"),
                ))
            }
        }
        let mut entries: Vec<RegistryEntry> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (version, filename) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(MANIFEST, format!("malformed entry {line:?}")))?;
            let version: u64 = version
                .parse()
                .map_err(|_| corrupt(MANIFEST, format!("bad version in entry {line:?}")))?;
            if filename.contains('/') || filename.contains("..") {
                return Err(corrupt(
                    MANIFEST,
                    format!("entry {line:?} names a path outside the registry"),
                ));
            }
            if let Some(last) = entries.last() {
                if version <= last.version {
                    return Err(corrupt(
                        MANIFEST,
                        format!(
                            "versions must be strictly increasing ({} then {version})",
                            last.version
                        ),
                    ));
                }
            }
            entries.push(RegistryEntry {
                version,
                filename: filename.to_string(),
            });
        }
        Ok(ModelRegistry {
            dir,
            keep: entries.len().max(1),
            entries,
            prune_grace: DEFAULT_PRUNE_GRACE,
            pending_prune: Vec::new(),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Published versions, oldest first.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// The newest version and the full path of its model file.
    pub fn latest(&self) -> Option<(u64, PathBuf)> {
        self.entries
            .last()
            .map(|e| (e.version, self.dir.join(&e.filename)))
    }

    /// Publish a model: write its file, commit the manifest naming it,
    /// prune beyond the retention window. Returns the new version.
    pub fn publish(
        &mut self,
        model: &TsPprModel,
        extra_meta: &[(String, String)],
    ) -> Result<u64, StoreError> {
        let version = self.entries.last().map_or(1, |e| e.version + 1);
        let mut meta = vec![
            ("registry_version".to_string(), version.to_string()),
            ("kind".to_string(), KIND_TSPPR.to_string()),
        ];
        meta.extend(
            extra_meta
                .iter()
                .filter(|(k, _)| k != "kind" && k != "registry_version")
                .cloned(),
        );
        let filename = format!("model-{version:06}.rrcm");
        commit(self.dir.join(&filename), &encode_model(model, &meta))?;
        self.entries.push(RegistryEntry { version, filename });
        let pruned: Vec<RegistryEntry> = if self.entries.len() > self.keep {
            self.entries
                .drain(..self.entries.len() - self.keep)
                .collect()
        } else {
            Vec::new()
        };
        self.write_manifest()?;
        // Dropped from the manifest now, deleted from disk only after the
        // grace period: a watcher that read the previous manifest may
        // still be mid-load of exactly these files, and under a
        // continuous publish cadence that window is hit routinely.
        let now = Instant::now();
        for old in pruned {
            self.pending_prune.push((old.filename, now));
        }
        self.sweep_expired();
        global().counter("store_models_published_total").inc();
        Ok(version)
    }

    /// Files dropped from the manifest but still on disk awaiting their
    /// grace period (oldest first).
    pub fn pending_prune(&self) -> Vec<&str> {
        self.pending_prune.iter().map(|(f, _)| f.as_str()).collect()
    }

    /// Delete pending files whose grace period has expired (best-effort:
    /// a missing file is simply forgotten).
    pub fn sweep_expired(&mut self) {
        let grace = self.prune_grace;
        let dir = self.dir.clone();
        self.pending_prune.retain(|(filename, since)| {
            if since.elapsed() < grace {
                return true;
            }
            fs::remove_file(dir.join(filename)).ok();
            false
        });
    }

    /// Delete every model file in the directory the manifest does not
    /// name — leftovers from a previous process that exited before its
    /// grace timers fired. Only called from [`ModelRegistry::create`]
    /// (the publisher side), where "unreferenced" means unreferenced for
    /// at least a process lifetime.
    fn sweep_stale_files(&self) {
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in listing.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with("model-") && name.ends_with(".rrcm")) {
                continue;
            }
            if self.entries.iter().any(|e| e.filename == name) {
                continue;
            }
            fs::remove_file(entry.path()).ok();
        }
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for e in &self.entries {
            text.push_str(&format!("{} {}\n", e.version, e.filename));
        }
        commit(self.dir.join(MANIFEST), text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::load_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> TsPprModel {
        TsPprModel::init(&mut StdRng::seed_from_u64(seed), 3, 4, 2, 2, 0.1, 0.1)
    }

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rrc_store_registry_{label}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn publish_assigns_monotone_versions_and_prunes() {
        let dir = temp_dir("prune");
        let mut reg = ModelRegistry::create(&dir, 2)
            .unwrap()
            .with_prune_grace(Duration::ZERO);
        for seed in 0..4 {
            reg.publish(&model(seed), &[]).unwrap();
        }
        assert_eq!(
            reg.entries().iter().map(|e| e.version).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(!dir.join("model-000001.rrcm").exists(), "pruned");
        assert!(dir.join("model-000004.rrcm").exists());

        let reopened = ModelRegistry::open(&dir).unwrap();
        let (version, path) = reopened.latest().unwrap();
        assert_eq!(version, 4);
        assert_eq!(load_model(path).unwrap(), model(3));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn published_meta_carries_version_and_kind() {
        let dir = temp_dir("meta");
        let mut reg = ModelRegistry::create(&dir, 3).unwrap();
        reg.publish(&model(7), &[("note".to_string(), "hello".to_string())])
            .unwrap();
        let (_, path) = reg.latest().unwrap();
        let file = crate::format::StoreFile::open(path).unwrap();
        assert_eq!(
            file.meta_value("registry_version").unwrap().as_deref(),
            Some("1")
        );
        assert_eq!(
            file.meta_value("kind").unwrap().as_deref(),
            Some(KIND_TSPPR)
        );
        assert_eq!(file.meta_value("note").unwrap().as_deref(), Some("hello"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = temp_dir("badmanifest");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST), "something else\n1 model-000001.rrcm\n").unwrap();
        let err = ModelRegistry::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::write(
            dir.join(MANIFEST),
            format!("{MANIFEST_HEADER}\n2 a.rrcm\n1 b.rrcm\n"),
        )
        .unwrap();
        let err = ModelRegistry::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::write(
            dir.join(MANIFEST),
            format!("{MANIFEST_HEADER}\n1 ../escape.rrcm\n"),
        )
        .unwrap();
        let err = ModelRegistry::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_defers_within_grace_so_inflight_loads_survive() {
        // A watcher that read the old manifest must be able to finish
        // loading the file it points at even while a publish storm prunes
        // far past it.
        let dir = temp_dir("grace");
        let mut reg = ModelRegistry::create(&dir, 1).unwrap(); // default grace
        reg.publish(&model(0), &[]).unwrap();
        let (v1, old_path) = reg.latest().unwrap();
        assert_eq!(v1, 1);
        // Simulated in-flight reader: grabbed the manifest, not yet loaded.
        for seed in 1..6 {
            reg.publish(&model(seed), &[]).unwrap();
        }
        // The manifest no longer names version 1...
        assert!(reg.entries().iter().all(|e| e.version != 1));
        assert_eq!(reg.pending_prune().len(), 5);
        // ...but its file is still loadable: the late reader wins.
        assert_eq!(load_model(&old_path).unwrap(), model(0));

        // With the grace collapsed to zero the next sweep deletes it.
        let mut reg = reg.with_prune_grace(Duration::ZERO);
        reg.sweep_expired();
        assert!(reg.pending_prune().is_empty());
        assert!(!old_path.exists(), "expired file swept");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_sweeps_files_a_previous_run_left_behind() {
        let dir = temp_dir("stalesweep");
        let mut reg = ModelRegistry::create(&dir, 1).unwrap();
        reg.publish(&model(0), &[]).unwrap();
        reg.publish(&model(1), &[]).unwrap();
        drop(reg); // exits before the grace timer fires
        assert!(dir.join("model-000001.rrcm").exists(), "still on disk");
        let reg = ModelRegistry::create(&dir, 1).unwrap();
        assert!(
            !dir.join("model-000001.rrcm").exists(),
            "stale unreferenced file swept at create"
        );
        assert!(dir.join("model-000002.rrcm").exists(), "live file kept");
        assert_eq!(reg.latest().unwrap().0, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_on_existing_registry_keeps_history() {
        let dir = temp_dir("reopen");
        let mut reg = ModelRegistry::create(&dir, 5).unwrap();
        reg.publish(&model(1), &[]).unwrap();
        drop(reg);
        let mut reg = ModelRegistry::create(&dir, 5).unwrap();
        let v = reg.publish(&model(2), &[]).unwrap();
        assert_eq!(v, 2);
        assert_eq!(reg.entries().len(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}
