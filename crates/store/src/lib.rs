//! **rrc-store** — durable model and checkpoint storage.
//!
//! Everything the workspace writes to disk that must survive a crash goes
//! through this crate:
//!
//! * [`format`] — the versioned little-endian container: a fixed header
//!   (magic, version, flags) followed by length-prefixed, CRC32-checked
//!   sections, each 8-byte aligned so the reader can serve `&[f64]` views
//!   straight out of one read buffer. Writes are atomic
//!   (temp + fsync + rename); torn or corrupted files are rejected with a
//!   typed [`StoreError`], never returned as garbage parameters.
//! * [`model`] — save/load for [`rrc_core::TsPprModel`] plus the zero-copy
//!   [`ModelView`]; [`fpmc`] does the same for the FPMC baseline.
//! * [`checkpoint`] — serialization for [`rrc_core::TrainCheckpoint`]:
//!   model, per-shard RNG streams, step counter and convergence history,
//!   so a resumed run is bit-identical to an uninterrupted one.
//! * [`registry`] — a manifest-backed directory of monotonically
//!   versioned model files that `rrc-serve` watches for hot-swaps;
//!   pruned files linger past a grace period so a watcher's in-flight
//!   load never races a high-frequency publisher.
//! * [`stream`] — serialization for the continuous trainer's
//!   [`StreamCheckpoint`]: model, per-shard RNG streams, *and* every
//!   user's live window, so a killed stream trainer resumes
//!   bit-identically.
//! * [`segment`] — the `USEG1` keyed record log backing the user-state
//!   tier's cold spill: same framing and CRC discipline as [`format`],
//!   but append-oriented with last-writer-wins keys and atomic compaction.
//! * [`text`] — the legacy line-oriented text format, kept as a
//!   human-readable debug export (moved here from `rrc-core`).
//!
//! Instrumented with `rrc-obs`: `store_bytes_written_total`,
//! `store.save`/`store.load` spans, and a checkpoint-interval histogram.

// The zero-copy reader hands out `&[f64]` views of the raw read buffer and
// the writer memcpys `f64` slices directly; both are only correct when the
// in-memory byte order matches the (little-endian) file format.
#[cfg(target_endian = "big")]
compile_error!("rrc-store's zero-copy reader requires a little-endian target; see DESIGN.md");

mod crc32;
mod error;

pub mod checkpoint;
pub mod format;
pub mod fpmc;
pub mod model;
pub mod registry;
pub mod segment;
pub mod stream;
pub mod text;

pub use checkpoint::{load_checkpoint, save_checkpoint, Checkpointer};
pub use crc32::crc32;
pub use error::StoreError;
pub use format::{StoreFile, Tag, Writer};
pub use fpmc::{load_fpmc, save_fpmc};
pub use model::{load_model, save_model, ModelView, META_FINGERPRINT};
pub use registry::ModelRegistry;
pub use segment::SegmentLog;
pub use stream::{
    encode_stream_checkpoint, load_stream_checkpoint, save_stream_checkpoint, PrequentialCounters,
    StreamCheckpoint,
};
