//! FPMC baseline save/load: the four factor matrices of the
//! pairwise-interaction model in one container (`kind = "fpmc-model"`,
//! `DIMS = [K, users, items, 0]`, sections `FPUI`/`FPIU`/`FPIL`/`FPLI`).

use crate::error::{corrupt, schema, StoreError};
use crate::format::{commit, encode_meta, StoreFile, Tag, Writer};
use crate::model::check_matrix_len;
use rrc_baselines::FpmcModel;
use rrc_linalg::DMatrix;
use std::path::Path;

/// `META` kind for FPMC model files.
pub const KIND_FPMC: &str = "fpmc-model";

/// Serialize an FPMC model into container bytes.
pub fn encode_fpmc(model: &FpmcModel, extra_meta: &[(String, String)]) -> Vec<u8> {
    let mut meta = vec![("kind".to_string(), KIND_FPMC.to_string())];
    meta.extend(extra_meta.iter().cloned());
    let (ui, iu, il, li) = model.parts();
    let mut w = Writer::new();
    w.section(Tag::META, &encode_meta(&meta));
    w.u64_section(
        Tag::DIMS,
        &[
            model.k() as u64,
            model.num_users() as u64,
            model.num_items() as u64,
            0,
        ],
    );
    for (tag, m) in [
        (Tag::FPUI, ui),
        (Tag::FPIU, iu),
        (Tag::FPIL, il),
        (Tag::FPLI, li),
    ] {
        w.f64_section(tag, m.as_slice());
    }
    w.finish()
}

/// Atomically save an FPMC model. Returns the file size in bytes.
pub fn save_fpmc(
    model: &FpmcModel,
    extra_meta: &[(String, String)],
    path: impl AsRef<Path>,
) -> Result<u64, StoreError> {
    let bytes = encode_fpmc(model, extra_meta);
    commit(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Load and fully validate an FPMC model.
pub fn load_fpmc(path: impl AsRef<Path>) -> Result<FpmcModel, StoreError> {
    decode_fpmc(&StoreFile::open(path)?)
}

/// Decode a parsed container as an FPMC model.
pub fn decode_fpmc(file: &StoreFile) -> Result<FpmcModel, StoreError> {
    match file.meta_value("kind")? {
        Some(kind) if kind == KIND_FPMC => {}
        Some(kind) => {
            return Err(schema(format!(
                "expected a {KIND_FPMC} file, found {kind:?}"
            )))
        }
        None => return Err(schema(format!("no kind metadata; expected {KIND_FPMC}"))),
    }
    let dims = file.u64_section(Tag::DIMS)?;
    let &[k, users, items, _reserved] = dims else {
        return Err(corrupt(
            Tag::DIMS.name(),
            format!("expected 4 dimensions, found {}", dims.len()),
        ));
    };
    let as_count = |v: u64, what: &str| -> Result<usize, StoreError> {
        usize::try_from(v)
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| schema(format!("implausible {what} count {v}")))
    };
    let (k, users, items) = (
        as_count(k, "K")?,
        as_count(users, "user")?,
        as_count(items, "item")?,
    );
    check_matrix_len(file, Tag::FPUI, users, k)?;
    for tag in [Tag::FPIU, Tag::FPIL, Tag::FPLI] {
        check_matrix_len(file, tag, items, k)?;
    }
    let mat = |tag: Tag, rows: usize| -> DMatrix {
        DMatrix::from_vec(
            rows,
            k,
            file.f64_section(tag).expect("revalidation").to_vec(),
        )
    };
    Ok(FpmcModel::from_parts(
        k,
        mat(Tag::FPUI, users),
        mat(Tag::FPIU, items),
        mat(Tag::FPIL, items),
        mat(Tag::FPLI, items),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> FpmcModel {
        FpmcModel::init(&mut StdRng::seed_from_u64(11), 5, 7, 4)
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let dir = std::env::temp_dir().join(format!("rrc_store_fpmc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fpmc.rrcm");
        save_fpmc(&m, &[("k".into(), "4".into())], &path).unwrap();
        assert_eq!(load_fpmc(&path).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tsppr_file_is_rejected_as_fpmc() {
        let ts = rrc_core::TsPprModel::init(&mut StdRng::seed_from_u64(3), 3, 4, 2, 2, 0.1, 0.1);
        let bytes = crate::model::encode_model(&ts, &[]);
        let err = decode_fpmc(&StoreFile::from_bytes(&bytes).unwrap()).unwrap_err();
        assert!(matches!(err, StoreError::Schema { .. }), "{err}");
    }
}
