//! Human-readable debug export of a TS-PPR model.
//!
//! Moved here from `rrc-core`'s old `persist` module and rebased onto the
//! store's error type. The line-oriented format is unchanged:
//!
//! ```text
//! tsppr-model v1
//! k 40
//! f 4
//! users 2
//! items 3
//! U
//! <one whitespace-separated row per user>
//! V
//! <one row per item>
//! A 0
//! <K rows of F values>
//! A 1
//! ...
//! ```
//!
//! Floats are written with full round-trip precision, so text → binary →
//! text survives bit-for-bit. The binary container ([`crate::model`]) is
//! the production format; this one exists for eyeballing and diffing.

use crate::error::{corrupt, StoreError};
use rrc_core::TsPprModel;
use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, UserId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

fn format_err(msg: impl Into<String>) -> StoreError {
    corrupt("text", msg)
}

/// Serialise a model to any writer.
pub fn save<W: Write>(model: &TsPprModel, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "tsppr-model v1")?;
    writeln!(w, "k {}", model.k())?;
    writeln!(w, "f {}", model.f_dim())?;
    writeln!(w, "users {}", model.num_users())?;
    writeln!(w, "items {}", model.num_items())?;
    writeln!(w, "U")?;
    for u in 0..model.num_users() {
        write_row(&mut w, model.user_factor(UserId(u as u32)))?;
    }
    writeln!(w, "V")?;
    for v in 0..model.num_items() {
        write_row(&mut w, model.item_factor(ItemId(v as u32)))?;
    }
    for u in 0..model.num_users() {
        writeln!(w, "A {u}")?;
        let a = model.transform(UserId(u as u32));
        for r in 0..a.rows() {
            write_row(&mut w, a.row(r))?;
        }
    }
    w.flush()
}

fn write_row<W: Write>(w: &mut W, row: &[f64]) -> io::Result<()> {
    for (i, x) in row.iter().enumerate() {
        if i > 0 {
            write!(w, " ")?;
        }
        // `{:?}` on f64 produces the shortest string that round-trips.
        write!(w, "{x:?}")?;
    }
    writeln!(w)
}

/// Deserialise a model from any reader.
pub fn load<R: BufRead>(reader: R) -> Result<TsPprModel, StoreError> {
    let mut lines = reader.lines();
    let mut next = |what: &str| -> Result<String, StoreError> {
        lines
            .next()
            .ok_or_else(|| format_err(format!("unexpected EOF, wanted {what}")))?
            .map_err(StoreError::Io)
    };

    let header = next("header")?;
    if header.trim() != "tsppr-model v1" {
        return Err(format_err(format!("bad header {header:?}")));
    }
    let k = parse_kv(&next("k")?, "k")?;
    let f = parse_kv(&next("f")?, "f")?;
    let users = parse_kv(&next("users")?, "users")?;
    let items = parse_kv(&next("items")?, "items")?;

    expect_tag(&next("U")?, "U")?;
    let u = read_matrix(&mut next, users, k, "U")?;
    expect_tag(&next("V")?, "V")?;
    let v = read_matrix(&mut next, items, k, "V")?;

    let mut a = Vec::with_capacity(users);
    for ui in 0..users {
        let tag = next("A tag")?;
        if tag.trim() != format!("A {ui}") {
            return Err(format_err(format!("expected 'A {ui}', found {tag:?}")));
        }
        a.push(read_matrix(&mut next, k, f, "A")?);
    }
    Ok(TsPprModel::from_parts(k, f, u, v, a))
}

fn parse_kv(line: &str, key: &str) -> Result<usize, StoreError> {
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(k), Some(v), None) if k == key => v
            .parse()
            .map_err(|_| format_err(format!("bad value in {line:?}"))),
        _ => Err(format_err(format!("expected '{key} <n>', found {line:?}"))),
    }
}

fn expect_tag(line: &str, tag: &str) -> Result<(), StoreError> {
    if line.trim() == tag {
        Ok(())
    } else {
        Err(format_err(format!("expected {tag:?}, found {line:?}")))
    }
}

fn read_matrix(
    next: &mut impl FnMut(&str) -> Result<String, StoreError>,
    rows: usize,
    cols: usize,
    what: &str,
) -> Result<DMatrix, StoreError> {
    let mut data = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let line = next(what)?;
        let mut count = 0;
        for tok in line.split_whitespace() {
            let x: f64 = tok
                .parse()
                .map_err(|_| format_err(format!("bad float {tok:?} in {what} row {r}")))?;
            data.push(x);
            count += 1;
        }
        if count != cols {
            return Err(format_err(format!(
                "{what} row {r} has {count} values, expected {cols}"
            )));
        }
    }
    Ok(DMatrix::from_vec(rows, cols, data))
}

/// Save to a file path.
pub fn save_to_path<P: AsRef<Path>>(model: &TsPprModel, path: P) -> io::Result<()> {
    save(model, File::create(path)?)
}

/// Load from a file path.
pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<TsPprModel, StoreError> {
    load(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> TsPprModel {
        TsPprModel::init(&mut StdRng::seed_from_u64(4), 3, 5, 4, 2, 0.05, 0.01)
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        assert_eq!(m, loaded);
    }

    #[test]
    fn text_to_binary_round_trip_is_exact() {
        // The satellite check: text save → parse → binary save → binary
        // load lands on the identical parameters.
        let m = model();
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        let reparsed = load(buf.as_slice()).unwrap();
        let binary = crate::model::encode_model(&reparsed, &[]);
        let reloaded = crate::model::ModelView::from_bytes(&binary)
            .unwrap()
            .to_model();
        assert_eq!(reloaded, m);
    }

    #[test]
    fn bad_header_rejected() {
        let err = load("not-a-model\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let m = model();
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        let cut = buf.len() / 2;
        let err = load(&buf[..cut]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn corrupted_float_rejected() {
        let m = model();
        let mut buf = Vec::new();
        save(&m, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen("0.", "0.x", 1);
        let err = load(text.as_bytes()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("rrc_store_text_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let m = model();
        save_to_path(&m, &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        assert_eq!(m, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }
}
