//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every section payload. The implementation moved to
//! [`rrc_obs::crc32`] when the forensics flight-recorder bundle adopted
//! the same footer checksum; this module keeps the store-local path and
//! the store's own regression vectors.

pub use rrc_obs::crc32::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"abcdefgh".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
