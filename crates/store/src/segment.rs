//! `USEG1` — an append-only keyed record log for spilled per-user state.
//!
//! The user-state tier (`rrc-ustate`) evicts cold users from shard RAM and
//! parks their serialized state here. The file reuses the `RRCSTOR1`
//! envelope — same 16-byte header, and every record is framed exactly like
//! a container section (tag + reserved + length, payload, zero padding to
//! 8 bytes, CRC-32, zero trailer) — but unlike [`StoreFile`] the same tag
//! repeats: each `USEG` record holds one user's latest spill, and a later
//! record for the same key supersedes the earlier one.
//!
//! ```text
//!      0     8  magic  "RRCSTOR1"
//!      8     4  format version (u32 LE, currently 1)
//!     12     4  flags (u32 LE, must be 0)
//!     16     …  USEG records, back to back:
//!                 tag "USEG" · reserved 0 · payload len (u64 LE)
//!                 payload = u32 key · u32 reserved · opaque data
//!                 zero pad to 8 · CRC-32 of payload · u32 zero
//! ```
//!
//! Durability contract: appends are buffered writes (a spill is a cache
//! displacement, not a checkpoint), but **every** open re-validates the
//! whole file — magic, each frame, each CRC — and [`SegmentLog::get`]
//! re-checks the record CRC before returning bytes, so a torn or corrupted
//! file surfaces as a typed [`StoreError`], never as garbage user state.
//! Space reclamation goes through [`SegmentLog::replace_all`], which
//! rewrites the live set and swaps it in with the same atomic
//! temp-file-then-rename [`commit`] the model store uses.

use crate::crc32::crc32;
use crate::error::{corrupt, StoreError};
use crate::format::{commit, Tag, FORMAT_VERSION, MAGIC};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// The record tag: one spilled user's state.
pub const USEG: Tag = Tag(*b"USEG");

const HEADER_LEN: usize = 16;
const FRAME_HEADER_LEN: usize = 16;
const FRAME_TRAILER_LEN: usize = 8;
/// `u32 key + u32 reserved` prefix inside every record payload.
const KEY_PREFIX_LEN: usize = 8;

/// Where one live record's payload sits in the file.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Offset of the payload (just past the frame header).
    payload_start: usize,
    /// Unpadded payload length (including the 8-byte key prefix).
    payload_len: usize,
}

fn framed_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len.next_multiple_of(8) + FRAME_TRAILER_LEN
}

/// A keyed spill log: `append` supersedes, `get` re-verifies, `replace_all`
/// compacts atomically. One instance owns one file; shards each keep their
/// own.
#[derive(Debug)]
pub struct SegmentLog {
    path: PathBuf,
    file: File,
    index: HashMap<u32, Slot>,
    file_len: usize,
    /// Framed bytes of the records the index still points at.
    live_bytes: usize,
    /// Framed bytes of superseded or removed records.
    dead_bytes: usize,
    remove_on_drop: bool,
}

impl SegmentLog {
    /// Open (or create) the segment at `path`. An existing file is scanned
    /// and verified end to end; any structural damage — bad magic, torn
    /// frame, checksum mismatch — is a typed error, and no index is built
    /// over a damaged file.
    pub fn open(path: impl AsRef<Path>) -> Result<SegmentLog, StoreError> {
        let path = path.as_ref().to_path_buf();
        let exists = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if !exists || file.metadata()?.len() == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            file.write_all(&header)?;
            file.flush()?;
            return Ok(SegmentLog {
                path,
                file,
                index: HashMap::new(),
                file_len: HEADER_LEN,
                live_bytes: 0,
                dead_bytes: 0,
                remove_on_drop: false,
            });
        }
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let (index, live_bytes, dead_bytes) = scan(&bytes)?;
        Ok(SegmentLog {
            path,
            file,
            index,
            file_len: bytes.len(),
            live_bytes,
            dead_bytes,
            remove_on_drop: false,
        })
    }

    /// Delete the backing file when this log is dropped. Engines use this
    /// for ephemeral spill files that have no meaning past the process.
    pub fn set_remove_on_drop(&mut self, remove: bool) {
        self.remove_on_drop = remove;
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append (or supersede) the record for `key`.
    pub fn append(&mut self, key: u32, data: &[u8]) -> Result<(), StoreError> {
        let payload_len = KEY_PREFIX_LEN + data.len();
        let mut rec = Vec::with_capacity(framed_len(payload_len));
        rec.extend_from_slice(&USEG.0);
        rec.extend_from_slice(&0u32.to_le_bytes());
        rec.extend_from_slice(&(payload_len as u64).to_le_bytes());
        let payload_at = rec.len();
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(&0u32.to_le_bytes());
        rec.extend_from_slice(data);
        let crc = crc32(&rec[payload_at..]);
        let pad = payload_len.next_multiple_of(8) - payload_len;
        rec.extend(std::iter::repeat_n(0u8, pad));
        rec.extend_from_slice(&crc.to_le_bytes());
        rec.extend_from_slice(&0u32.to_le_bytes());

        self.file.seek(SeekFrom::Start(self.file_len as u64))?;
        self.file.write_all(&rec)?;
        self.file.flush()?;
        let slot = Slot {
            payload_start: self.file_len + FRAME_HEADER_LEN,
            payload_len,
        };
        if let Some(old) = self.index.insert(key, slot) {
            let old_framed = framed_len(old.payload_len);
            self.live_bytes -= old_framed;
            self.dead_bytes += old_framed;
        }
        self.file_len += rec.len();
        self.live_bytes += rec.len();
        Ok(())
    }

    /// Whether a live record exists for `key`.
    pub fn contains(&self, key: u32) -> bool {
        self.index.contains_key(&key)
    }

    /// Read the record for `key`, re-verifying its checksum. Returns the
    /// opaque data (without the key prefix), or `None` when absent.
    pub fn get(&mut self, key: u32) -> Result<Option<Vec<u8>>, StoreError> {
        let slot = match self.index.get(&key) {
            Some(s) => *s,
            None => return Ok(None),
        };
        let padded = slot.payload_len.next_multiple_of(8);
        let mut buf = vec![0u8; padded + 4];
        self.file.seek(SeekFrom::Start(slot.payload_start as u64))?;
        self.file.read_exact(&mut buf)?;
        let payload = &buf[..slot.payload_len];
        let stored = u32::from_le_bytes(buf[padded..padded + 4].try_into().unwrap());
        let actual = crc32(payload);
        if actual != stored {
            return Err(corrupt(
                USEG.name(),
                format!("record {key}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            ));
        }
        let stored_key = u32::from_le_bytes(payload[..4].try_into().unwrap());
        if stored_key != key {
            return Err(corrupt(
                USEG.name(),
                format!("record key mismatch (index {key}, stored {stored_key})"),
            ));
        }
        Ok(Some(payload[KEY_PREFIX_LEN..].to_vec()))
    }

    /// Drop `key` from the live set (the bytes become garbage until the
    /// next [`replace_all`](Self::replace_all)).
    pub fn remove(&mut self, key: u32) {
        if let Some(old) = self.index.remove(&key) {
            let framed = framed_len(old.payload_len);
            self.live_bytes -= framed;
            self.dead_bytes += framed;
        }
    }

    /// All live keys, sorted.
    pub fn keys(&self) -> Vec<u32> {
        let mut ks: Vec<u32> = self.index.keys().copied().collect();
        ks.sort_unstable();
        ks
    }

    /// Read every live record, sorted by key.
    pub fn entries(&mut self) -> Result<Vec<(u32, Vec<u8>)>, StoreError> {
        let mut out = Vec::with_capacity(self.index.len());
        for key in self.keys() {
            let data = self.get(key)?.expect("live key vanished");
            out.push((key, data));
        }
        Ok(out)
    }

    /// Atomically replace the whole log with exactly `entries` (compaction
    /// and bulk rewrite in one step): serialize header + records to a fresh
    /// buffer, [`commit`] it over the file, reopen, and rebuild the index.
    pub fn replace_all(&mut self, entries: &[(u32, Vec<u8>)]) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(
            HEADER_LEN
                + entries
                    .iter()
                    .map(|(_, d)| framed_len(KEY_PREFIX_LEN + d.len()))
                    .sum::<usize>(),
        );
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut index = HashMap::with_capacity(entries.len());
        let mut live_bytes = 0usize;
        for (key, data) in entries {
            let payload_len = KEY_PREFIX_LEN + data.len();
            let start = buf.len();
            buf.extend_from_slice(&USEG.0);
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&(payload_len as u64).to_le_bytes());
            let payload_at = buf.len();
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(data);
            let crc = crc32(&buf[payload_at..]);
            let pad = payload_len.next_multiple_of(8) - payload_len;
            buf.extend(std::iter::repeat_n(0u8, pad));
            buf.extend_from_slice(&crc.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            if index
                .insert(
                    *key,
                    Slot {
                        payload_start: start + FRAME_HEADER_LEN,
                        payload_len,
                    },
                )
                .is_some()
            {
                return Err(corrupt(USEG.name(), format!("duplicate key {key}")));
            }
            live_bytes += framed_len(payload_len);
        }
        commit(&self.path, &buf)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file_len = buf.len();
        self.index = index;
        self.live_bytes = live_bytes;
        self.dead_bytes = 0;
        Ok(())
    }

    /// Compact when at least half the file is garbage (and enough garbage
    /// has accumulated to be worth an atomic rewrite). Returns whether a
    /// compaction ran.
    pub fn maybe_compact(&mut self) -> Result<bool, StoreError> {
        const MIN_DEAD: usize = 64 * 1024;
        if self.dead_bytes < MIN_DEAD || self.dead_bytes < self.live_bytes {
            return Ok(false);
        }
        let entries = self.entries()?;
        self.replace_all(&entries)?;
        Ok(true)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total file size in bytes (header + live + dead records).
    pub fn file_bytes(&self) -> usize {
        self.file_len
    }

    /// Framed bytes of the live records.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Framed bytes of superseded/removed records awaiting compaction.
    pub fn dead_bytes(&self) -> usize {
        self.dead_bytes
    }
}

impl Drop for SegmentLog {
    fn drop(&mut self) {
        if self.remove_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Validate the whole file and build the live index (last record per key
/// wins). Shares [`StoreFile`](crate::StoreFile)'s frame rules exactly.
fn scan(b: &[u8]) -> Result<(HashMap<u32, Slot>, usize, usize), StoreError> {
    if b.len() < HEADER_LEN {
        return Err(corrupt("header", "file shorter than the fixed header"));
    }
    if b[..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(b[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let flags = u32::from_le_bytes(b[12..16].try_into().unwrap());
    if flags != 0 {
        return Err(corrupt("header", format!("unsupported flags {flags:#x}")));
    }
    let mut index: HashMap<u32, Slot> = HashMap::new();
    let mut live = 0usize;
    let mut dead = 0usize;
    let mut off = HEADER_LEN;
    while off < b.len() {
        if b.len() - off < FRAME_HEADER_LEN {
            return Err(corrupt("frame", "truncated record header"));
        }
        let tag = Tag(b[off..off + 4].try_into().unwrap());
        if tag != USEG {
            return Err(corrupt(tag.name(), "unexpected record tag"));
        }
        let reserved = u32::from_le_bytes(b[off + 4..off + 8].try_into().unwrap());
        if reserved != 0 {
            return Err(corrupt(tag.name(), "nonzero reserved field"));
        }
        let len64 = u64::from_le_bytes(b[off + 8..off + 16].try_into().unwrap());
        let len = usize::try_from(len64)
            .ok()
            .filter(|l| l.checked_next_multiple_of(8).is_some())
            .ok_or_else(|| corrupt(tag.name(), "implausible record length"))?;
        if len < KEY_PREFIX_LEN {
            return Err(corrupt(tag.name(), "record shorter than its key prefix"));
        }
        let start = off + FRAME_HEADER_LEN;
        let padded = len.next_multiple_of(8);
        let after = padded
            .checked_add(FRAME_TRAILER_LEN)
            .and_then(|n| start.checked_add(n))
            .filter(|&end| end <= b.len())
            .ok_or_else(|| corrupt(tag.name(), "record extends past end of file"))?;
        let payload = &b[start..start + len];
        if b[start + len..start + padded].iter().any(|&p| p != 0) {
            return Err(corrupt(tag.name(), "nonzero alignment padding"));
        }
        let stored = u32::from_le_bytes(b[start + padded..start + padded + 4].try_into().unwrap());
        let trailer = u32::from_le_bytes(b[start + padded + 4..after].try_into().unwrap());
        if trailer != 0 {
            return Err(corrupt(tag.name(), "nonzero trailer padding"));
        }
        let actual = crc32(payload);
        if actual != stored {
            return Err(corrupt(
                tag.name(),
                format!("checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            ));
        }
        let key_reserved = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        if key_reserved != 0 {
            return Err(corrupt(tag.name(), "nonzero key-prefix reserved field"));
        }
        let key = u32::from_le_bytes(payload[..4].try_into().unwrap());
        let framed = framed_len(len);
        if let Some(old) = index.insert(
            key,
            Slot {
                payload_start: start,
                payload_len: len,
            },
        ) {
            let old_framed = framed_len(old.payload_len);
            live -= old_framed;
            dead += old_framed;
        }
        live += framed;
        off = start + padded + FRAME_TRAILER_LEN;
    }
    Ok((index, live, dead))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rrc_useg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_get_supersede_round_trip() {
        let path = tmp("round_trip.useg");
        std::fs::remove_file(&path).ok();
        let mut log = SegmentLog::open(&path).unwrap();
        assert!(log.is_empty());
        log.append(7, b"first").unwrap();
        log.append(3, b"three").unwrap();
        assert_eq!(log.get(7).unwrap().as_deref(), Some(&b"first"[..]));
        log.append(7, b"second, longer payload").unwrap();
        assert_eq!(
            log.get(7).unwrap().as_deref(),
            Some(&b"second, longer payload"[..])
        );
        assert_eq!(log.len(), 2);
        assert!(log.dead_bytes() > 0);
        assert_eq!(log.keys(), vec![3, 7]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_rebuilds_last_writer_wins_index() {
        let path = tmp("reopen.useg");
        std::fs::remove_file(&path).ok();
        {
            let mut log = SegmentLog::open(&path).unwrap();
            log.append(1, b"old").unwrap();
            log.append(2, b"two").unwrap();
            log.append(1, b"new").unwrap();
        }
        let mut log = SegmentLog::open(&path).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(1).unwrap().as_deref(), Some(&b"new"[..]));
        assert_eq!(log.get(2).unwrap().as_deref(), Some(&b"two"[..]));
        assert!(log.dead_bytes() > 0, "superseded record counted dead");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replace_all_compacts_atomically() {
        let path = tmp("compact.useg");
        std::fs::remove_file(&path).ok();
        let mut log = SegmentLog::open(&path).unwrap();
        for i in 0..20u32 {
            log.append(i % 4, format!("value {i}").as_bytes()).unwrap();
        }
        let before = log.file_bytes();
        let entries = log.entries().unwrap();
        assert_eq!(entries.len(), 4);
        log.replace_all(&entries).unwrap();
        assert!(log.file_bytes() < before);
        assert_eq!(log.dead_bytes(), 0);
        for (key, data) in &entries {
            assert_eq!(log.get(*key).unwrap().as_deref(), Some(data.as_slice()));
        }
        // And the rewritten file reopens clean.
        drop(log);
        let mut log = SegmentLog::open(&path).unwrap();
        assert_eq!(log.len(), 4);
        assert_eq!(log.get(0).unwrap().as_deref(), Some(&b"value 16"[..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn removed_keys_stay_gone_and_compact_away() {
        let path = tmp("remove.useg");
        std::fs::remove_file(&path).ok();
        let mut log = SegmentLog::open(&path).unwrap();
        log.append(5, b"five").unwrap();
        log.append(6, b"six").unwrap();
        log.remove(5);
        assert_eq!(log.get(5).unwrap(), None);
        let entries = log.entries().unwrap();
        log.replace_all(&entries).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.get(6).unwrap().as_deref(), Some(&b"six"[..]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let path = tmp("flips.useg");
        std::fs::remove_file(&path).ok();
        {
            let mut log = SegmentLog::open(&path).unwrap();
            log.append(1, b"alpha payload").unwrap();
            log.append(2, b"beta").unwrap();
            log.append(1, b"alpha v2").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let flipped = tmp("flips_bad.useg");
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&flipped, &bad).unwrap();
            // Open validates every frame and CRC; a flip anywhere — header,
            // frame, payload, padding, checksum, even a dead record — must
            // surface as a typed error, never as readable-but-wrong state.
            let outcome = SegmentLog::open(&flipped).and_then(|mut log| {
                log.get(1)?;
                log.get(2)?;
                Ok(())
            });
            match outcome {
                Err(
                    StoreError::BadMagic
                    | StoreError::UnsupportedVersion(_)
                    | StoreError::Corrupt { .. }
                    | StoreError::Io(_),
                ) => {}
                Err(other) => panic!("flip at byte {pos}: unexpected error kind {other}"),
                Ok(()) => panic!("flip at byte {pos} went undetected"),
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&flipped).ok();
    }

    #[test]
    fn every_truncation_is_detected() {
        let path = tmp("trunc.useg");
        std::fs::remove_file(&path).ok();
        {
            let mut log = SegmentLog::open(&path).unwrap();
            log.append(9, b"nine lives").unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let cut_path = tmp("trunc_bad.useg");
        // A cut exactly at the header boundary is a *valid empty log* (a
        // record log cannot know how many records it should have), so probe
        // every cut strictly inside the record.
        for cut in 1..bytes.len() {
            if cut == HEADER_LEN {
                continue;
            }
            std::fs::write(&cut_path, &bytes[..cut]).unwrap();
            assert!(
                SegmentLog::open(&cut_path).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cut_path).ok();
    }

    #[test]
    fn remove_on_drop_deletes_the_file() {
        let path = tmp("ephemeral.useg");
        std::fs::remove_file(&path).ok();
        {
            let mut log = SegmentLog::open(&path).unwrap();
            log.append(1, b"gone soon").unwrap();
            log.set_remove_on_drop(true);
        }
        assert!(!path.exists());
    }
}
