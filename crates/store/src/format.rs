//! The on-disk container: header + CRC-checked sections + atomic commit.
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------
//!      0     8  magic  "RRCSTOR1"
//!      8     4  format version (u32 LE, currently 1)
//!     12     4  flags (u32 LE, must be 0)
//!     16     …  sections, back to back
//! ```
//!
//! Each section:
//!
//! ```text
//!      0     4  tag (FourCC, e.g. "UMAT")
//!      4     4  reserved (must be 0)
//!      8     8  payload length in bytes (u64 LE)
//!     16   len  payload
//!      …   0-7  zero padding to the next 8-byte boundary
//!      …     4  CRC-32 of the unpadded payload (u32 LE)
//!      …     4  trailer padding (must be 0)
//! ```
//!
//! Every payload therefore starts 8-byte aligned, and the read buffer is
//! itself 8-byte aligned, so `f64`/`u64` payloads are served zero-copy as
//! typed slices. All multi-byte values are little-endian; the crate
//! refuses to compile on big-endian targets.
//!
//! **Atomic commit**: [`commit`] writes to a hidden temp file in the
//! destination directory, fsyncs it, renames it over the target, then
//! fsyncs the directory. Readers either see the old complete file or the
//! new complete file; a torn write leaves only a temp file behind, and any
//! in-place damage is caught by the per-section CRCs.

use crate::crc32::crc32;
use crate::error::{corrupt, StoreError};
use rrc_obs::global;
use std::fs::File;
use std::io::{Read, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"RRCSTOR1";
/// The container version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const SECTION_HEADER_LEN: usize = 16;
const SECTION_TRAILER_LEN: usize = 8;

/// A section identifier (FourCC).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 4]);

impl Tag {
    /// Metadata key/value pairs (see [`encode_meta`]).
    pub const META: Tag = Tag(*b"META");
    /// Dimension vector: `u64` values whose meaning the kind defines.
    pub const DIMS: Tag = Tag(*b"DIMS");
    /// TS-PPR user factors `U`, row-major `users × K`.
    pub const UMAT: Tag = Tag(*b"UMAT");
    /// TS-PPR item factors `V`, row-major `items × K`.
    pub const VMAT: Tag = Tag(*b"VMAT");
    /// All per-user transforms `A_u`, concatenated row-major `K × F` blocks.
    pub const AMAT: Tag = Tag(*b"AMAT");
    /// Checkpointed RNG streams: `shards × 4` `u64` words of xoshiro state.
    pub const RNGS: Tag = Tag(*b"RNGS");
    /// Checkpointed convergence-check trace.
    pub const TRCE: Tag = Tag(*b"TRCE");
    /// FPMC user→item factors, user side.
    pub const FPUI: Tag = Tag(*b"FPUI");
    /// FPMC user→item factors, item side.
    pub const FPIU: Tag = Tag(*b"FPIU");
    /// FPMC basket→item factors, target-item side.
    pub const FPIL: Tag = Tag(*b"FPIL");
    /// FPMC basket→item factors, basket-item side.
    pub const FPLI: Tag = Tag(*b"FPLI");
    /// Stream-checkpoint per-user live windows (see `stream`).
    pub const WNDS: Tag = Tag(*b"WNDS");

    /// Printable form: ASCII when clean, hex otherwise.
    pub fn name(&self) -> String {
        if self.0.iter().all(|b| b.is_ascii_graphic()) {
            self.0.iter().map(|&b| b as char).collect()
        } else {
            format!(
                "0x{:02x}{:02x}{:02x}{:02x}",
                self.0[0], self.0[1], self.0[2], self.0[3]
            )
        }
    }
}

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tag({})", self.name())
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Reinterpret an `f64` slice as its little-endian byte image.
#[inline]
pub(crate) fn f64s_as_bytes(data: &[f64]) -> &[u8] {
    // Safe on the little-endian targets this crate compiles for: f64 has
    // no padding and alignment only shrinks going to bytes.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Reinterpret a `u64` slice as its little-endian byte image.
#[inline]
pub(crate) fn u64s_as_bytes(data: &[u64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Serialises a container into an in-memory byte buffer.
///
/// Sections may be built in one call ([`Writer::section`]) or streamed in
/// chunks (`begin`/`push`/`end`) so large concatenated payloads — e.g.
/// every `A_u` — never need a second contiguous copy.
pub struct Writer {
    buf: Vec<u8>,
    /// `(header offset, payload start)` of the open section, if any.
    open: Option<(usize, usize)>,
}

impl Writer {
    /// Start a container with the standard header.
    pub fn new() -> Writer {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        Writer { buf, open: None }
    }

    /// Open a section; payload bytes follow via [`Writer::push`].
    pub fn begin(&mut self, tag: Tag) {
        assert!(self.open.is_none(), "section {} still open", tag);
        let header = self.buf.len();
        self.buf.extend_from_slice(&tag.0);
        self.buf.extend_from_slice(&0u32.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes()); // patched by end()
        self.open = Some((header, self.buf.len()));
    }

    /// Append payload bytes to the open section.
    pub fn push(&mut self, bytes: &[u8]) {
        assert!(self.open.is_some(), "no open section");
        self.buf.extend_from_slice(bytes);
    }

    /// Append `f64` payload words to the open section.
    pub fn push_f64s(&mut self, data: &[f64]) {
        self.push(f64s_as_bytes(data));
    }

    /// Append `u64` payload words to the open section.
    pub fn push_u64s(&mut self, data: &[u64]) {
        self.push(u64s_as_bytes(data));
    }

    /// Close the open section: patch the length, pad to alignment, and
    /// append the CRC trailer.
    pub fn end(&mut self) {
        let (header, start) = self.open.take().expect("no open section");
        let len = self.buf.len() - start;
        self.buf[header + 8..header + 16].copy_from_slice(&(len as u64).to_le_bytes());
        let crc = crc32(&self.buf[start..]);
        let pad = len.next_multiple_of(8) - len;
        self.buf.extend(std::iter::repeat_n(0u8, pad));
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(&0u32.to_le_bytes());
    }

    /// Write a whole section in one call.
    pub fn section(&mut self, tag: Tag, payload: &[u8]) {
        self.begin(tag);
        self.push(payload);
        self.end();
    }

    /// Write a whole `f64` section in one call.
    pub fn f64_section(&mut self, tag: Tag, data: &[f64]) {
        self.begin(tag);
        self.push_f64s(data);
        self.end();
    }

    /// Write a whole `u64` section in one call.
    pub fn u64_section(&mut self, tag: Tag, data: &[u64]) {
        self.begin(tag);
        self.push_u64s(data);
        self.end();
    }

    /// Finish and take the serialized container.
    pub fn finish(self) -> Vec<u8> {
        assert!(self.open.is_none(), "unclosed section");
        self.buf
    }
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

/// Encode metadata key/value pairs as a `META` payload:
/// `u32 count`, then per entry `u32 key_len, key, u32 value_len, value`
/// (UTF-8, little-endian lengths).
pub fn encode_meta(pairs: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (k, v) in pairs {
        for s in [k, v] {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
    out
}

/// Decode a `META` payload (inverse of [`encode_meta`]).
pub fn decode_meta(payload: &[u8]) -> Result<Vec<(String, String)>, StoreError> {
    let bad = |detail: &str| corrupt(Tag::META.name(), detail);
    let mut off = 0usize;
    let mut take = |n: usize| -> Result<&[u8], StoreError> {
        let end = off.checked_add(n).filter(|&e| e <= payload.len());
        let end = end.ok_or_else(|| bad("truncated metadata"))?;
        let s = &payload[off..end];
        off = end;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut pairs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let mut entry = [String::new(), String::new()];
        for part in &mut entry {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let bytes = take(len)?;
            *part = std::str::from_utf8(bytes)
                .map_err(|_| bad("metadata is not UTF-8"))?
                .to_string();
        }
        let [k, v] = entry;
        pairs.push((k, v));
    }
    if off != payload.len() {
        return Err(bad("trailing bytes after metadata"));
    }
    Ok(pairs)
}

/// An 8-byte-aligned owned byte buffer (backed by `u64` storage), so
/// aligned payloads can be reinterpreted as `&[f64]`/`&[u64]` in place.
#[derive(Debug)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn new(len: usize) -> AlignedBuf {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast(), self.len) }
    }

    fn bytes_mut(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast(), self.len) }
    }
}

/// A parsed, checksum-verified container held in one aligned buffer.
///
/// Parsing validates the whole file up front — magic, version, every
/// section frame and CRC — so accessors afterwards are infallible except
/// for [`StoreError::Missing`] / element-count checks.
#[derive(Debug)]
pub struct StoreFile {
    buf: AlignedBuf,
    sections: Vec<(Tag, Range<usize>)>,
}

impl StoreFile {
    /// Read and verify the container at `path`, timed under the
    /// `store.load` span.
    pub fn open(path: impl AsRef<Path>) -> Result<StoreFile, StoreError> {
        let _span = global().span("store.load");
        let mut f = File::open(path)?;
        let len = f.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| corrupt("header", "file too large"))?;
        let mut buf = AlignedBuf::new(len);
        f.read_exact(buf.bytes_mut())?;
        StoreFile::parse(buf)
    }

    /// Verify a container already held in memory (copies once into an
    /// aligned buffer).
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreFile, StoreError> {
        let mut buf = AlignedBuf::new(bytes.len());
        buf.bytes_mut().copy_from_slice(bytes);
        StoreFile::parse(buf)
    }

    fn parse(buf: AlignedBuf) -> Result<StoreFile, StoreError> {
        let b = buf.bytes();
        if b.len() < HEADER_LEN {
            return Err(corrupt("header", "file shorter than the fixed header"));
        }
        if b[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(b[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let flags = u32::from_le_bytes(b[12..16].try_into().unwrap());
        if flags != 0 {
            return Err(corrupt("header", format!("unsupported flags {flags:#x}")));
        }

        let mut sections: Vec<(Tag, Range<usize>)> = Vec::new();
        let mut off = HEADER_LEN;
        while off < b.len() {
            if b.len() - off < SECTION_HEADER_LEN {
                return Err(corrupt("frame", "truncated section header"));
            }
            let tag = Tag(b[off..off + 4].try_into().unwrap());
            let reserved = u32::from_le_bytes(b[off + 4..off + 8].try_into().unwrap());
            if reserved != 0 {
                return Err(corrupt(tag.name(), "nonzero reserved field"));
            }
            let len64 = u64::from_le_bytes(b[off + 8..off + 16].try_into().unwrap());
            let len = usize::try_from(len64)
                .ok()
                .filter(|l| l.checked_next_multiple_of(8).is_some())
                .ok_or_else(|| corrupt(tag.name(), "implausible section length"))?;
            let start = off + SECTION_HEADER_LEN;
            let padded = len.next_multiple_of(8);
            let after = padded
                .checked_add(SECTION_TRAILER_LEN)
                .and_then(|n| start.checked_add(n))
                .filter(|&end| end <= b.len())
                .ok_or_else(|| corrupt(tag.name(), "section extends past end of file"))?;
            let payload = &b[start..start + len];
            if b[start + len..start + padded].iter().any(|&p| p != 0) {
                return Err(corrupt(tag.name(), "nonzero alignment padding"));
            }
            let stored =
                u32::from_le_bytes(b[start + padded..start + padded + 4].try_into().unwrap());
            let trailer_pad = u32::from_le_bytes(b[start + padded + 4..after].try_into().unwrap());
            if trailer_pad != 0 {
                return Err(corrupt(tag.name(), "nonzero trailer padding"));
            }
            let actual = crc32(payload);
            if actual != stored {
                return Err(corrupt(
                    tag.name(),
                    format!("checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
                ));
            }
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(corrupt(tag.name(), "duplicate section"));
            }
            sections.push((tag, start..start + len));
            off = after;
        }
        Ok(StoreFile { buf, sections })
    }

    /// Whether section `tag` is present.
    pub fn has(&self, tag: Tag) -> bool {
        self.sections.iter().any(|(t, _)| *t == tag)
    }

    /// Tags in file order.
    pub fn tags(&self) -> Vec<Tag> {
        self.sections.iter().map(|(t, _)| *t).collect()
    }

    /// Borrow section `tag`'s payload.
    pub fn section(&self, tag: Tag) -> Result<&[u8], StoreError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| &self.buf.bytes()[r.clone()])
            .ok_or_else(|| StoreError::Missing {
                section: tag.name(),
            })
    }

    /// Borrow section `tag` as an `f64` slice — zero-copy: the slice
    /// aliases the read buffer.
    pub fn f64_section(&self, tag: Tag) -> Result<&[f64], StoreError> {
        let bytes = self.section(tag)?;
        if bytes.len() % 8 != 0 {
            return Err(corrupt(tag.name(), "length is not a multiple of 8"));
        }
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "payload misaligned");
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), bytes.len() / 8) })
    }

    /// Borrow section `tag` as a `u64` slice (zero-copy, as above).
    pub fn u64_section(&self, tag: Tag) -> Result<&[u64], StoreError> {
        let bytes = self.section(tag)?;
        if bytes.len() % 8 != 0 {
            return Err(corrupt(tag.name(), "length is not a multiple of 8"));
        }
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "payload misaligned");
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) })
    }

    /// Decode the `META` section (empty when absent).
    pub fn meta(&self) -> Result<Vec<(String, String)>, StoreError> {
        match self.section(Tag::META) {
            Ok(payload) => decode_meta(payload),
            Err(StoreError::Missing { .. }) => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Look up one metadata value.
    pub fn meta_value(&self, key: &str) -> Result<Option<String>, StoreError> {
        Ok(self
            .meta()?
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v))
    }
}

/// Atomically replace `path` with `bytes`: write a hidden temp file in the
/// same directory, fsync it, rename it into place, fsync the directory.
/// Timed under the `store.save` span; adds to `store_bytes_written_total`.
pub fn commit(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StoreError> {
    let _span = global().span("store.save");
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| corrupt("header", format!("path {path:?} has no file name")))?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    // Make the rename itself durable. Directory fsync is best-effort:
    // some filesystems refuse to open directories for writing.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    global()
        .counter("store_bytes_written_total")
        .add(bytes.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_file() -> Vec<u8> {
        let mut w = Writer::new();
        w.u64_section(Tag::DIMS, &[1, 2, 3, 4]);
        w.section(Tag::META, &encode_meta(&[("kind".into(), "test".into())]));
        w.f64_section(Tag::UMAT, &[0.5, -1.25, 3.0]);
        w.finish()
    }

    #[test]
    fn round_trips_sections() {
        let bytes = two_section_file();
        let f = StoreFile::from_bytes(&bytes).unwrap();
        assert_eq!(f.tags(), vec![Tag::DIMS, Tag::META, Tag::UMAT]);
        assert_eq!(f.u64_section(Tag::DIMS).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(f.f64_section(Tag::UMAT).unwrap(), &[0.5, -1.25, 3.0]);
        assert_eq!(f.meta_value("kind").unwrap().as_deref(), Some("test"));
        assert!(!f.has(Tag::VMAT));
        assert!(matches!(
            f.section(Tag::VMAT),
            Err(StoreError::Missing { section }) if section == "VMAT"
        ));
    }

    #[test]
    fn odd_length_payloads_stay_aligned() {
        let mut w = Writer::new();
        w.section(Tag::META, &[7u8; 13]); // forces 3 pad bytes
        w.f64_section(Tag::UMAT, &[1.0]);
        let f = StoreFile::from_bytes(&w.finish()).unwrap();
        assert_eq!(f.section(Tag::META).unwrap(), &[7u8; 13]);
        assert_eq!(f.f64_section(Tag::UMAT).unwrap(), &[1.0]);
    }

    #[test]
    fn streamed_section_equals_one_shot() {
        let mut a = Writer::new();
        a.f64_section(Tag::UMAT, &[1.0, 2.0, 3.0, 4.0]);
        let mut b = Writer::new();
        b.begin(Tag::UMAT);
        b.push_f64s(&[1.0, 2.0]);
        b.push_f64s(&[3.0, 4.0]);
        b.end();
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = two_section_file();
        StoreFile::from_bytes(&bytes).unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            // A flip may land in a tag (→ Missing when required sections
            // are looked up), the header (BadMagic / version), a length, a
            // CRC, padding, or the payload — all must fail somewhere
            // before data is served.
            let outcome = StoreFile::from_bytes(&bad).and_then(|f| {
                f.u64_section(Tag::DIMS)?;
                f.section(Tag::META)?;
                f.f64_section(Tag::UMAT)?;
                Ok(())
            });
            assert!(outcome.is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = two_section_file();
        for cut in 0..bytes.len() {
            // A cut at a section boundary still parses as a container; the
            // loss then surfaces as `Missing` when the reader asks for the
            // sections it needs — never as garbage data.
            let outcome = StoreFile::from_bytes(&bytes[..cut]).and_then(|f| {
                f.u64_section(Tag::DIMS)?;
                f.section(Tag::META)?;
                f.f64_section(Tag::UMAT)?;
                Ok(())
            });
            assert!(
                outcome.is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn meta_round_trip() {
        let pairs = vec![
            ("kind".to_string(), "tsppr-model".to_string()),
            ("seed".to_string(), "42".to_string()),
            ("note".to_string(), "päper ünicode ✓".to_string()),
            ("empty".to_string(), String::new()),
        ];
        assert_eq!(decode_meta(&encode_meta(&pairs)).unwrap(), pairs);
    }

    #[test]
    fn commit_replaces_atomically_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("rrc_store_fmt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.rrcm");
        commit(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        commit(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
