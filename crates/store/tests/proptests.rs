//! Property tests for the store formats: save → load is the identity
//! (bitwise) for arbitrary model shapes, in both the binary container
//! and the text debug format, and binary encoding is deterministic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::TsPprModel;
use rrc_store::format::StoreFile;
use rrc_store::model::{encode_model, ModelView};
use rrc_store::text;

fn model_strategy() -> impl Strategy<Value = TsPprModel> {
    (1usize..5, 1usize..6, 1usize..8, 1usize..5, 0u64..1000).prop_map(
        |(users, items, k, f, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            TsPprModel::init(&mut rng, users, items, k, f, 0.1, 0.05)
        },
    )
}

proptest! {
    #[test]
    fn binary_round_trips_any_model(model in model_strategy()) {
        let bytes = encode_model(&model, &[]);
        let view = ModelView::from_bytes(&bytes).unwrap();
        prop_assert_eq!(view.to_model(), model);
    }

    #[test]
    fn binary_encoding_is_deterministic(model in model_strategy()) {
        prop_assert_eq!(encode_model(&model, &[]), encode_model(&model, &[]));
    }

    #[test]
    fn text_round_trips_any_model(model in model_strategy()) {
        let mut buf = Vec::new();
        text::save(&model, &mut buf).unwrap();
        let back = text::load(&buf[..]).unwrap();
        prop_assert_eq!(back, model);
    }

    #[test]
    fn text_and_binary_agree_bitwise(model in model_strategy()) {
        let mut buf = Vec::new();
        text::save(&model, &mut buf).unwrap();
        let from_text = text::load(&buf[..]).unwrap();
        let view = ModelView::from_bytes(&encode_model(&from_text, &[])).unwrap();
        prop_assert_eq!(view.to_model(), model);
    }

    #[test]
    fn zero_copy_rows_match_owned_model(model in model_strategy()) {
        let bytes = encode_model(&model, &[]);
        let view = ModelView::from_bytes(&bytes).unwrap();
        for u in 0..model.num_users() {
            let user = rrc_sequence::UserId(u as u32);
            prop_assert_eq!(view.user_row(u), model.user_factor(user));
            prop_assert_eq!(view.transform(u), model.transform(user).as_slice());
        }
        for i in 0..model.num_items() {
            prop_assert_eq!(
                view.item_row(i),
                model.item_factor(rrc_sequence::ItemId(i as u32))
            );
        }
    }

    /// Arbitrary junk never parses as a container (except when it happens
    /// to start with the magic, which random bytes essentially never do).
    #[test]
    fn random_bytes_never_parse(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(!bytes.starts_with(b"RRCSTOR1"));
        prop_assert!(StoreFile::from_bytes(&bytes).is_err());
    }
}
