//! Corruption-injection tests over *real* artifacts: a trained-model file
//! and a checkpoint file, each attacked by flipping one byte inside every
//! section's payload region and by truncation at every section boundary.
//! Every attack must surface as a typed [`StoreError`] — the load paths
//! must never hand back parameters built from damaged bytes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{ConvergencePoint, TrainCheckpoint, TrainMode, TsPprModel};
use rrc_store::checkpoint::{decode_checkpoint, encode_checkpoint};
use rrc_store::format::{StoreFile, Tag};
use rrc_store::model::{encode_model, load_model, ModelView};
use rrc_store::StoreError;
use std::time::Duration;

fn model() -> TsPprModel {
    TsPprModel::init(&mut StdRng::seed_from_u64(9), 5, 7, 3, 4, 0.1, 0.1)
}

fn checkpoint() -> TrainCheckpoint {
    TrainCheckpoint {
        mode: TrainMode::Serial,
        shards: 1,
        step: 500,
        prev_r_tilde: Some(0.41),
        elapsed: Duration::from_millis(77),
        checks: vec![ConvergencePoint {
            step: 500,
            r_tilde: 0.41,
            nll: 0.6,
            elapsed: Duration::from_millis(77),
        }],
        rng_states: vec![[11, 22, 33, 44]],
        model: model(),
        fingerprint: 0x1234_5678_9abc_def0,
    }
}

/// Byte ranges of every section payload in `bytes`, by walking the frame
/// structure the same way the parser does.
fn payload_ranges(bytes: &[u8]) -> Vec<(String, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = 16; // container header
    while pos < bytes.len() {
        let tag = Tag([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let len = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap()) as usize;
        let start = pos + 16;
        out.push((tag.name(), start..start + len));
        let padded = len.next_multiple_of(8);
        pos = start + padded + 8; // payload + pad + CRC word + trailer pad
    }
    out
}

#[test]
fn every_model_section_flip_is_a_typed_corruption() {
    let bytes = encode_model(&model(), &[("kind".into(), "tsppr-model".into())]);
    let sections = payload_ranges(&bytes);
    assert!(
        sections.len() >= 4,
        "model file should have META/DIMS/UMAT/VMAT/AMAT"
    );
    for (name, range) in &sections {
        assert!(!range.is_empty(), "section {name} has an empty payload");
        // Flip the first, middle, and last byte of the payload.
        for pos in [range.start, range.start + range.len() / 2, range.end - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            let err = ModelView::from_bytes(&bad)
                .map(|_| ())
                .expect_err(&format!("flip in {name} payload at byte {pos} undetected"));
            match err {
                StoreError::Corrupt { ref section, .. } => {
                    assert_eq!(section, name, "flip in {name} blamed on {section}")
                }
                other => panic!("flip in {name} produced {other} instead of Corrupt"),
            }
        }
    }
}

#[test]
fn every_checkpoint_section_flip_is_a_typed_corruption() {
    let bytes = encode_checkpoint(&checkpoint());
    for (name, range) in &payload_ranges(&bytes) {
        let mut bad = bytes.clone();
        bad[range.start] ^= 0x80;
        let err = StoreFile::from_bytes(&bad)
            .and_then(|f| decode_checkpoint(&f))
            .map(|_| ())
            .expect_err(&format!("flip in checkpoint section {name} undetected"));
        assert!(
            matches!(err, StoreError::Corrupt { .. }),
            "flip in {name} produced {err} instead of Corrupt"
        );
    }
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let bytes = encode_model(&model(), &[]);
    for (name, range) in &payload_ranges(&bytes) {
        // Cut mid-payload and right before the CRC word.
        for cut in [range.start + range.len() / 2, range.end] {
            let err = ModelView::from_bytes(&bytes[..cut])
                .map(|_| ())
                .expect_err(&format!("truncation inside {name} (cut {cut}) undetected"));
            assert!(
                matches!(err, StoreError::Corrupt { .. } | StoreError::Missing { .. }),
                "truncation inside {name} produced {err}"
            );
        }
    }
    // Chopping off whole trailing sections must also fail: the required
    // sections go missing, never a partially-built model.
    let sections = payload_ranges(&bytes);
    let first_end = sections[0].1.end.next_multiple_of(8) + 8;
    let err = ModelView::from_bytes(&bytes[..first_end])
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, StoreError::Corrupt { .. } | StoreError::Missing { .. }),
        "dropping trailing sections produced {err}"
    );
}

#[test]
fn corrupt_file_on_disk_is_rejected_by_path_loader() {
    let dir = std::env::temp_dir().join(format!("rrc_store_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.rrcm");

    let mut bytes = encode_model(&model(), &[("kind".into(), "tsppr-model".into())]);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(load_model(&path).is_err(), "torn file loaded from disk");

    std::fs::write(&path, b"RRC").unwrap();
    assert!(matches!(
        load_model(&path).unwrap_err(),
        StoreError::Corrupt { .. } | StoreError::BadMagic
    ));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wrong_magic_and_version_are_distinct_errors() {
    let good = encode_model(&model(), &[]);

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0x20;
    assert!(matches!(
        StoreFile::from_bytes(&bad_magic).unwrap_err(),
        StoreError::BadMagic
    ));

    let mut bad_version = good;
    bad_version[8] = 0x7F; // version u32 LE at offset 8
    assert!(matches!(
        StoreFile::from_bytes(&bad_version).unwrap_err(),
        StoreError::UnsupportedVersion(0x7F)
    ));
}
