//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use rrc_linalg::{
    cholesky_solve, ln_sigmoid, logsumexp, lu_solve, min_max_normalize, sigmoid, DMatrix, DVector,
    Summary,
};

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_filter("finite", |x| x.is_finite())
}

fn vec_of(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(finite_f64(), n)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec_of(8), b in vec_of(8)) {
        let va = DVector::from(a);
        let vb = DVector::from(b);
        let ab = va.dot(&vb);
        let ba = vb.dot(&va);
        prop_assert!((ab - ba).abs() <= 1e-6 * (1.0 + ab.abs()));
    }

    #[test]
    fn dot_is_bilinear(a in vec_of(6), b in vec_of(6), alpha in -100.0f64..100.0) {
        let va = DVector::from(a);
        let mut scaled = va.clone();
        scaled.scale(alpha);
        let vb = DVector::from(b);
        let lhs = scaled.dot(&vb);
        let rhs = alpha * va.dot(&vb);
        prop_assert!((lhs - rhs).abs() <= 1e-4 * (1.0 + rhs.abs()));
    }

    #[test]
    fn axpy_matches_manual_loop(a in vec_of(5), b in vec_of(5), alpha in -10.0f64..10.0) {
        let mut v = DVector::from(a.clone());
        v.axpy(alpha, &DVector::from(b.clone()));
        for i in 0..5 {
            let expect = a[i] + alpha * b[i];
            prop_assert!((v[i] - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn cauchy_schwarz(a in vec_of(8), b in vec_of(8)) {
        let va = DVector::from(a);
        let vb = DVector::from(b);
        let lhs = va.dot(&vb).abs();
        let rhs = va.norm() * vb.norm();
        prop_assert!(lhs <= rhs * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn triangle_inequality(a in vec_of(8), b in vec_of(8)) {
        let va = DVector::from(a);
        let vb = DVector::from(b);
        prop_assert!(va.add(&vb).norm() <= va.norm() + vb.norm() + 1e-6);
    }

    #[test]
    fn matvec_is_linear(data in vec_of(12), x in vec_of(4), y in vec_of(4)) {
        let m = DMatrix::from_vec(3, 4, data);
        let vx = DVector::from(x.clone());
        let vy = DVector::from(y.clone());
        let sum = vx.add(&vy);
        let lhs = m.matvec(&sum);
        let rhs = m.matvec(&vx).add(&m.matvec(&vy));
        for i in 0..3 {
            prop_assert!((lhs[i] - rhs[i]).abs() <= 1e-4 * (1.0 + rhs[i].abs()));
        }
    }

    #[test]
    fn rank1_update_changes_frobenius_as_expected(
        u in prop::collection::vec(-10.0f64..10.0, 3),
        v in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        // Starting from zero, after a rank-1 update the Frobenius norm is
        // exactly |alpha| * ||u|| * ||v||.
        let mut m = DMatrix::zeros(3, 4);
        m.rank1_update(2.0, &u, &v);
        let nu = DVector::from(u).norm();
        let nv = DVector::from(v).norm();
        let expect = 2.0 * nu * nv;
        prop_assert!((m.frobenius_norm() - expect).abs() <= 1e-6 * (1.0 + expect));
    }

    #[test]
    fn lu_solution_satisfies_system(seed_vals in prop::collection::vec(-5.0f64..5.0, 16), b in prop::collection::vec(-10.0f64..10.0, 4)) {
        // Diagonally dominate the matrix so it is never singular.
        let mut m = DMatrix::from_vec(4, 4, seed_vals);
        for i in 0..4 {
            let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        let x = lu_solve(&m, &b).unwrap();
        let ax = m.matvec(&x);
        for i in 0..4 {
            prop_assert!((ax[i] - b[i]).abs() <= 1e-6 * (1.0 + b[i].abs()));
        }
    }

    #[test]
    fn cholesky_agrees_with_lu(seed_vals in prop::collection::vec(-3.0f64..3.0, 9), b in prop::collection::vec(-5.0f64..5.0, 3)) {
        // Build an SPD matrix A = G Gᵀ + I.
        let g = DMatrix::from_vec(3, 3, seed_vals);
        let mut a = g.matmul(&g.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let x1 = lu_solve(&a, &b).unwrap();
        let x2 = cholesky_solve(&a, &b).unwrap();
        for i in 0..3 {
            prop_assert!((x1[i] - x2[i]).abs() <= 1e-6 * (1.0 + x1[i].abs()));
        }
    }

    #[test]
    fn sigmoid_in_unit_interval(x in -1e6f64..1e6) {
        let s = sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn sigmoid_monotone(x in -100.0f64..100.0, dx in 0.001f64..10.0) {
        prop_assert!(sigmoid(x + dx) >= sigmoid(x));
    }

    #[test]
    fn ln_sigmoid_is_log_of_sigmoid(x in -30.0f64..30.0) {
        let lhs = ln_sigmoid(x);
        let rhs = sigmoid(x).ln();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn logsumexp_bounds(xs in prop::collection::vec(-100.0f64..100.0, 1..20)) {
        // max(x) <= lse(x) <= max(x) + ln(n)
        let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lse = logsumexp(&xs);
        prop_assert!(lse >= m - 1e-9);
        prop_assert!(lse <= m + (xs.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn normalize_is_idempotent_on_range(mut v in prop::collection::vec(-1e3f64..1e3, 2..50)) {
        min_max_normalize(&mut v);
        let mut w = v.clone();
        min_max_normalize(&mut w);
        for (a, b) in v.iter().zip(w.iter()) {
            prop_assert!((a - b).abs() <= 1e-9);
        }
    }

    #[test]
    fn summary_mean_within_min_max(v in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let s = Summary::of(&v);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }
}
