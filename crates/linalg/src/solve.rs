//! Small dense linear solvers: LU with partial pivoting and Cholesky.
//!
//! The Cox proportional-hazards trainer ([`rrc-survival`]) takes
//! Newton–Raphson steps `β ← β + H⁻¹ g`, and STREC's IRLS option solves a
//! weighted normal system; both systems are tiny (F ≤ a dozen covariates),
//! so an O(n³) direct solve is the right tool.

use crate::DMatrix;

/// Errors from the direct solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (a pivot underflowed) — the system has no
    /// unique solution.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// Shape mismatch between the matrix and right-hand side.
    ShapeMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            SolveError::ShapeMismatch => write!(f, "matrix/rhs shape mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

const PIVOT_EPS: f64 = 1e-12;

/// Solve `A x = b` by LU decomposition with partial pivoting.
///
/// `a` must be square; `b.len()` must equal its order. Neither input is
/// modified.
pub fn lu_solve(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    // Work on copies: `lu` holds the factorisation in place, `x` the
    // permuted right-hand side.
    let mut lu = a.clone();
    let mut x = b.to_vec();

    for k in 0..n {
        // Partial pivot: the row with the largest |entry| in column k.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val < PIVOT_EPS {
            return Err(SolveError::Singular);
        }
        if pivot_row != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            x.swap(k, pivot_row);
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let delta = factor * lu[(k, j)];
                lu[(i, j)] -= delta;
            }
            x[i] -= factor * x[k];
        }
    }
    // Back substitution on the upper triangle.
    for k in (0..n).rev() {
        for j in (k + 1)..n {
            x[k] -= lu[(k, j)] * x[j];
        }
        x[k] /= lu[(k, k)];
    }
    Ok(x)
}

/// Solve `A x = b` for a symmetric positive-definite `A` by Cholesky
/// (`A = L Lᵀ`). Roughly twice as fast as LU and fails loudly when a Newton
/// Hessian loses positive-definiteness, which the Cox trainer uses as a
/// signal to fall back to gradient steps.
pub fn cholesky_solve(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    // Factorise into the lower triangle of a working copy.
    let mut l = DMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    // Forward solve L y = b.
    let mut y = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            y[i] -= l[(i, k)] * y[k];
        }
        y[i] /= l[(i, i)];
    }
    // Back solve Lᵀ x = y.
    for i in (0..n).rev() {
        for k in (i + 1)..n {
            y[i] -= l[(k, i)] * y[k];
        }
        y[i] /= l[(i, i)];
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        ax.iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn lu_solves_known_system() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = [3.0, 5.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn lu_handles_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn lu_shape_mismatch() {
        let a = DMatrix::zeros(2, 3);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(SolveError::ShapeMismatch));
        let sq = DMatrix::identity(2);
        assert_eq!(lu_solve(&sq, &[1.0]), Err(SolveError::ShapeMismatch));
    }

    #[test]
    fn cholesky_matches_lu_on_spd_system() {
        let a = DMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]);
        let b = [1.0, -2.0, 0.5];
        let x1 = lu_solve(&a, &b).unwrap();
        let x2 = cholesky_solve(&a, &b).unwrap();
        for (p, q) in x1.iter().zip(x2.iter()) {
            assert!((p - q).abs() < 1e-10);
        }
        assert!(residual(&a, &x2, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(
            cholesky_solve(&a, &[1.0, 1.0]),
            Err(SolveError::NotPositiveDefinite)
        );
    }

    #[test]
    fn larger_random_like_system_round_trips() {
        // A diagonally dominant 6x6 system (guaranteed nonsingular & SPD-ish).
        let n = 6;
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = if i == j {
                    10.0 + i as f64
                } else {
                    1.0 / (1.0 + (i + j) as f64)
                };
            }
        }
        // Symmetrise for Cholesky.
        let at = a.transpose();
        let mut sym = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                sym[(i, j)] = 0.5 * (a[(i, j)] + at[(i, j)]);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = cholesky_solve(&sym, &b).unwrap();
        assert!(residual(&sym, &x, &b) < 1e-9);
        let x2 = lu_solve(&sym, &b).unwrap();
        assert!(residual(&sym, &x2, &b) < 1e-9);
    }
}
