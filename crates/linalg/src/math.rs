//! Numerically-stable scalar helpers shared by all trainers.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
///
/// Implemented in the branchy, overflow-free form: for large negative `x`,
/// the naive expression `1/(1+e^{-x})` would compute `e^{-x} = inf`;
/// evaluating `e^{x}/(1+e^{x})` on that branch keeps every intermediate
/// finite.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `ln σ(x)` computed without ever forming `σ(x)` (which underflows to 0 for
/// `x ≲ -745` and would give `ln 0 = -inf` when the true value is just a
/// very negative finite number).
#[inline]
pub fn ln_sigmoid(x: f64) -> f64 {
    // ln σ(x) = -ln(1 + e^{-x}) = x - ln(1 + e^{x})
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

/// `ln Σ e^{x_i}` with the usual max-shift trick. Returns `-inf` for an
/// empty slice (the log of an empty sum).
pub fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// Clamp a value into `[lo, hi]`. `f64::clamp` panics on NaN bounds; this is
/// a thin wrapper kept for call-site readability in the trainers.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    x.max(lo).min(hi)
}

/// Relative difference `|a - b| / max(1, |a|, |b|)`, the convergence test
/// used by the iterative solvers.
#[inline]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / 1.0_f64.max(a.abs()).max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn sigmoid_midpoint_and_symmetry() {
        assert!(close(sigmoid(0.0), 0.5, 1e-15));
        for &x in &[0.1, 1.0, 3.5, 10.0, 50.0] {
            assert!(close(sigmoid(x) + sigmoid(-x), 1.0, 1e-12), "x={x}");
        }
    }

    #[test]
    fn sigmoid_extremes_are_finite_and_saturate() {
        assert!(close(sigmoid(1000.0), 1.0, 1e-12));
        assert!(close(sigmoid(-1000.0), 0.0, 1e-12));
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn ln_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-20.0, -3.0, -0.5, 0.0, 0.5, 3.0, 20.0] {
            let naive = sigmoid(x).ln();
            assert!(close(ln_sigmoid(x), naive, 1e-12), "x={x}");
        }
    }

    #[test]
    fn ln_sigmoid_is_finite_where_naive_underflows() {
        let x = -800.0;
        assert!(sigmoid(x).ln().is_infinite());
        assert!(close(ln_sigmoid(x), x, 1e-9)); // ln σ(x) ≈ x for x ≪ 0
    }

    #[test]
    fn logsumexp_basic() {
        let xs = [0.0, 0.0];
        assert!(close(logsumexp(&xs), 2.0_f64.ln(), 1e-12));
        assert!(logsumexp(&[]).is_infinite());
        // Shift invariance: lse(x + c) = lse(x) + c.
        let base = [1.0, 2.0, 3.0];
        let shifted: Vec<f64> = base.iter().map(|x| x + 100.0).collect();
        assert!(close(logsumexp(&shifted), logsumexp(&base) + 100.0, 1e-9));
    }

    #[test]
    fn logsumexp_handles_large_inputs() {
        let v = logsumexp(&[1000.0, 1000.0]);
        assert!(close(v, 1000.0 + 2.0_f64.ln(), 1e-9));
    }

    #[test]
    fn clamp_and_rel_diff() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.25, 0.0, 1.0), 0.25);
        assert!(close(rel_diff(1.0, 1.0), 0.0, 1e-15));
        assert!(close(rel_diff(200.0, 100.0), 0.5, 1e-15));
        assert!(close(rel_diff(0.001, 0.002), 0.001, 1e-15)); // denominator floors at 1
    }
}
