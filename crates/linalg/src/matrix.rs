//! Row-major dense matrix with the operations the TS-PPR and Cox trainers
//! need: `matvec`, rank-1 (outer product) updates, and Frobenius norms.

// Index loops in this module mirror the summation indices of the
// underlying math; iterator rewrites obscure the correspondence.
#![allow(clippy::needless_range_loop)]

use crate::vector::DVector;
use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// The per-user feature-transform matrix `A_u` of the paper (a `K × F` map
/// from observable behavioral space to latent preference space) is a
/// `DMatrix`, and the SGD step of Eq. 15,
/// `A_u ← (1-αλ)A_u + α(1-p)·u ⊗ (f_i − f_j)`, maps to
/// [`DMatrix::scale`] + [`DMatrix::rank1_update`].
#[derive(Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// A zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n × n` (the paper's suggested `A_u = I`
    /// simplification when `K = F`).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape mismatch");
        DMatrix { rows, cols, data }
    }

    /// Build from nested rows (convenience for tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        DMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `y = self · x` (matrix–vector product).
    ///
    /// # Panics
    /// Panics if `x.dim() != cols`.
    pub fn matvec(&self, x: &[f64]) -> DVector {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = DVector::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// `y = selfᵀ · x` (transposed matrix–vector product) without forming
    /// the transpose.
    pub fn matvec_t(&self, x: &[f64]) -> DVector {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut y = DVector::zeros(self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            let xi = x[i];
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += xi * a;
            }
        }
        y
    }

    /// Rank-1 update `self += alpha * (u ⊗ v)` where `u` is a `rows`-vector
    /// and `v` a `cols`-vector. This is exactly the `A_u` gradient step of
    /// Eq. 15 in the paper.
    pub fn rank1_update(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "rank1_update: row dim mismatch");
        assert_eq!(v.len(), self.cols, "rank1_update: col dim mismatch");
        for i in 0..self.rows {
            let ui = alpha * u[i];
            let row = self.row_mut(i);
            for (r, vj) in row.iter_mut().zip(v.iter()) {
                *r += ui * vj;
            }
        }
    }

    /// `self *= alpha` (used for the `(1-αλ)` weight-decay factor).
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm `‖·‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.frobenius_norm_sq().sqrt()
    }

    /// Squared Frobenius norm — the regularisation term `‖A_u‖_F²` of Eq. 7.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }

    /// True iff every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Borrow the raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–matrix product `self · other`.
    pub fn matmul(&self, other: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = DMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMatrix {
        let mut out = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = DMatrix::identity(3);
        let x = [1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x).as_slice(), &x);
    }

    #[test]
    fn matvec_known_values() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = m.matvec(&[1.0, 1.0]);
        assert_eq!(y.as_slice(), &[3.0, 7.0, 11.0]);
        let yt = m.matvec_t(&[1.0, 0.0, 1.0]);
        assert_eq!(yt.as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn rank1_update_matches_outer_product() {
        let mut m = DMatrix::zeros(2, 3);
        m.rank1_update(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = DMatrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.frobenius_norm_sq(), 25.0);
    }

    #[test]
    fn scale_applies_uniformly() {
        let mut m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.scale(0.5);
        assert_eq!(m.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
        let at = a.transpose();
        assert_eq!(at.row(0), &[1.0, 3.0]);
        assert_eq!(at.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn matvec_equals_explicit_transpose_matvec() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [0.5, -1.5];
        let via_t = m.transpose().matvec(&x);
        let direct = m.matvec_t(&x);
        assert_eq!(via_t.as_slice(), direct.as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_wrong_dim_panics() {
        let m = DMatrix::zeros(2, 2);
        let _ = m.matvec(&[1.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = DMatrix::zeros(2, 2);
        m[(0, 1)] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
        assert_eq!(m.row(0), &[0.0, 9.0]);
    }
}
