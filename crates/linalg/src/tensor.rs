//! A dense rank-3 tensor with mode products — the substrate for Tucker
//! decomposition.
//!
//! The paper describes FPMC as "the Tucker Decomposition on a
//! {user-item-item} transition tensor" (§5.2); the general Tucker form
//! scores an entry as
//!
//! ```text
//! x̂(u, i, l) = Σ_{a,b,c} G[a,b,c] · U[u,a] · V[i,b] · W[l,c]
//! ```
//!
//! with a small core `G`. [`Tensor3`] stores the core (or any small dense
//! rank-3 array) and provides the contraction above plus mode-wise partial
//! contractions for gradient computation.

// Index loops in this module mirror the summation indices of the
// underlying math; iterator rewrites obscure the correspondence.
#![allow(clippy::needless_range_loop)]

use crate::DMatrix;

/// A dense rank-3 tensor of shape `(d0, d1, d2)`, row-major in the last
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    d0: usize,
    d1: usize,
    d2: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// A zero tensor.
    pub fn zeros(d0: usize, d1: usize, d2: usize) -> Self {
        Tensor3 {
            d0,
            d1,
            d2,
            data: vec![0.0; d0 * d1 * d2],
        }
    }

    /// The superdiagonal identity-like core of size `(k, k, k)` — plugging
    /// it into the Tucker contraction recovers the CP/pairwise special
    /// case.
    pub fn superdiagonal(k: usize) -> Self {
        let mut t = Self::zeros(k, k, k);
        for a in 0..k {
            t[(a, a, a)] = 1.0;
        }
        t
    }

    /// Build from a raw vector (row-major: index = (a·d1 + b)·d2 + c).
    ///
    /// # Panics
    /// Panics if `data.len() != d0 * d1 * d2`.
    pub fn from_vec(d0: usize, d1: usize, d2: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), d0 * d1 * d2, "tensor shape mismatch");
        Tensor3 { d0, d1, d2, data }
    }

    /// Shape `(d0, d1, d2)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.d0, self.d1, self.d2)
    }

    #[inline]
    fn idx(&self, a: usize, b: usize, c: usize) -> usize {
        debug_assert!(a < self.d0 && b < self.d1 && c < self.d2);
        (a * self.d1 + b) * self.d2 + c
    }

    /// Full trilinear contraction `Σ G[a,b,c]·x[a]·y[b]·z[c]`.
    pub fn contract(&self, x: &[f64], y: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), self.d0, "mode-0 dimension mismatch");
        assert_eq!(y.len(), self.d1, "mode-1 dimension mismatch");
        assert_eq!(z.len(), self.d2, "mode-2 dimension mismatch");
        let mut acc = 0.0;
        for a in 0..self.d0 {
            if x[a] == 0.0 {
                continue;
            }
            let mut inner = 0.0;
            for b in 0..self.d1 {
                if y[b] == 0.0 {
                    continue;
                }
                let base = (a * self.d1 + b) * self.d2;
                let mut row_acc = 0.0;
                for (c, &zc) in z.iter().enumerate() {
                    row_acc += self.data[base + c] * zc;
                }
                inner += y[b] * row_acc;
            }
            acc += x[a] * inner;
        }
        acc
    }

    /// Partial contraction over modes 1 and 2: returns the vector
    /// `g[a] = Σ_{b,c} G[a,b,c]·y[b]·z[c]` — the gradient of
    /// [`Self::contract`] with respect to `x`.
    pub fn contract_mode0(&self, y: &[f64], z: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.d1);
        assert_eq!(z.len(), self.d2);
        (0..self.d0)
            .map(|a| {
                let mut acc = 0.0;
                for b in 0..self.d1 {
                    let base = (a * self.d1 + b) * self.d2;
                    let mut row = 0.0;
                    for (c, &zc) in z.iter().enumerate() {
                        row += self.data[base + c] * zc;
                    }
                    acc += y[b] * row;
                }
                acc
            })
            .collect()
    }

    /// Partial contraction gradient w.r.t. `y`:
    /// `g[b] = Σ_{a,c} G[a,b,c]·x[a]·z[c]`.
    pub fn contract_mode1(&self, x: &[f64], z: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.d0);
        assert_eq!(z.len(), self.d2);
        let mut out = vec![0.0; self.d1];
        for a in 0..self.d0 {
            if x[a] == 0.0 {
                continue;
            }
            for (b, o) in out.iter_mut().enumerate() {
                let base = (a * self.d1 + b) * self.d2;
                let mut row = 0.0;
                for (c, &zc) in z.iter().enumerate() {
                    row += self.data[base + c] * zc;
                }
                *o += x[a] * row;
            }
        }
        out
    }

    /// Partial contraction gradient w.r.t. `z`:
    /// `g[c] = Σ_{a,b} G[a,b,c]·x[a]·y[b]`.
    pub fn contract_mode2(&self, x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.d0);
        assert_eq!(y.len(), self.d1);
        let mut out = vec![0.0; self.d2];
        for a in 0..self.d0 {
            if x[a] == 0.0 {
                continue;
            }
            for b in 0..self.d1 {
                let w = x[a] * y[b];
                if w == 0.0 {
                    continue;
                }
                let base = (a * self.d1 + b) * self.d2;
                for (c, o) in out.iter_mut().enumerate() {
                    *o += w * self.data[base + c];
                }
            }
        }
        out
    }

    /// Rank-1 update `G += α · x ⊗ y ⊗ z` — the SGD step on the core.
    pub fn rank1_update(&mut self, alpha: f64, x: &[f64], y: &[f64], z: &[f64]) {
        assert_eq!(x.len(), self.d0);
        assert_eq!(y.len(), self.d1);
        assert_eq!(z.len(), self.d2);
        for a in 0..self.d0 {
            let xa = alpha * x[a];
            if xa == 0.0 {
                continue;
            }
            for b in 0..self.d1 {
                let w = xa * y[b];
                let base = (a * self.d1 + b) * self.d2;
                for (c, &zc) in z.iter().enumerate() {
                    self.data[base + c] += w * zc;
                }
            }
        }
    }

    /// `G *= alpha` (weight decay).
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Mode-0 unfolding as a `(d0, d1·d2)` matrix (for diagnostics).
    pub fn unfold0(&self) -> DMatrix {
        DMatrix::from_vec(self.d0, self.d1 * self.d2, self.data.clone())
    }

    /// True iff every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<(usize, usize, usize)> for Tensor3 {
    type Output = f64;
    #[inline]
    fn index(&self, (a, b, c): (usize, usize, usize)) -> &f64 {
        &self.data[self.idx(a, b, c)]
    }
}

impl std::ops::IndexMut<(usize, usize, usize)> for Tensor3 {
    #[inline]
    fn index_mut(&mut self, (a, b, c): (usize, usize, usize)) -> &mut f64 {
        let i = self.idx(a, b, c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tensor3 {
        // G[a,b,c] = a + 10b + 100c over shape (2, 2, 2).
        let mut t = Tensor3::zeros(2, 2, 2);
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    t[(a, b, c)] = a as f64 + 10.0 * b as f64 + 100.0 * c as f64;
                }
            }
        }
        t
    }

    #[test]
    fn indexing_round_trip() {
        let t = small();
        assert_eq!(t[(1, 0, 1)], 101.0);
        assert_eq!(t[(0, 1, 0)], 10.0);
        assert_eq!(t.shape(), (2, 2, 2));
    }

    #[test]
    fn contract_matches_naive_sum() {
        let t = small();
        let x = [0.5, 2.0];
        let y = [1.0, -1.0];
        let z = [3.0, 0.25];
        let mut naive = 0.0;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    naive += t[(a, b, c)] * x[a] * y[b] * z[c];
                }
            }
        }
        assert!((t.contract(&x, &y, &z) - naive).abs() < 1e-12);
    }

    #[test]
    fn mode_contractions_are_gradients() {
        // d/dx contract = contract_mode0, checked by finite differences.
        let t = small();
        let x = [0.3, -0.7];
        let y = [0.2, 1.1];
        let z = [-0.5, 0.9];
        let g0 = t.contract_mode0(&y, &z);
        let g1 = t.contract_mode1(&x, &z);
        let g2 = t.contract_mode2(&x, &y);
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let fd = (t.contract(&xp, &y, &z) - t.contract(&x, &y, &z)) / eps;
            assert!((g0[i] - fd).abs() < 1e-5, "mode0[{i}]");
            let mut yp = y;
            yp[i] += eps;
            let fd = (t.contract(&x, &yp, &z) - t.contract(&x, &y, &z)) / eps;
            assert!((g1[i] - fd).abs() < 1e-5, "mode1[{i}]");
            let mut zp = z;
            zp[i] += eps;
            let fd = (t.contract(&x, &y, &zp) - t.contract(&x, &y, &z)) / eps;
            assert!((g2[i] - fd).abs() < 1e-5, "mode2[{i}]");
        }
    }

    #[test]
    fn superdiagonal_recovers_cp_form() {
        let t = Tensor3::superdiagonal(3);
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        let z = [7.0, 8.0, 9.0];
        let cp: f64 = (0..3).map(|i| x[i] * y[i] * z[i]).sum();
        assert!((t.contract(&x, &y, &z) - cp).abs() < 1e-12);
    }

    #[test]
    fn rank1_update_and_scale() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.rank1_update(2.0, &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]);
        assert_eq!(t[(0, 1, 0)], 2.0);
        assert_eq!(t[(0, 1, 1)], 2.0);
        assert_eq!(t[(1, 1, 1)], 0.0);
        assert_eq!(t.frobenius_norm_sq(), 8.0);
        t.scale(0.5);
        assert_eq!(t[(0, 1, 0)], 1.0);
        assert!(t.is_finite());
    }

    #[test]
    fn unfold_shape() {
        let t = small();
        let m = t.unfold0();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        assert_eq!(m[(1, 3)], t[(1, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn contract_dim_mismatch_panics() {
        let t = Tensor3::zeros(2, 2, 2);
        t.contract(&[1.0], &[1.0, 1.0], &[1.0, 1.0]);
    }
}
