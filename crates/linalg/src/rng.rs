//! Deterministic Gaussian sampling for latent-factor initialisation.
//!
//! Algorithm 1 of the paper initialises `A_u ~ N(0, λI)` and
//! `U, V ~ N(0, γI)`. The `rand` crate ships only uniform distributions in
//! its core; the normal distribution lives in the separate `rand_distr`
//! crate, which we avoid by implementing the (polar) Box–Muller transform
//! here.

use crate::{DMatrix, DVector};
use rand::Rng;

/// Draws `N(mean, std²)` samples from any [`rand::Rng`] via the polar
/// Box–Muller (Marsaglia) method, caching the spare deviate so consecutive
/// draws cost one transform per two samples.
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    mean: f64,
    std: f64,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// A sampler for `N(mean, std²)`.
    ///
    /// # Panics
    /// Panics if `std` is negative or non-finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "std must be finite and >= 0");
        GaussianSampler {
            mean,
            std,
            spare: None,
        }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std * z;
        }
        // Classic Box–Muller: loop-free (terminates for any RNG, even a
        // degenerate one), two deviates per transform.
        let u1: f64 = rng.gen(); // [0, 1)
        let u2: f64 = rng.gen();
        let r = (-2.0 * (1.0 - u1).ln()).sqrt(); // 1-u1 ∈ (0, 1] keeps ln finite
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        self.mean + self.std * r * theta.cos()
    }

    /// Fill a fresh vector of dimension `n` with samples.
    pub fn sample_vector<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> DVector {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fill a fresh `rows × cols` matrix with samples.
    pub fn sample_matrix<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        rows: usize,
        cols: usize,
    ) -> DMatrix {
        let data = (0..rows * cols).map(|_| self.sample(rng)).collect();
        DMatrix::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_requested_distribution() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut g = GaussianSampler::new(2.0, 0.5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean={mean}");
        assert!((var - 0.25).abs() < 0.01, "var={var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = GaussianSampler::standard();
        let mut b = GaussianSampler::standard();
        let va = a.sample_vector(&mut StdRng::seed_from_u64(7), 16);
        let vb = b.sample_vector(&mut StdRng::seed_from_u64(7), 16);
        assert_eq!(va.as_slice(), vb.as_slice());
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = GaussianSampler::new(3.0, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn matrix_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = GaussianSampler::standard().sample_matrix(&mut rng, 3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.is_finite());
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn negative_std_panics() {
        let _ = GaussianSampler::new(0.0, -1.0);
    }
}
