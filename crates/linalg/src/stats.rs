//! Summary statistics and normalisation helpers.

/// Five-number-ish summary of a sample: count, mean, variance, min, max.
///
/// Produced in one pass with Welford's algorithm so it is safe on long
/// streams (no catastrophic cancellation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary; `mean`/`var` of an empty summary are 0 and
    /// `min`/`max` are `NaN`.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    /// Summarise a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum (NaN when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (NaN when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

/// Min–max normalise `values` in place into `[0, 1]` (Eq. 17 of the paper:
/// `q̄ = (q - q_min) / (q_max - q_min)`).
///
/// When all values are equal the denominator is zero; the paper's feature
/// is then uninformative and we map everything to `0.0` (rather than NaN).
pub fn min_max_normalize(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    if range <= 0.0 {
        for v in values.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - min) / range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.variance(), 1.25);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_and_singleton() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert!(e.min().is_nan());
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn welford_is_stable_with_large_offset() {
        // Same spread around two very different offsets — variance must match.
        let a = Summary::of(&[1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((a.variance() - b.variance()).abs() < 1e-6);
    }

    #[test]
    fn normalize_basic() {
        let mut v = vec![2.0, 4.0, 6.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_constant_input_maps_to_zero() {
        let mut v = vec![3.0, 3.0, 3.0];
        min_max_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn normalize_empty_is_noop() {
        let mut v: Vec<f64> = vec![];
        min_max_normalize(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn normalize_output_in_unit_interval() {
        let mut v = vec![-5.0, 0.0, 17.0, 3.0];
        min_max_normalize(&mut v);
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[2], 1.0);
    }
}
