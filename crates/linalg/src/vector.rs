//! Owned dense `f64` vector with the BLAS-1 operations the trainers need.

use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// A dense, heap-allocated `f64` vector.
///
/// This is a deliberate thin wrapper over `Vec<f64>` (it derefs to `[f64]`)
/// so that model code reads like the paper's equations:
///
/// ```
/// use rrc_linalg::DVector;
/// let u = DVector::from(vec![1.0, 2.0]);
/// let v = DVector::from(vec![3.0, -1.0]);
/// assert_eq!(u.dot(&v), 1.0); // uᵀv
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct DVector(Vec<f64>);

impl DVector {
    /// A zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DVector(vec![0.0; n])
    }

    /// A vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        DVector(vec![value; n])
    }

    /// Dimension of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Inner product `selfᵀ other`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot: dimension mismatch");
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// `self += alpha * other` (the BLAS `axpy`).
    #[inline]
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        assert_eq!(self.dim(), other.dim(), "axpy: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha`.
    #[inline]
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.0 {
            *a *= alpha;
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm — cheaper when only comparisons are needed.
    pub fn norm_sq(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum()
    }

    /// L1 norm `Σ|x_i|` (used by the Lasso penalty in STREC).
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|a| a.abs()).sum()
    }

    /// Element-wise difference `self - other` as a new vector.
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!(self.dim(), other.dim(), "sub: dimension mismatch");
        DVector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Element-wise sum `self + other` as a new vector.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.dim(), other.dim(), "add: dimension mismatch");
        DVector(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// True iff every component is finite (no NaN/±inf). The trainers assert
    /// this in debug builds after each SGD step.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|a| a.is_finite())
    }

    /// Borrow the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrow the underlying slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consume into the underlying `Vec`.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }
}

impl From<Vec<f64>> for DVector {
    fn from(v: Vec<f64>) -> Self {
        DVector(v)
    }
}

impl From<&[f64]> for DVector {
    fn from(v: &[f64]) -> Self {
        DVector(v.to_vec())
    }
}

impl FromIterator<f64> for DVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        DVector(iter.into_iter().collect())
    }
}

impl Deref for DVector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for DVector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for DVector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for DVector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl fmt::Debug for DVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DVector{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let z = DVector::zeros(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let f = DVector::filled(2, 1.5);
        assert_eq!(f.as_slice(), &[1.5, 1.5]);
        let c: DVector = (0..3).map(|i| i as f64).collect();
        assert_eq!(c.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn dot_axpy_scale() {
        let mut a = DVector::from(vec![1.0, 2.0, 3.0]);
        let b = DVector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b), 32.0);
        a.axpy(2.0, &b); // a = [9, 12, 15]
        assert_eq!(a.as_slice(), &[9.0, 12.0, 15.0]);
        a.scale(1.0 / 3.0);
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn norms() {
        let v = DVector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm_l1(), 7.0);
    }

    #[test]
    fn add_sub() {
        let a = DVector::from(vec![1.0, 2.0]);
        let b = DVector::from(vec![0.5, -0.5]);
        assert_eq!(a.sub(&b).as_slice(), &[0.5, 2.5]);
        assert_eq!(a.add(&b).as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn finiteness() {
        assert!(DVector::from(vec![1.0, -2.0]).is_finite());
        assert!(!DVector::from(vec![f64::NAN]).is_finite());
        assert!(!DVector::from(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dimension_mismatch_panics() {
        let a = DVector::zeros(2);
        let b = DVector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn indexing_and_deref() {
        let mut v = DVector::zeros(2);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        assert_eq!(v.iter().sum::<f64>(), 7.0); // Deref to slice
    }
}
