//! Minimal dense linear algebra substrate for the `repeat-rec` workspace.
//!
//! The Rust recommender-system / numerical ecosystem is thin, so every model
//! in this workspace (TS-PPR, FPMC, Cox proportional hazards, STREC) is built
//! on this small, dependency-free kernel instead of an external BLAS:
//!
//! * [`DVector`] — an owned dense `f64` vector with the handful of BLAS-1
//!   operations the trainers need (`dot`, `axpy`, `scale`, norms).
//! * [`DMatrix`] — a row-major dense matrix with `matvec`, rank-1 updates
//!   (the `u ⊗ (f_i − f_j)` update of Eq. 15 in the paper), and Frobenius
//!   norms.
//! * [`solve`] — LU with partial pivoting and Cholesky, used by the
//!   Newton–Raphson step of the Cox model and by STREC's IRLS variant.
//! * [`rng`] — deterministic Gaussian sampling (Box–Muller over any
//!   `rand::Rng`), used for the `N(0, σ²)` initialisation of latent factors.
//! * [`math`] — numerically-stable scalar helpers (`sigmoid`,
//!   `ln_sigmoid`, `logsumexp`).
//! * [`stats`] — summary statistics and min–max normalisation (Eq. 17).
//!
//! All operations are `f64`; the matrices involved are small (K×F with K, F
//! at most a few hundred), so clarity and determinism are preferred over
//! SIMD.

pub mod math;
pub mod matrix;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod tensor;
pub mod vector;

pub use math::{ln_sigmoid, logsumexp, sigmoid};
pub use matrix::DMatrix;
pub use rng::GaussianSampler;
pub use solve::{cholesky_solve, lu_solve, SolveError};
pub use stats::{min_max_normalize, Summary};
pub use tensor::Tensor3;
pub use vector::DVector;
