//! The bounded cache proper: residency, eviction, spill, harvest.

use crate::codec::{decode_record, encode_record};
use crate::entry::{UserEntry, UserFactors};
use rrc_core::TsPprModel;
use rrc_sequence::{UserId, WindowState};
use rrc_store::{SegmentLog, StoreError};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which entry goes first when the budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// CLOCK second-chance: one ref bit per entry, a rotating hand. O(1)
    /// amortised and scan-resistant enough for skewed replay traffic.
    #[default]
    Clock,
    /// Strict least-recently-used (ordered by touch tick). O(log n) per
    /// touch; mostly a reference policy for experiments.
    Lru,
}

impl EvictionPolicy {
    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<EvictionPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "clock" => Some(EvictionPolicy::Clock),
            "lru" => Some(EvictionPolicy::Lru),
            _ => None,
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EvictionPolicy::Clock => "clock",
            EvictionPolicy::Lru => "lru",
        })
    }
}

/// Tier construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierConfig {
    /// Capacity `|W|` for freshly created user windows.
    pub window: usize,
    /// Resident byte budget; `None` means unbounded (no spill file, the
    /// tier degenerates to a plain map — the classic serving path).
    pub budget_bytes: Option<usize>,
    /// Eviction order under pressure.
    pub policy: EvictionPolicy,
    /// Where the spill segment lives. Required when a budget is set.
    pub spill_path: Option<PathBuf>,
    /// Delete the segment file when the tier drops (spill files are
    /// per-process scratch unless the caller says otherwise).
    pub remove_spill_on_drop: bool,
}

impl TierConfig {
    /// An unbounded tier (no budget, no spill file).
    pub fn unbounded(window: usize) -> Self {
        TierConfig {
            window,
            budget_bytes: None,
            policy: EvictionPolicy::default(),
            spill_path: None,
            remove_spill_on_drop: true,
        }
    }

    /// A bounded tier spilling to `spill_path`.
    pub fn bounded(window: usize, budget_bytes: usize, spill_path: PathBuf) -> Self {
        TierConfig {
            window,
            budget_bytes: Some(budget_bytes),
            policy: EvictionPolicy::default(),
            spill_path: Some(spill_path),
            remove_spill_on_drop: true,
        }
    }
}

/// Counters and latency samples accumulated since the last
/// [`UserStateTier::take_delta`] — the bridge to the caller's metrics
/// registry without coupling this crate to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierDelta {
    /// `get_or_load` calls served from RAM.
    pub hits: u64,
    /// `get_or_load` calls that faulted (spilled reload or brand-new user).
    pub misses: u64,
    /// Entries pushed out under budget pressure.
    pub evictions: u64,
    /// The user ids evicted, in eviction order — forensic hooks (flight
    /// recorders) want *who* was pushed out, not just how many.
    pub evicted_users: Vec<u32>,
    /// Nanoseconds per eviction spill (encode + segment append).
    pub spill_ns: Vec<u64>,
    /// Nanoseconds per cold reload (segment read + decode + rebase).
    pub load_ns: Vec<u64>,
}

impl TierDelta {
    /// True when nothing happened since the last drain.
    pub fn is_empty(&self) -> bool {
        self.hits == 0 && self.misses == 0 && self.evictions == 0
    }

    /// Fold another delta into this one.
    pub fn merge(&mut self, other: TierDelta) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.evicted_users.extend(other.evicted_users);
        self.spill_ns.extend(other.spill_ns);
        self.load_ns.extend(other.load_ns);
    }
}

/// The per-shard bounded user-state cache. See the crate docs for the
/// residency/spill contract.
#[derive(Debug)]
pub struct UserStateTier {
    entries: HashMap<u32, UserEntry>,
    /// CLOCK hand order: every resident user id exactly once.
    clock: VecDeque<u32>,
    /// LRU order: touch tick → user id (only maintained under `Lru`).
    lru: BTreeMap<u64, u32>,
    policy: EvictionPolicy,
    tick: u64,
    budget: Option<usize>,
    segment: Option<SegmentLog>,
    /// The published snapshot spill records rebase against on reload.
    base: Arc<TsPprModel>,
    /// The shard's installed model version, stamped into spill records.
    version: u64,
    window_capacity: usize,
    resident_bytes: usize,
    delta: TierDelta,
}

impl UserStateTier {
    /// Build a tier over the given published snapshot.
    pub fn new(
        config: TierConfig,
        base: Arc<TsPprModel>,
        version: u64,
    ) -> Result<Self, StoreError> {
        let segment = match (&config.budget_bytes, &config.spill_path) {
            (Some(_), None) => {
                return Err(StoreError::Schema {
                    detail: "a bounded tier needs a spill path".to_string(),
                })
            }
            (_, Some(path)) => {
                let mut seg = SegmentLog::open(path)?;
                seg.set_remove_on_drop(config.remove_spill_on_drop);
                Some(seg)
            }
            (None, None) => None,
        };
        Ok(UserStateTier {
            entries: HashMap::new(),
            clock: VecDeque::new(),
            lru: BTreeMap::new(),
            policy: config.policy,
            tick: 0,
            budget: config.budget_bytes,
            segment,
            base,
            version,
            window_capacity: config.window,
            resident_bytes: 0,
            delta: TierDelta::default(),
        })
    }

    /// Borrow a user's window and factors, faulting the entry in from the
    /// spill segment (or creating a fresh one) when not resident. Counts a
    /// hit or a miss. Call [`note_access`](Self::note_access) once the
    /// borrows are released to re-account bytes and enforce the budget.
    pub fn get_or_load(
        &mut self,
        user: UserId,
    ) -> Result<(&mut WindowState, &mut Option<UserFactors>), StoreError> {
        let id = user.0;
        if self.entries.contains_key(&id) {
            self.delta.hits += 1;
        } else {
            self.delta.misses += 1;
            let entry = match self.load_spilled(id)? {
                Some(e) => e,
                None => UserEntry::new(WindowState::new(self.window_capacity), None),
            };
            self.insert_entry(id, entry);
        }
        self.touch(id);
        let e = self.entries.get_mut(&id).expect("entry just ensured");
        Ok((&mut e.window, &mut e.factors))
    }

    /// Mark `user` recently used without borrowing its state.
    pub fn touch(&mut self, id: u32) {
        let Some(e) = self.entries.get_mut(&id) else {
            return;
        };
        e.referenced = true;
        if self.policy == EvictionPolicy::Lru {
            self.lru.remove(&e.tick);
            self.tick += 1;
            e.tick = self.tick;
            self.lru.insert(e.tick, id);
        }
    }

    /// Re-account `user`'s footprint after its borrows were used (windows
    /// grow, factors materialise), then evict down to the budget.
    pub fn note_access(&mut self, user: UserId) -> Result<(), StoreError> {
        if let Some(e) = self.entries.get_mut(&user.0) {
            let cost = e.cost();
            self.resident_bytes = self.resident_bytes + cost - e.bytes;
            e.bytes = cost;
        }
        self.enforce_budget()
    }

    /// Seed a resident entry at startup (no hit/miss accounting). The
    /// caller is expected to [`enforce_budget`](Self::enforce_budget) once
    /// after bulk seeding.
    pub fn seed_window(&mut self, user: u32, window: WindowState) {
        self.insert_entry(user, UserEntry::new(window, None));
    }

    /// Evict until resident bytes fit the budget (no-op when unbounded).
    pub fn enforce_budget(&mut self) -> Result<(), StoreError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        while self.resident_bytes > budget && !self.entries.is_empty() {
            self.evict_one()?;
        }
        if let Some(seg) = &mut self.segment {
            seg.maybe_compact()?;
        }
        Ok(())
    }

    /// Collect every user's accumulated online-SGD delta — resident *and*
    /// spilled — as sorted `(id, cur − base)` rows, then clear all factor
    /// state (the delta-merge rule: a harvest owns every delta exactly
    /// once). The segment is rewritten atomically with window-only
    /// records, which doubles as a full compaction.
    #[allow(clippy::type_complexity)]
    pub fn harvest(&mut self) -> Result<(Vec<(u32, Vec<f64>)>, Vec<(u32, Vec<f64>)>), StoreError> {
        let mut users: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut transforms: Vec<(u32, Vec<f64>)> = Vec::new();
        let mut collect = |id: u32, fx: &UserFactors| {
            let du = fx.diff_u();
            if du.iter().any(|&x| x != 0.0) {
                users.push((id, du));
            }
            let da = fx.diff_a();
            if da.iter().any(|&x| x != 0.0) {
                transforms.push((id, da));
            }
        };
        for (&id, e) in self.entries.iter_mut() {
            if let Some(fx) = e.factors.take() {
                collect(id, &fx);
                let cost = e.cost();
                self.resident_bytes = self.resident_bytes + cost - e.bytes;
                e.bytes = cost;
            }
        }
        if let Some(seg) = &mut self.segment {
            if !seg.is_empty() {
                let k = self.base.k();
                let f = self.base.f_dim();
                let mut rewritten = Vec::with_capacity(seg.len());
                for (id, data) in seg.entries()? {
                    let rec = decode_record(&data, k, f)?;
                    match rec.factors {
                        Some(fx) => {
                            collect(id, &fx);
                            rewritten.push((id, encode_record(rec.version, &rec.window, None)));
                        }
                        None => rewritten.push((id, data)),
                    }
                }
                seg.replace_all(&rewritten)?;
            }
        }
        users.sort_by_key(|(id, _)| *id);
        transforms.sort_by_key(|(id, _)| *id);
        Ok((users, transforms))
    }

    /// Switch to a freshly published snapshot: rebase resident factor rows
    /// (same arithmetic as the overlay) and bump the version stamp.
    /// Spilled records written under the previous version rebase lazily on
    /// their next reload.
    pub fn install(&mut self, base: Arc<TsPprModel>, version: u64) {
        for (&id, e) in self.entries.iter_mut() {
            if let Some(fx) = &mut e.factors {
                fx.rebase(base.user_factor(UserId(id)), base.transform(UserId(id)));
            }
        }
        self.base = base;
        self.version = version;
    }

    /// Every known user's window — resident and spilled — sorted by id.
    pub fn export_windows(&mut self) -> Result<Vec<(u32, WindowState)>, StoreError> {
        let mut out: Vec<(u32, WindowState)> = self
            .entries
            .iter()
            .map(|(&id, e)| (id, e.window.clone()))
            .collect();
        if let Some(seg) = &mut self.segment {
            let k = self.base.k();
            let f = self.base.f_dim();
            for (id, data) in seg.entries()? {
                let rec = decode_record(&data, k, f)?;
                out.push((id, rec.window));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// Drain the hit/miss/eviction counters and latency samples.
    pub fn take_delta(&mut self) -> TierDelta {
        std::mem::take(&mut self.delta)
    }

    /// The snapshot reloads rebase against.
    pub fn base(&self) -> &Arc<TsPprModel> {
        &self.base
    }

    /// Estimated resident footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured budget, when bounded.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Number of resident users.
    pub fn resident_users(&self) -> usize {
        self.entries.len()
    }

    /// Number of users currently parked in the spill segment.
    pub fn spilled_users(&self) -> usize {
        self.segment.as_ref().map_or(0, |s| s.len())
    }

    /// Total users known to this tier (resident ∪ spilled — disjoint sets).
    pub fn total_users(&self) -> usize {
        self.resident_users() + self.spilled_users()
    }

    /// Whether `user` is resident right now (diagnostics).
    pub fn is_resident(&self, user: u32) -> bool {
        self.entries.contains_key(&user)
    }

    /// Spill segment file size, when bounded.
    pub fn spill_file_bytes(&self) -> usize {
        self.segment.as_ref().map_or(0, |s| s.file_bytes())
    }

    fn insert_entry(&mut self, id: u32, entry: UserEntry) {
        self.resident_bytes += entry.bytes;
        self.clock.push_back(id);
        if self.policy == EvictionPolicy::Lru {
            self.tick += 1;
            let mut entry = entry;
            entry.tick = self.tick;
            self.lru.insert(self.tick, id);
            let old = self.entries.insert(id, entry);
            debug_assert!(old.is_none(), "entry {id} inserted twice");
        } else {
            let old = self.entries.insert(id, entry);
            debug_assert!(old.is_none(), "entry {id} inserted twice");
        }
    }

    fn load_spilled(&mut self, id: u32) -> Result<Option<UserEntry>, StoreError> {
        let Some(seg) = &mut self.segment else {
            return Ok(None);
        };
        let Some(data) = seg.get(id)? else {
            return Ok(None);
        };
        let _prof = rrc_obs::ProfGuard::enter("reload");
        let t0 = Instant::now();
        let rec = decode_record(&data, self.base.k(), self.base.f_dim())?;
        let mut factors = rec.factors;
        if rec.version != self.version {
            // Exactly one hot-swap can have passed while spilled (each
            // harvest clears spilled factors), so one rebase against the
            // current snapshot replays what a resident row would have done.
            if let Some(fx) = &mut factors {
                fx.rebase(
                    self.base.user_factor(UserId(id)),
                    self.base.transform(UserId(id)),
                );
            }
        }
        seg.remove(id);
        self.delta.load_ns.push(t0.elapsed().as_nanos() as u64);
        Ok(Some(UserEntry::new(rec.window, factors)))
    }

    fn evict_one(&mut self) -> Result<(), StoreError> {
        let victim = match self.policy {
            EvictionPolicy::Clock => loop {
                let Some(id) = self.clock.pop_front() else {
                    return Err(StoreError::Schema {
                        detail: "eviction requested from an empty clock ring".to_string(),
                    });
                };
                match self.entries.get_mut(&id) {
                    None => continue,
                    Some(e) if e.referenced => {
                        e.referenced = false;
                        self.clock.push_back(id);
                    }
                    Some(_) => break id,
                }
            },
            EvictionPolicy::Lru => {
                let (&tick, &id) = self.lru.iter().next().expect("lru order nonempty");
                self.lru.remove(&tick);
                id
            }
        };
        let entry = self.entries.remove(&victim).expect("victim resident");
        self.resident_bytes -= entry.bytes;
        let seg = self
            .segment
            .as_mut()
            .expect("bounded tier always has a segment");
        let _prof = rrc_obs::ProfGuard::enter("spill");
        let t0 = Instant::now();
        let rec = encode_record(self.version, &entry.window, entry.factors.as_ref());
        seg.append(victim, &rec)?;
        self.delta.spill_ns.push(t0.elapsed().as_nanos() as u64);
        self.delta.evictions += 1;
        self.delta.evicted_users.push(victim);
        Ok(())
    }
}
