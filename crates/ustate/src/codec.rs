//! The spill-record byte layout (`USEG1` record payloads).
//!
//! One record is one user's complete serving state:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  model version the record was written under (u64)
//!      8     4  window capacity (u32)
//!     12     4  flags (bit 0: factors present)
//!     16     8  window time step `t` (u64)
//!     24     4  window event count (u32)
//!     28     4  last-seen entry count (u32)
//!     32     4  latent dimension K (u32; 0 when no factors)
//!     36     4  feature dimension F (u32; 0 when no factors)
//!     40     …  window events, oldest→newest (u32 each), zero-pad to 8
//!      …     …  last-seen item ids, sorted (u32 each), zero-pad to 8
//!      …     …  last-seen steps, same order (u64 each)
//!      …     …  factors when flagged: cur_u, base_u (K f64s each),
//!               then cur_a, base_a (K·F f64s each, row-major)
//! ```
//!
//! Factors are stored as **absolute** current *and* base rows (not the
//! delta): a same-version reload restores them verbatim — bit-identical to
//! never-evicted state — and a reload across one hot-swap rebases with the
//! stored base exactly as a resident copy-on-write row would have.
//! Floats round-trip through `to_le_bytes`/`from_le_bytes`, which is
//! lossless for every bit pattern.
//!
//! Decoding validates every length and flag against the declared counts
//! and the tier's expected dimensions; any mismatch is a typed
//! [`StoreError`], never a partially-built state.

use crate::entry::UserFactors;
use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, WindowState};
use rrc_store::StoreError;

const FIXED_LEN: usize = 40;
const FLAG_FACTORS: u32 = 1;

/// A decoded spill record.
#[derive(Debug, Clone)]
pub struct SpillRecord {
    /// The shard model version the state was serialized under.
    pub version: u64,
    /// The reconstructed window (logically identical to the spilled one).
    pub window: WindowState,
    /// Materialised factors, when the user had taken online-SGD writes.
    pub factors: Option<UserFactors>,
}

fn bad(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        section: "USEG".to_string(),
        detail: detail.into(),
    }
}

/// Serialize one user's state.
pub fn encode_record(version: u64, window: &WindowState, factors: Option<&UserFactors>) -> Vec<u8> {
    let events: Vec<ItemId> = window.events().collect();
    let last_seen = window.last_seen_entries();
    let (k, f) = factors.map_or((0usize, 0usize), |fx| {
        (fx.cur_u.len(), fx.cur_a.as_slice().len() / fx.cur_u.len())
    });
    let mut out =
        Vec::with_capacity(FIXED_LEN + 4 * events.len() + 12 * last_seen.len() + 16 * (k + k * f));
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(window.capacity() as u32).to_le_bytes());
    let flags = if factors.is_some() { FLAG_FACTORS } else { 0 };
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(window.time() as u64).to_le_bytes());
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    out.extend_from_slice(&(last_seen.len() as u32).to_le_bytes());
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(f as u32).to_le_bytes());
    for item in &events {
        out.extend_from_slice(&item.0.to_le_bytes());
    }
    pad8(&mut out);
    for (item, _) in &last_seen {
        out.extend_from_slice(&item.0.to_le_bytes());
    }
    pad8(&mut out);
    for (_, step) in &last_seen {
        out.extend_from_slice(&(*step as u64).to_le_bytes());
    }
    if let Some(fx) = factors {
        for row in [&fx.cur_u, &fx.base_u] {
            for x in row {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        for mat in [&fx.cur_a, &fx.base_a] {
            for x in mat.as_slice() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    out
}

/// Deserialize one user's state, validating the layout end to end.
/// `expect_k`/`expect_f` are the serving model's dimensions; a record with
/// factors of any other shape is rejected.
pub fn decode_record(
    data: &[u8],
    expect_k: usize,
    expect_f: usize,
) -> Result<SpillRecord, StoreError> {
    let mut r = Reader { data, off: 0 };
    if data.len() < FIXED_LEN {
        return Err(bad("record shorter than its fixed header"));
    }
    let version = r.u64()?;
    let capacity = r.u32()? as usize;
    let flags = r.u32()?;
    if flags & !FLAG_FACTORS != 0 {
        return Err(bad(format!("unsupported record flags {flags:#x}")));
    }
    let t = r.u64()? as usize;
    let buf_len = r.u32()? as usize;
    let ls_len = r.u32()? as usize;
    let k = r.u32()? as usize;
    let f = r.u32()? as usize;
    if capacity == 0 {
        return Err(bad("zero window capacity"));
    }
    if buf_len > capacity {
        return Err(bad("more window events than capacity"));
    }
    if t < buf_len {
        return Err(bad("time step precedes window contents"));
    }
    let mut events = Vec::with_capacity(buf_len);
    for _ in 0..buf_len {
        events.push(ItemId(r.u32()?));
    }
    r.pad8()?;
    let mut items = Vec::with_capacity(ls_len);
    for _ in 0..ls_len {
        items.push(ItemId(r.u32()?));
    }
    r.pad8()?;
    let mut last_seen = Vec::with_capacity(ls_len);
    for item in items {
        let step = r.u64()? as usize;
        if step >= t {
            return Err(bad("last-seen step at or past the current time"));
        }
        if let Some(&(prev, _)) = last_seen.last() {
            if item <= prev {
                return Err(bad("last-seen items not strictly sorted"));
            }
        }
        last_seen.push((item, step));
    }
    let factors = if flags & FLAG_FACTORS != 0 {
        if k != expect_k || f != expect_f {
            return Err(bad(format!(
                "factor dimensions {k}×{f} do not match the serving model {expect_k}×{expect_f}"
            )));
        }
        let cur_u = r.f64s(k)?;
        let base_u = r.f64s(k)?;
        let cur_a = DMatrix::from_vec(k, f, r.f64s(k * f)?);
        let base_a = DMatrix::from_vec(k, f, r.f64s(k * f)?);
        Some(UserFactors::from_parts(cur_u, base_u, cur_a, base_a))
    } else {
        if k != 0 || f != 0 {
            return Err(bad("factor dimensions declared without factors"));
        }
        None
    };
    if r.off != data.len() {
        return Err(bad("trailing bytes after record"));
    }
    let window = WindowState::from_parts(capacity, t, &events, &last_seen);
    Ok(SpillRecord {
        version,
        window,
        factors,
    })
}

struct Reader<'a> {
    data: &'a [u8],
    off: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| bad("truncated record"))?;
        let s = &self.data[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, StoreError> {
        let bytes = self.take(8 * n)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn pad8(&mut self) -> Result<(), StoreError> {
        let pad = self.off.next_multiple_of(8) - self.off;
        if self.take(pad)?.iter().any(|&b| b != 0) {
            return Err(bad("nonzero alignment padding"));
        }
        Ok(())
    }
}

fn pad8(out: &mut Vec<u8>) {
    let pad = out.len().next_multiple_of(8) - out.len();
    out.extend(std::iter::repeat_n(0u8, pad));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_window() -> WindowState {
        let mut w = WindowState::new(4);
        for i in [7u32, 1, 2, 1, 9, 2] {
            w.push(ItemId(i));
        }
        w
    }

    fn sample_factors(k: usize, f: usize) -> UserFactors {
        let base_u: Vec<f64> = (0..k).map(|i| 0.1 * i as f64 - 0.3).collect();
        let base_a = DMatrix::from_vec(k, f, (0..k * f).map(|i| 0.01 * i as f64).collect());
        let mut fx = UserFactors::new(&base_u, &base_a);
        fx.cur_u[0] += 0.5;
        fx.cur_a.as_mut_slice()[1] -= 0.25;
        fx
    }

    #[test]
    fn window_only_round_trip() {
        let w = sample_window();
        let bytes = encode_record(3, &w, None);
        let rec = decode_record(&bytes, 8, 4).unwrap();
        assert_eq!(rec.version, 3);
        assert!(rec.factors.is_none());
        assert_eq!(rec.window.time(), w.time());
        assert_eq!(
            rec.window.events().collect::<Vec<_>>(),
            w.events().collect::<Vec<_>>()
        );
        assert_eq!(rec.window.last_seen_entries(), w.last_seen_entries());
    }

    #[test]
    fn factors_round_trip_bitwise() {
        let w = sample_window();
        let fx = sample_factors(8, 4);
        let bytes = encode_record(11, &w, Some(&fx));
        let rec = decode_record(&bytes, 8, 4).unwrap();
        let got = rec.factors.unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got.cur_u), bits(&fx.cur_u));
        assert_eq!(bits(&got.base_u), bits(&fx.base_u));
        assert_eq!(bits(got.cur_a.as_slice()), bits(fx.cur_a.as_slice()));
        assert_eq!(bits(got.base_a.as_slice()), bits(fx.base_a.as_slice()));
    }

    #[test]
    fn dimension_mismatch_is_typed_error() {
        let w = sample_window();
        let fx = sample_factors(8, 4);
        let bytes = encode_record(0, &w, Some(&fx));
        assert!(matches!(
            decode_record(&bytes, 16, 4),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let w = sample_window();
        let fx = sample_factors(4, 3);
        let bytes = encode_record(9, &w, Some(&fx));
        for cut in 0..bytes.len() {
            assert!(
                decode_record(&bytes[..cut], 4, 3).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }
}
