//! One resident user's cached state.

use rrc_linalg::DMatrix;
use rrc_sequence::WindowState;

/// A user's materialised factor rows: current and base copies of the
/// latent `u` row and the transform `A_u`, mirroring the shard overlay's
/// copy-on-write discipline. `cur − base` is the accumulated online-SGD
/// delta awaiting the next harvest.
#[derive(Debug, Clone, PartialEq)]
pub struct UserFactors {
    pub(crate) base_u: Vec<f64>,
    pub(crate) cur_u: Vec<f64>,
    pub(crate) base_a: DMatrix,
    pub(crate) cur_a: DMatrix,
}

impl UserFactors {
    /// Materialise from base rows (first SGD write touching this user).
    pub fn new(base_u: &[f64], base_a: &DMatrix) -> Self {
        UserFactors {
            base_u: base_u.to_vec(),
            cur_u: base_u.to_vec(),
            base_a: base_a.clone(),
            cur_a: base_a.clone(),
        }
    }

    /// Rebuild from absolute spilled rows.
    pub(crate) fn from_parts(
        cur_u: Vec<f64>,
        base_u: Vec<f64>,
        cur_a: DMatrix,
        base_a: DMatrix,
    ) -> Self {
        UserFactors {
            base_u,
            cur_u,
            base_a,
            cur_a,
        }
    }

    /// The current `u` row.
    pub fn u(&self) -> &[f64] {
        &self.cur_u
    }

    /// The current transform `A_u`.
    pub fn a(&self) -> &DMatrix {
        &self.cur_a
    }

    /// `cur − base` for the `u` row.
    pub(crate) fn diff_u(&self) -> Vec<f64> {
        self.cur_u
            .iter()
            .zip(&self.base_u)
            .map(|(c, b)| c - b)
            .collect()
    }

    /// `cur − base` for `A_u`, flattened row-major.
    pub(crate) fn diff_a(&self) -> Vec<f64> {
        self.cur_a
            .as_slice()
            .iter()
            .zip(self.base_a.as_slice())
            .map(|(c, b)| c - b)
            .collect()
    }

    /// Carry the accumulated delta onto fresh base rows — identical
    /// arithmetic to the overlay's `CowRow::rebase`, which is what makes a
    /// reloaded row byte-equal to one that stayed resident across a swap.
    pub(crate) fn rebase(&mut self, new_u: &[f64], new_a: &DMatrix) {
        for ((c, b), nb) in self.cur_u.iter_mut().zip(&mut self.base_u).zip(new_u) {
            *c = *nb + (*c - *b);
            *b = *nb;
        }
        let cur = self.cur_a.as_mut_slice();
        let base = self.base_a.as_mut_slice();
        for ((c, b), nb) in cur.iter_mut().zip(base.iter_mut()).zip(new_a.as_slice()) {
            *c = *nb + (*c - *b);
            *b = *nb;
        }
    }

    /// Resident footprint of the four owned buffers.
    pub(crate) fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + 8 * (self.cur_u.len() + self.base_u.len())
            + 8 * (self.cur_a.as_slice().len() + self.base_a.as_slice().len())
    }
}

/// One resident cache entry.
#[derive(Debug)]
pub(crate) struct UserEntry {
    pub(crate) window: WindowState,
    /// `None` until online SGD first writes this user (frozen serving
    /// never materialises factors, so frozen spills are window-only).
    pub(crate) factors: Option<UserFactors>,
    /// CLOCK second-chance bit, set on every touch.
    pub(crate) referenced: bool,
    /// LRU recency stamp (tier-global monotonic tick).
    pub(crate) tick: u64,
    /// Cached cost from the last accounting pass.
    pub(crate) bytes: usize,
}

impl UserEntry {
    pub(crate) fn new(window: WindowState, factors: Option<UserFactors>) -> Self {
        let mut e = UserEntry {
            window,
            factors,
            referenced: true,
            tick: 0,
            bytes: 0,
        };
        e.bytes = e.cost();
        e
    }

    /// Deterministic resident-bytes estimate: map-entry overhead plus the
    /// window's and factors' owned buffers.
    pub(crate) fn cost(&self) -> usize {
        const MAP_ENTRY_OVERHEAD: usize = 48;
        MAP_ENTRY_OVERHEAD
            + self.window.approx_bytes()
            + self.factors.as_ref().map_or(0, |f| f.approx_bytes())
    }
}
