//! **rrc-ustate** — the bounded per-shard user-state tier.
//!
//! Every user a shard serves carries live state: the recency window
//! `W_{ut}` (Defs 1–2 of the paper), the latent factor `u`, and the
//! per-user transform `A_u`. Keeping all of it resident forever is the
//! scale ceiling — at 10⁶–10⁷ users × `(K + K·F)` f64s that is tens of
//! gigabytes per process. Repeat-consumption traffic is heavily skewed
//! toward a hot user set (the same temporal-recency effect TS-PPR models),
//! so this crate keeps a *bounded* hot tier in RAM and spills cold users to
//! a CRC-checked [`rrc_store::SegmentLog`] on disk:
//!
//! * [`UserStateTier`] — the cache: [`get_or_load`](UserStateTier::get_or_load)
//!   returns a user's window + factors, faulting them in from the spill
//!   file when cold; [`enforce_budget`](UserStateTier::enforce_budget)
//!   evicts by CLOCK (default) or strict LRU until resident bytes fit the
//!   configured budget.
//! * [`TierParams`] — a [`ModelParams`](rrc_core::ModelParams) adapter
//!   that serves user rows from the tier entry and item rows from any
//!   other parameter store (the shard's copy-on-write overlay), so the
//!   exact same scoring/SGD code runs bounded and unbounded.
//! * [`codec`] — the spill-record layout. Records store the *absolute*
//!   current and base factor rows plus the model version they were
//!   spilled under, so eviction + reload is **bit-identical** to
//!   never-evicted state: same-version reloads restore verbatim, and a
//!   reload across one hot-swap replays the exact `cur = new_base +
//!   (cur − base)` rebase arithmetic a resident row would have seen.
//!
//! Delta-merge-before-evict rule: a user's in-flight online-SGD delta
//! (`cur − base`) is never dropped — eviction serializes it into the
//! record, [`UserStateTier::harvest`] collects it from resident *and*
//! spilled entries alike, and the post-harvest segment rewrite (which
//! doubles as compaction) clears harvested deltas atomically.

mod codec;
mod entry;
mod params;
mod tier;

pub use codec::{decode_record, encode_record, SpillRecord};
pub use entry::UserFactors;
pub use params::TierParams;
pub use tier::{EvictionPolicy, TierConfig, TierDelta, UserStateTier};
