//! [`ModelParams`] over a tier entry + any item-side parameter store.
//!
//! A shard scores and learns through the same `rrc_core::online` code
//! whether user state is bounded or not. [`TierParams`] makes that work:
//! the *user* rows (`u`, `A_u`) come from the borrowed tier entry —
//! materialised copy-on-write on first SGD write, exactly like the shard
//! overlay does — while *item* rows delegate to the wrapped store (in the
//! engine, the copy-on-write [`ModelOverlay`]). Reads for a user that has
//! never been written pass through to the published snapshot.
//!
//! [`ModelOverlay`]: https://docs.rs/rrc-serve

use crate::entry::UserFactors;
use rrc_core::{ModelParams, TsPprModel};
use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, UserId};

/// A per-request parameter view: one user's tier state + a shared item
/// store. Only the borrowed user's rows may be touched; the scoring and
/// SGD paths never reference another user.
pub struct TierParams<'a, I: ModelParams> {
    user: u32,
    factors: &'a mut Option<UserFactors>,
    base: &'a TsPprModel,
    items: &'a mut I,
}

impl<'a, I: ModelParams> TierParams<'a, I> {
    /// Build the view for `user`. `base` is the published snapshot the
    /// factors materialise from; `items` serves every item row.
    pub fn new(
        user: UserId,
        factors: &'a mut Option<UserFactors>,
        base: &'a TsPprModel,
        items: &'a mut I,
    ) -> Self {
        TierParams {
            user: user.0,
            factors,
            base,
            items,
        }
    }

    fn materialize(&mut self) {
        if self.factors.is_none() {
            let user = UserId(self.user);
            *self.factors = Some(UserFactors::new(
                self.base.user_factor(user),
                self.base.transform(user),
            ));
        }
    }
}

impl<I: ModelParams> ModelParams for TierParams<'_, I> {
    fn k(&self) -> usize {
        self.base.k()
    }

    fn f_dim(&self) -> usize {
        self.base.f_dim()
    }

    fn user_factor(&self, user: UserId) -> &[f64] {
        debug_assert_eq!(user.0, self.user, "tier params serve one user");
        match self.factors.as_ref() {
            Some(fx) => &fx.cur_u,
            None => self.base.user_factor(user),
        }
    }

    fn item_factor(&self, item: ItemId) -> &[f64] {
        self.items.item_factor(item)
    }

    fn transform(&self, user: UserId) -> &DMatrix {
        debug_assert_eq!(user.0, self.user, "tier params serve one user");
        match self.factors.as_ref() {
            Some(fx) => &fx.cur_a,
            None => self.base.transform(user),
        }
    }

    fn user_factor_mut(&mut self, user: UserId) -> &mut [f64] {
        debug_assert_eq!(user.0, self.user, "tier params serve one user");
        self.materialize();
        &mut self.factors.as_mut().expect("just materialised").cur_u
    }

    fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64] {
        self.items.item_factor_mut(item)
    }

    fn transform_mut(&mut self, user: UserId) -> &mut DMatrix {
        debug_assert_eq!(user.0, self.user, "tier params serve one user");
        self.materialize();
        &mut self.factors.as_mut().expect("just materialised").cur_a
    }
}
