//! The tier's core contract, tested end to end:
//!
//! 1. **Evict→reload bit-exactness** — a budget so tight that users are
//!    constantly spilled and reloaded must leave every window, every `u`
//!    row, every `A_u`, every recommendation, and the item store
//!    byte-identical to an unbounded run of the same event stream
//!    (proptest over random streams, frozen and learning).
//! 2. **Budget invariant** — resident bytes ≤ budget after every event.
//! 3. **Harvest equivalence** — deltas collected from spilled entries
//!    equal the resident ones, and a hot-swap while spilled rebases
//!    exactly like a resident row.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::{observe_single, recommend_single, OnlineConfig, TsPprModel};
use rrc_features::{FeaturePipeline, TrainStats};
use rrc_sequence::{Dataset, ItemId, Sequence, UserId};
use rrc_ustate::{TierConfig, TierParams, UserStateTier};
use std::path::PathBuf;
use std::sync::Arc;

const USERS: usize = 12;
const ITEMS: usize = 20;
const K: usize = 4;
const WINDOW: usize = 8;
const TOPN: usize = 5;

fn spill_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rrc_ustate_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.useg"))
}

fn fixture() -> (Arc<TsPprModel>, FeaturePipeline, TrainStats, OnlineConfig) {
    let mut rng = StdRng::seed_from_u64(42);
    let pipeline = FeaturePipeline::standard();
    let model = TsPprModel::init(&mut rng, USERS, ITEMS, K, pipeline.len(), 0.1, 0.05);
    let train = Dataset::new(
        vec![Sequence::from_raw(
            (0..40u32).map(|i| i % ITEMS as u32).collect(),
        )],
        ITEMS,
    );
    let stats = TrainStats::compute(&train, WINDOW);
    let cfg = OnlineConfig {
        window: WINDOW,
        omega: 2,
        negatives_per_event: 2,
        ..OnlineConfig::default()
    };
    (Arc::new(model), pipeline, stats, cfg)
}

/// Replay `ops` through a tier, returning a complete bitwise fingerprint:
/// per-event recommendations, final windows, harvested deltas, and the
/// item-side store.
/// (user, len, events, last-seen entries) — one exported window.
type WindowDump = (u32, usize, Vec<u32>, Vec<(u32, usize)>);

struct RunOutcome {
    recs: Vec<Vec<u32>>,
    windows: Vec<WindowDump>,
    user_diffs: Vec<(u32, Vec<u64>)>,
    transform_diffs: Vec<(u32, Vec<u64>)>,
    item_bits: Vec<u64>,
    max_resident: usize,
}

fn run(ops: &[(u32, u32)], budget: Option<usize>, learn: bool, spill_name: &str) -> RunOutcome {
    let (model, pipeline, stats, mut cfg) = fixture();
    if !learn {
        cfg.negatives_per_event = 0;
    }
    let config = match budget {
        Some(b) => TierConfig::bounded(WINDOW, b, spill_path(spill_name)),
        None => TierConfig::unbounded(WINDOW),
    };
    if let Some(p) = &config.spill_path {
        std::fs::remove_file(p).ok();
    }
    let mut tier = UserStateTier::new(config, model.clone(), 1).unwrap();
    let mut items = (*model).clone();
    let mut rng = StdRng::seed_from_u64(9);
    let mut recs = Vec::new();
    let mut max_resident = 0usize;
    for &(user, item) in ops {
        let user = UserId(user);
        let base = tier.base().clone();
        let (window, factors) = tier.get_or_load(user).unwrap();
        let mut params = TierParams::new(user, factors, &base, &mut items);
        observe_single(
            &mut params,
            &pipeline,
            &stats,
            &cfg,
            user,
            window,
            &mut rng,
            ItemId(item),
        );
        let top = recommend_single(&params, &pipeline, &stats, cfg.omega, user, window, TOPN);
        recs.push(top.into_iter().map(|i| i.0).collect());
        tier.note_access(user).unwrap();
        if let Some(b) = budget {
            assert!(
                tier.resident_bytes() <= b,
                "budget invariant violated: {} > {b}",
                tier.resident_bytes()
            );
        }
        max_resident = max_resident.max(tier.resident_bytes());
    }
    let windows = tier
        .export_windows()
        .unwrap()
        .into_iter()
        .map(|(id, w)| {
            (
                id,
                w.time(),
                w.events().map(|i| i.0).collect(),
                w.last_seen_entries()
                    .into_iter()
                    .map(|(i, s)| (i.0, s))
                    .collect(),
            )
        })
        .collect();
    let (users, transforms) = tier.harvest().unwrap();
    let bits = |rows: Vec<(u32, Vec<f64>)>| {
        rows.into_iter()
            .map(|(id, v)| (id, v.into_iter().map(f64::to_bits).collect()))
            .collect::<Vec<(u32, Vec<u64>)>>()
    };
    RunOutcome {
        recs,
        windows,
        user_diffs: bits(users),
        transform_diffs: bits(transforms),
        item_bits: items
            .u_matrix()
            .as_slice()
            .iter()
            .chain(items.v_matrix().as_slice())
            .map(|x| x.to_bits())
            .collect(),
        max_resident,
    }
}

fn assert_same(a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.recs, b.recs, "recommendations diverged");
    assert_eq!(a.windows, b.windows, "windows diverged");
    assert_eq!(a.user_diffs, b.user_diffs, "user deltas diverged");
    assert_eq!(
        a.transform_diffs, b.transform_diffs,
        "transform deltas diverged"
    );
    assert_eq!(a.item_bits, b.item_bits, "item store diverged");
}

fn op_stream() -> impl Strategy<Value = Vec<(u32, u32)>> {
    // Skewed toward a hot user set so repeats (and thus SGD) happen.
    prop::collection::vec(
        (0..USERS as u32, 0..ITEMS as u32).prop_map(|(u, v)| (u % 5, v % 7)),
        20..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_run_is_bit_identical_frozen(ops in op_stream()) {
        let unbounded = run(&ops, None, false, "pf_unb");
        let bounded = run(&ops, Some(2_000), false, "pf_b");
        assert_same(&unbounded, &bounded);
        prop_assert!(bounded.max_resident <= 2_000);
    }

    #[test]
    fn bounded_run_is_bit_identical_learning(ops in op_stream()) {
        let unbounded = run(&ops, None, true, "pl_unb");
        let bounded = run(&ops, Some(3_000), true, "pl_b");
        assert_same(&unbounded, &bounded);
    }
}

#[test]
fn eviction_actually_happens_under_tight_budget() {
    let ops: Vec<(u32, u32)> = (0..200u32).map(|i| (i % 8, (i * 3) % 11)).collect();
    let (model, _pipeline, _stats, _cfg) = fixture();
    let config = TierConfig::bounded(WINDOW, 1_500, spill_path("evict_smoke"));
    std::fs::remove_file(config.spill_path.as_ref().unwrap()).ok();
    let mut tier = UserStateTier::new(config, model, 1).unwrap();
    for &(user, item) in &ops {
        let (window, _) = tier.get_or_load(UserId(user)).unwrap();
        window.push(ItemId(item));
        tier.note_access(UserId(user)).unwrap();
    }
    let delta = tier.take_delta();
    assert!(delta.evictions > 0, "budget never forced an eviction");
    assert!(delta.misses > 8, "reloads never happened");
    assert!(!delta.spill_ns.is_empty() && !delta.load_ns.is_empty());
    assert!(tier.spilled_users() + tier.resident_users() == 8);
}

#[test]
fn hot_swap_while_spilled_rebases_like_resident() {
    let (model, pipeline, stats, cfg) = fixture();
    let ops: Vec<(u32, u32)> = (0..60u32).map(|i| (i % 4, i % 5)).collect();

    // Resident twin: unbounded tier that lives through an install.
    let run_with = |budget: Option<usize>, name: &str| {
        let config = match budget {
            Some(b) => TierConfig::bounded(WINDOW, b, spill_path(name)),
            None => TierConfig::unbounded(WINDOW),
        };
        if let Some(p) = &config.spill_path {
            std::fs::remove_file(p).ok();
        }
        let mut tier = UserStateTier::new(config, model.clone(), 1).unwrap();
        let mut items = (*model).clone();
        let mut rng = StdRng::seed_from_u64(5);
        for &(user, item) in &ops {
            let user = UserId(user);
            let base = tier.base().clone();
            let (window, factors) = tier.get_or_load(user).unwrap();
            let mut params = TierParams::new(user, factors, &base, &mut items);
            observe_single(
                &mut params,
                &pipeline,
                &stats,
                &cfg,
                user,
                window,
                &mut rng,
                ItemId(item),
            );
            tier.note_access(user).unwrap();
        }
        // Publish a perturbed model WITHOUT harvesting: deltas must be
        // carried (resident: rebase now; spilled: rebase on reload).
        let mut next = (*model).clone();
        for u in 0..USERS {
            use rrc_core::ModelParams;
            for x in ModelParams::user_factor_mut(&mut next, UserId(u as u32)) {
                *x += 0.125;
            }
        }
        tier.install(Arc::new(next), 2);
        // Touch every user afterwards so spilled entries reload.
        let mut out = Vec::new();
        for u in 0..4u32 {
            let user = UserId(u);
            let base = tier.base().clone();
            let (window, factors) = tier.get_or_load(user).unwrap();
            let params = TierParams::new(user, factors, &base, &mut items);
            let top = recommend_single(&params, &pipeline, &stats, cfg.omega, user, window, TOPN);
            out.push(top);
            tier.note_access(user).unwrap();
        }
        let (users, transforms) = tier.harvest().unwrap();
        (out, users, transforms)
    };

    let resident = run_with(None, "swap_unb");
    let spilled = run_with(Some(2_500), "swap_b");
    assert_eq!(resident.0, spilled.0, "post-swap recommendations diverged");
    let bits = |rows: &[(u32, Vec<f64>)]| {
        rows.iter()
            .map(|(id, v)| (*id, v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&resident.1), bits(&spilled.1), "user deltas diverged");
    assert_eq!(
        bits(&resident.2),
        bits(&spilled.2),
        "transform deltas diverged"
    );
}
