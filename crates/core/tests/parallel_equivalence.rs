//! Equivalence guarantees of the parallel trainers:
//!
//! * sharded-deterministic at **one shard** is *byte-identical* (bit
//!   patterns, not just `==`) to the serial `TsPprTrainer` / `PprTrainer`;
//! * sharded-deterministic output depends only on `(seed, shards)` — never
//!   on the thread count, never on the run;
//! * Hogwild produces finite parameters that actually learn.

use rrc_core::{
    CheckpointOptions, ParallelConfig, ParallelTrainer, PprConfig, PprModel, PprTrainer,
    TrainCheckpoint, TrainMode, TrainReport, TsPprConfig, TsPprModel, TsPprTrainer,
};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
use rrc_sequence::{Dataset, ItemId, UserId};

fn fixture() -> (Dataset, TrainingSet) {
    let data = GeneratorConfig::tiny().with_seed(2024).generate();
    let stats = TrainStats::compute(&data, 30);
    let training = TrainingSet::build(
        &data,
        &stats,
        &FeaturePipeline::standard(),
        &SamplingConfig {
            window: 30,
            omega: 5,
            negatives_per_positive: 5,
            seed: 7,
        },
    );
    assert!(!training.is_empty(), "fixture must produce quadruples");
    (data, training)
}

fn config(data: &Dataset) -> TsPprConfig {
    TsPprConfig::new(data.num_users(), data.num_items())
        .with_k(8)
        .with_max_sweeps(12)
        .with_seed(41)
}

/// Every parameter of the model as its raw bit pattern, in a fixed order.
fn model_bits(m: &TsPprModel) -> Vec<u64> {
    let mut bits = Vec::new();
    for u in 0..m.num_users() {
        let user = UserId(u as u32);
        bits.extend(m.user_factor(user).iter().map(|x| x.to_bits()));
        bits.extend(m.transform(user).as_slice().iter().map(|x| x.to_bits()));
    }
    for v in 0..m.num_items() {
        bits.extend(m.item_factor(ItemId(v as u32)).iter().map(|x| x.to_bits()));
    }
    bits
}

/// The learning-dynamics part of a report (wall-clock excluded).
fn report_trace(r: &TrainReport) -> (usize, bool, Vec<(usize, u64, u64)>) {
    (
        r.steps,
        r.converged,
        r.checks
            .iter()
            .map(|c| (c.step, c.r_tilde.to_bits(), c.nll.to_bits()))
            .collect(),
    )
}

#[test]
fn sharded_one_shard_is_byte_identical_to_serial() {
    let (data, training) = fixture();
    let cfg = config(&data);
    let (serial_model, serial_report) = TsPprTrainer::new(cfg.clone()).train(&training);
    let (par_model, par_report) =
        ParallelTrainer::new(cfg, ParallelConfig::sharded(1)).train(&training);
    assert_eq!(model_bits(&serial_model), model_bits(&par_model));
    assert_eq!(report_trace(&serial_report), report_trace(&par_report));
}

#[test]
fn sharded_output_is_thread_count_invariant() {
    let (data, training) = fixture();
    let cfg = config(&data);
    // Same shard count, different thread counts: threads only schedule.
    let shards = 4;
    let reference =
        ParallelTrainer::new(cfg.clone(), ParallelConfig::sharded(1).with_shards(shards))
            .train(&training);
    for threads in [2, 3, 8] {
        let run = ParallelTrainer::new(
            cfg.clone(),
            ParallelConfig::sharded(threads).with_shards(shards),
        )
        .train(&training);
        assert_eq!(
            model_bits(&reference.0),
            model_bits(&run.0),
            "threads={threads} diverged from the 1-thread reference"
        );
        assert_eq!(report_trace(&reference.1), report_trace(&run.1));
    }
}

#[test]
fn sharded_runs_are_byte_identical_across_repeats() {
    let (data, training) = fixture();
    let cfg = config(&data);
    for threads in [2, 4, 8] {
        let a =
            ParallelTrainer::new(cfg.clone(), ParallelConfig::sharded(threads)).train(&training);
        let b =
            ParallelTrainer::new(cfg.clone(), ParallelConfig::sharded(threads)).train(&training);
        assert_eq!(
            model_bits(&a.0),
            model_bits(&b.0),
            "threads={threads} not reproducible"
        );
        assert_eq!(report_trace(&a.1), report_trace(&b.1));
    }
}

#[test]
fn sharded_with_identity_transform_matches_serial() {
    let (data, training) = fixture();
    let cfg = config(&data)
        .with_k(training.f_dim())
        .with_identity_transform(true);
    let (serial_model, _) = TsPprTrainer::new(cfg.clone()).train(&training);
    let (par_model, _) = ParallelTrainer::new(cfg, ParallelConfig::sharded(1)).train(&training);
    assert_eq!(model_bits(&serial_model), model_bits(&par_model));
}

#[test]
fn serial_mode_dispatch_equals_direct_serial_trainer() {
    let (data, training) = fixture();
    let cfg = config(&data);
    let direct = TsPprTrainer::new(cfg.clone()).train(&training);
    let dispatched = ParallelTrainer::new(cfg, ParallelConfig::serial()).train(&training);
    assert_eq!(model_bits(&direct.0), model_bits(&dispatched.0));
}

#[test]
fn sharded_resume_is_bit_identical_to_uninterrupted_run() {
    let (data, training) = fixture();
    let cfg = config(&data);
    let par = ParallelConfig::sharded(4).with_shards(4);
    let uninterrupted = ParallelTrainer::new(cfg.clone(), par).train_with(&training, None, None);

    // Snapshot at every check, simulate a kill right after the second one.
    let mut snaps: Vec<TrainCheckpoint> = Vec::new();
    let mut sink = |ck: &TrainCheckpoint| {
        snaps.push(ck.clone());
        snaps.len() < 2
    };
    let killed = ParallelTrainer::new(cfg.clone(), par).train_with(
        &training,
        None,
        Some(CheckpointOptions {
            every_checks: 1,
            sink: &mut sink,
        }),
    );
    assert_eq!(snaps.len(), 2, "sink should have stopped the run");
    assert!(
        killed.1.steps < uninterrupted.1.steps,
        "the killed run must actually be shorter"
    );

    let resumed = ParallelTrainer::new(cfg, par).train_with(&training, Some(&snaps[1]), None);
    assert_eq!(
        model_bits(&uninterrupted.0),
        model_bits(&resumed.0),
        "resumed sharded model must be bit-identical"
    );
    assert_eq!(report_trace(&uninterrupted.1), report_trace(&resumed.1));
}

#[test]
#[should_panic(expected = "hogwild training is nondeterministic")]
fn hogwild_refuses_checkpointing() {
    let (data, training) = fixture();
    let cfg = config(&data);
    let mut sink = |_: &TrainCheckpoint| true;
    ParallelTrainer::new(cfg, ParallelConfig::hogwild(2)).train_with(
        &training,
        None,
        Some(CheckpointOptions {
            every_checks: 1,
            sink: &mut sink,
        }),
    );
}

#[test]
fn hogwild_learns_and_stays_finite() {
    let (data, training) = fixture();
    let cfg = config(&data);
    let (model, report) = ParallelTrainer::new(cfg, ParallelConfig::hogwild(4)).train(&training);
    assert!(model.is_finite(), "racy writes must never produce NaN/Inf");
    assert!(report.steps > 0);
    assert!(
        report.final_r_tilde() > 0.0,
        "hogwild failed to learn: final r̃ = {}",
        report.final_r_tilde()
    );
}

/// Scores over a grid of (user, item) pairs as bit patterns — PPR's
/// parameters are private, but equal rows give bit-equal scores.
fn ppr_score_bits(m: &PprModel, data: &Dataset) -> Vec<u64> {
    let mut bits = Vec::new();
    for u in 0..data.num_users() {
        for v in 0..data.num_items() {
            bits.push(m.score(UserId(u as u32), ItemId(v as u32)).to_bits());
        }
    }
    bits
}

#[test]
fn ppr_sharded_one_shard_is_byte_identical_to_serial() {
    let (data, training) = fixture();
    let cfg = PprConfig {
        k: 8,
        max_sweeps: 10,
        ..PprConfig::new(data.num_users(), data.num_items())
    };
    let trainer = PprTrainer::new(cfg);
    let serial = trainer.train(&training);
    let par = trainer.train_parallel(&training, &ParallelConfig::sharded(1));
    assert_eq!(serial, par, "PPR 1-shard must equal serial");
    assert_eq!(ppr_score_bits(&serial, &data), ppr_score_bits(&par, &data));
}

#[test]
fn ppr_sharded_runs_are_reproducible_and_thread_invariant() {
    let (data, training) = fixture();
    let cfg = PprConfig {
        k: 8,
        max_sweeps: 10,
        ..PprConfig::new(data.num_users(), data.num_items())
    };
    let trainer = PprTrainer::new(cfg);
    let reference = trainer.train_parallel(&training, &ParallelConfig::sharded(1).with_shards(4));
    for threads in [2, 4, 8] {
        let run =
            trainer.train_parallel(&training, &ParallelConfig::sharded(threads).with_shards(4));
        assert_eq!(
            ppr_score_bits(&reference, &data),
            ppr_score_bits(&run, &data),
            "PPR threads={threads} diverged"
        );
    }
}

#[test]
fn ppr_hogwild_stays_finite_and_learns() {
    let (data, training) = fixture();
    let cfg = PprConfig {
        k: 8,
        max_sweeps: 10,
        ..PprConfig::new(data.num_users(), data.num_items())
    };
    let model =
        PprTrainer::new(cfg).train_parallel(&training, &ParallelConfig::new(TrainMode::Hogwild, 4));
    assert!(model.is_finite());
    let mut wins = 0usize;
    let mut total = 0usize;
    for q in training.iter_quadruples() {
        if model.score(q.user, q.pos) > model.score(q.user, q.neg) {
            wins += 1;
        }
        total += 1;
    }
    let acc = wins as f64 / total as f64;
    assert!(acc > 0.6, "hogwild PPR pairwise accuracy {acc}");
}
