//! Property-based tests for the TS-PPR model. (Persistence round-trip
//! properties live with the formats, in `crates/store/tests/proptests.rs`.)

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_core::TsPprModel;
use rrc_sequence::{ItemId, UserId};

fn model_strategy() -> impl Strategy<Value = TsPprModel> {
    (1usize..5, 1usize..6, 1usize..8, 1usize..5, 0u64..1000).prop_map(
        |(users, items, k, f, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            TsPprModel::init(&mut rng, users, items, k, f, 0.1, 0.05)
        },
    )
}

proptest! {
    #[test]
    fn margin_equals_score_difference(model in model_strategy(), fa in 0.0f64..1.0, fb in 0.0f64..1.0) {
        let user = UserId(0);
        let pos = ItemId(0);
        let neg = ItemId((model.num_items() - 1) as u32);
        let f_pos = vec![fa; model.f_dim()];
        let f_neg = vec![fb; model.f_dim()];
        let margin = model.margin(user, pos, neg, &f_pos, &f_neg);
        let diff = model.score(user, pos, &f_pos) - model.score(user, neg, &f_neg);
        prop_assert!((margin - diff).abs() <= 1e-9 * (1.0 + diff.abs()));
    }

    #[test]
    fn margin_is_antisymmetric(model in model_strategy(), fa in 0.0f64..1.0, fb in 0.0f64..1.0) {
        if model.num_items() < 2 {
            return Ok(());
        }
        let user = UserId((model.num_users() - 1) as u32);
        let a = ItemId(0);
        let b = ItemId(1);
        let f_a = vec![fa; model.f_dim()];
        let f_b = vec![fb; model.f_dim()];
        let ab = model.margin(user, a, b, &f_a, &f_b);
        let ba = model.margin(user, b, a, &f_b, &f_a);
        prop_assert!((ab + ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn zero_features_reduce_to_static_score(model in model_strategy()) {
        let user = UserId(0);
        let item = ItemId(0);
        let zero = vec![0.0; model.f_dim()];
        let s = model.score(user, item, &zero);
        prop_assert!((s - model.score_static(user, item)).abs() <= 1e-12);
    }

    #[test]
    fn score_is_linear_in_features(model in model_strategy(), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        // score(f1 + f2) - score(0) == (score(f1) - score(0)) + (score(f2) - score(0))
        let user = UserId(0);
        let item = ItemId(0);
        let base = model.score_static(user, item);
        let v1 = vec![f1; model.f_dim()];
        let v2 = vec![f2; model.f_dim()];
        let vsum: Vec<f64> = v1.iter().zip(&v2).map(|(a, b)| a + b).collect();
        let lhs = model.score(user, item, &vsum) - base;
        let rhs = (model.score(user, item, &v1) - base) + (model.score(user, item, &v2) - base);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs.abs()));
    }

    #[test]
    fn norms_are_nonnegative_and_finite(model in model_strategy()) {
        let (u2, v2, a2) = model.norms();
        prop_assert!(u2 >= 0.0 && u2.is_finite());
        prop_assert!(v2 >= 0.0 && v2.is_finite());
        prop_assert!(a2 >= 0.0 && a2.is_finite());
        prop_assert!(model.is_finite());
    }
}
