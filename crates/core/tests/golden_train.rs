//! Golden regression fixture for the serial trainer's learning dynamics.
//!
//! The committed trace pins the exact convergence behaviour — step numbers
//! and the *bit patterns* of every `r̃` / NLL check — of a fixed-seed
//! serial run. Any refactor of the trainer (including the extraction of
//! the shared `sgd_step` kernel used by the parallel trainers) that
//! silently changes learning dynamics fails this test.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rrc-core --test golden_train
//! ```

use rrc_core::{TrainReport, TsPprConfig, TsPprTrainer};
use rrc_datagen::GeneratorConfig;
use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("train_report.txt")
}

fn run_fixture() -> TrainReport {
    let data = GeneratorConfig::tiny().with_seed(1789).generate();
    let stats = TrainStats::compute(&data, 30);
    let training = TrainingSet::build(
        &data,
        &stats,
        &FeaturePipeline::standard(),
        &SamplingConfig {
            window: 30,
            omega: 5,
            negatives_per_positive: 5,
            seed: 99,
        },
    );
    assert!(!training.is_empty());
    let cfg = TsPprConfig::new(data.num_users(), data.num_items())
        .with_k(8)
        .with_max_sweeps(15)
        .with_seed(0x6014);
    let (model, report) = TsPprTrainer::new(cfg).train(&training);
    assert!(model.is_finite());
    report
}

/// Serialise the reproducible part of a report: steps, convergence flag,
/// and each check as `step r̃-bits nll-bits` (hex). Wall-clock fields are
/// machine-dependent and excluded.
fn render(report: &TrainReport) -> String {
    let mut out = String::new();
    out.push_str("# Golden serial TrainReport trace. Regenerate intentionally with:\n");
    out.push_str("#   UPDATE_GOLDEN=1 cargo test -p rrc-core --test golden_train\n");
    out.push_str(&format!("steps {}\n", report.steps));
    out.push_str(&format!("converged {}\n", report.converged));
    for c in &report.checks {
        out.push_str(&format!(
            "check {} {:016x} {:016x}\n",
            c.step,
            c.r_tilde.to_bits(),
            c.nll.to_bits()
        ));
    }
    out
}

#[test]
fn serial_training_reproduces_golden_trace() {
    let report = run_fixture();
    let rendered = render(&report);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, rendered,
        "serial trainer diverged from the committed golden trace; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_is_stable_across_runs_in_process() {
    let a = render(&run_fixture());
    let b = render(&run_fixture());
    assert_eq!(a, b);
}
