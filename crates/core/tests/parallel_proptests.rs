//! Property-based tests for the parallel-training machinery: shard routing
//! partitions users completely and disjointly, block splitting conserves
//! steps, and merged per-shard item-gradient accumulation tracks the serial
//! sum.

use proptest::prelude::*;
use rrc_core::parallel::{merge_item_updates, shard_for, split_block};
use rrc_linalg::DMatrix;
use rrc_sequence::UserId;
use std::collections::HashMap;

proptest! {
    /// Every user lands on exactly one in-range shard, and the assignment
    /// is a pure function — together: a complete, disjoint partition of any
    /// user-id set for any shard count.
    #[test]
    fn routing_partitions_users_completely_and_disjointly(
        raw_users in proptest::collection::vec(any::<u32>(), 0..200),
        shards in 1usize..33,
    ) {
        let mut users = raw_users;
        users.sort_unstable();
        users.dedup();
        let mut assigned: HashMap<u32, usize> = HashMap::new();
        for &u in &users {
            let s = shard_for(UserId(u), shards);
            prop_assert!(s < shards, "shard {s} out of range for {shards}");
            // Disjointness: a second routing of the same user may never
            // land elsewhere.
            prop_assert_eq!(shard_for(UserId(u), shards), s);
            assigned.insert(u, s);
        }
        // Completeness: every user was assigned.
        prop_assert_eq!(assigned.len(), users.len());
    }

    /// With one shard everything routes to shard 0.
    #[test]
    fn routing_single_shard_is_total(u in any::<u32>()) {
        prop_assert_eq!(shard_for(UserId(u), 1), 0);
    }

    /// Block splitting conserves the step count exactly, gives zero-weight
    /// shards zero steps, and deviates from the proportional share by less
    /// than one step.
    #[test]
    fn split_block_conserves_steps_and_tracks_weights(
        weights in proptest::collection::vec(0u64..1000, 1..17),
        block in 0usize..100_000,
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let mut cum = vec![0u64];
        for &w in &weights {
            cum.push(cum.last().unwrap() + w);
        }
        let total = *cum.last().unwrap() as f64;
        let alloc = split_block(block, &cum);
        prop_assert_eq!(alloc.iter().sum::<usize>(), block);
        for (s, (&n, &w)) in alloc.iter().zip(&weights).enumerate() {
            if w == 0 {
                prop_assert_eq!(n, 0, "zero-weight shard {s} got steps");
            }
            let ideal = block as f64 * w as f64 / total;
            prop_assert!(
                (n as f64 - ideal).abs() < 1.0,
                "shard {s}: {n} steps vs ideal {ideal}"
            );
        }
    }

    /// Merging per-shard item updates equals the serial sum of all deltas
    /// within 1e-12 on random gradients.
    #[test]
    fn merged_item_accumulation_equals_serial_sum(
        rows in 1usize..5,
        cols in 1usize..5,
        base_vals in proptest::collection::vec(-1.0f64..1.0, 1..17),
        shard_grads in proptest::collection::vec(
            proptest::collection::vec(-0.1f64..0.1, 1..17),
            1..7,
        ),
    ) {
        let n = rows * cols;
        let take = |vals: &[f64]| -> Vec<f64> {
            (0..n).map(|i| vals[i % vals.len()]).collect()
        };
        let base = DMatrix::from_vec(rows, cols, take(&base_vals));

        // Each shard applies its own gradient to a private copy of base.
        let mut locals: Vec<DMatrix> = shard_grads
            .iter()
            .map(|g| {
                let mut m = base.clone();
                for (x, d) in m.as_mut_slice().iter_mut().zip(take(g)) {
                    *x += d;
                }
                m
            })
            .collect();

        // Serial reference: base + Σ_s grad_s.
        let mut serial = base.clone();
        for g in &shard_grads {
            for (x, d) in serial.as_mut_slice().iter_mut().zip(take(g)) {
                *x += d;
            }
        }

        let mut merged = base.clone();
        let mut refs: Vec<&mut DMatrix> = locals.iter_mut().collect();
        let mut scratch = Vec::new();
        merge_item_updates(&mut merged, &mut refs, &mut scratch);

        for (m, s) in merged.as_slice().iter().zip(serial.as_slice()) {
            prop_assert!((m - s).abs() <= 1e-12, "merged {m} vs serial {s}");
        }
    }

    /// A single shard's merge is exact adoption — bit-for-bit.
    #[test]
    fn single_shard_merge_is_bitwise_adoption(
        vals in proptest::collection::vec(-1.0f64..1.0, 4),
        upd in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let mut base = DMatrix::from_vec(2, 2, vals);
        let mut local = DMatrix::from_vec(2, 2, upd);
        let expect: Vec<u64> = local.as_slice().iter().map(|x| x.to_bits()).collect();
        let mut scratch = Vec::new();
        merge_item_updates(&mut base, &mut [&mut local], &mut scratch);
        let got: Vec<u64> = base.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(got, expect);
    }
}
