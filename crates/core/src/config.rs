//! TS-PPR hyper-parameters (Table 4 of the paper).

/// Configuration of the TS-PPR model and its SGD trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct TsPprConfig {
    /// Number of users (rows of `U`, one `A_u` each).
    pub num_users: usize,
    /// Number of items (rows of `V`).
    pub num_items: usize,
    /// Latent dimension `K` (paper default 40).
    pub k: usize,
    /// Regularisation λ on the transform matrices `A_u`.
    pub lambda: f64,
    /// Regularisation γ on the latent factors `U`, `V`.
    pub gamma: f64,
    /// SGD learning rate α (the paper does not report a value; 0.05 is
    /// stable across both presets).
    pub alpha: f64,
    /// Hard cap on SGD steps, expressed in sweeps of `|D|` draws each.
    pub max_sweeps: usize,
    /// Minimum sweeps before the convergence check may fire. The paper's
    /// `Δr̃ ≤ ε` criterion assumes a very large `|D|` (millions of
    /// quadruples), where `|D|/10` steps is substantial training; at small
    /// `|D|` the early between-check progress is tiny and the raw criterion
    /// stops almost immediately, so we require this much training first.
    pub min_sweeps: usize,
    /// Convergence threshold on `|Δr̃|` between checks (paper: `10⁻³`).
    pub convergence_eps: f64,
    /// Fraction of quadruples in the convergence small batch (paper: each
    /// user's first 10%).
    pub check_fraction: f64,
    /// Steps between convergence checks, as a fraction of `|D|` (paper:
    /// every `|D|/10` draws).
    pub check_interval_fraction: f64,
    /// RNG seed for initialisation and draw order.
    pub seed: u64,
    /// Fix every `A_u` to the identity matrix instead of learning it — the
    /// paper's suggested simplification when `K = F` (§4.2.1 case 2). The
    /// trainer asserts `K == F` when this is set.
    pub identity_transform: bool,
}

impl TsPprConfig {
    /// Paper defaults shared by both datasets: `K = 40`, `S`/`Ω` handled by
    /// the sampler, convergence at `Δr̃ ≤ 10⁻³`.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        TsPprConfig {
            num_users,
            num_items,
            k: 40,
            lambda: 0.01,
            gamma: 0.05,
            alpha: 0.05,
            max_sweeps: 60,
            min_sweeps: 5,
            convergence_eps: 1e-3,
            check_fraction: 0.1,
            check_interval_fraction: 0.1,
            seed: 0x7599,
            identity_transform: false,
        }
    }

    /// Table 4, Gowalla column: `λ = 0.01`, `γ = 0.05`, `K = 40`.
    pub fn gowalla_defaults(num_users: usize, num_items: usize) -> Self {
        Self::new(num_users, num_items)
    }

    /// Table 4, Last.fm column: `λ = 0.001`, `γ = 0.1`, `K = 40`.
    pub fn lastfm_defaults(num_users: usize, num_items: usize) -> Self {
        TsPprConfig {
            lambda: 0.001,
            gamma: 0.1,
            ..Self::new(num_users, num_items)
        }
    }

    /// Builder-style latent dimension.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style regularisation parameters.
    pub fn with_regularization(mut self, lambda: f64, gamma: f64) -> Self {
        self.lambda = lambda;
        self.gamma = gamma;
        self
    }

    /// Builder-style learning rate.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style sweep cap.
    pub fn with_max_sweeps(mut self, max_sweeps: usize) -> Self {
        self.max_sweeps = max_sweeps;
        self
    }

    /// Builder-style identity-transform flag (requires `K = F` at train
    /// time).
    pub fn with_identity_transform(mut self, identity: bool) -> Self {
        self.identity_transform = identity;
        self
    }

    /// Validate invariants; called by the trainer.
    pub fn validate(&self) {
        assert!(self.num_users > 0, "num_users must be positive");
        assert!(self.num_items > 0, "num_items must be positive");
        assert!(self.k > 0, "latent dimension K must be positive");
        assert!(
            self.lambda >= 0.0 && self.lambda.is_finite(),
            "lambda must be >= 0"
        );
        assert!(
            self.gamma >= 0.0 && self.gamma.is_finite(),
            "gamma must be >= 0"
        );
        assert!(
            self.alpha > 0.0 && self.alpha.is_finite(),
            "alpha must be > 0"
        );
        assert!(
            (0.0..=1.0).contains(&self.check_fraction),
            "check_fraction must be in [0, 1]"
        );
        assert!(
            self.check_interval_fraction > 0.0 && self.check_interval_fraction <= 1.0,
            "check_interval_fraction must be in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let g = TsPprConfig::gowalla_defaults(10, 20);
        assert_eq!(g.k, 40);
        assert_eq!(g.lambda, 0.01);
        assert_eq!(g.gamma, 0.05);
        let l = TsPprConfig::lastfm_defaults(10, 20);
        assert_eq!(l.lambda, 0.001);
        assert_eq!(l.gamma, 0.1);
        assert_eq!(l.k, 40);
    }

    #[test]
    fn builders_chain() {
        let c = TsPprConfig::new(5, 6)
            .with_k(8)
            .with_regularization(0.1, 0.2)
            .with_alpha(0.01)
            .with_seed(3)
            .with_max_sweeps(2);
        assert_eq!(c.k, 8);
        assert_eq!((c.lambda, c.gamma), (0.1, 0.2));
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.seed, 3);
        assert_eq!(c.max_sweeps, 2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "K must be positive")]
    fn zero_k_invalid() {
        TsPprConfig::new(1, 1).with_k(0).validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be > 0")]
    fn zero_alpha_invalid() {
        TsPprConfig::new(1, 1).with_alpha(0.0).validate();
    }
}
