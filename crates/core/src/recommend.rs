//! [`Recommender`] adapter for a trained TS-PPR model (§4.3).

use crate::model::TsPprModel;
use rrc_features::{FeatureContext, FeaturePipeline, RecContext, Recommender};
use rrc_sequence::ItemId;

/// Wraps a trained [`TsPprModel`] together with the feature pipeline it was
/// trained with, extracting `f_{uvt}` on the fly at recommendation time and
/// ranking the eligible window candidates by `r_uvt` (Eq. 5).
pub struct TsPprRecommender {
    model: TsPprModel,
    pipeline: FeaturePipeline,
}

impl TsPprRecommender {
    /// Pair a trained model with its pipeline.
    ///
    /// # Panics
    /// Panics if the pipeline dimension does not match the model's `F`.
    pub fn new(model: TsPprModel, pipeline: FeaturePipeline) -> Self {
        assert_eq!(
            model.f_dim(),
            pipeline.len(),
            "pipeline dimension must match the model's feature dimension"
        );
        TsPprRecommender { model, pipeline }
    }

    /// Borrow the model.
    pub fn model(&self) -> &TsPprModel {
        &self.model
    }

    /// Borrow the pipeline.
    pub fn pipeline(&self) -> &FeaturePipeline {
        &self.pipeline
    }
}

impl Recommender for TsPprRecommender {
    fn name(&self) -> &str {
        "TS-PPR"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        let fctx = FeatureContext {
            window: ctx.window,
            stats: ctx.stats,
        };
        let f = self.pipeline.extract(&fctx, item);
        self.model.score(ctx.user, item, &f)
    }

    /// Batched top-`n` that extracts features into one reused buffer — the
    /// per-instance path measured in the paper's Fig. 13.
    fn recommend(&self, ctx: &RecContext<'_>, n: usize) -> Vec<ItemId> {
        let fctx = FeatureContext {
            window: ctx.window,
            stats: ctx.stats,
        };
        let mut fbuf = Vec::with_capacity(self.pipeline.len());
        let mut scored: Vec<(f64, ItemId)> = ctx
            .candidates()
            .into_iter()
            .map(|v| {
                self.pipeline.extract_into(&fctx, v, &mut fbuf);
                (self.model.score(ctx.user, v, &fbuf), v)
            })
            .collect();
        rrc_features::recommend::top_n(&mut scored, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsPprConfig;
    use crate::train::TsPprTrainer;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{SamplingConfig, TrainStats, TrainingSet};
    use rrc_sequence::{UserId, WindowState};

    #[test]
    fn recommend_matches_scorewise_ranking() {
        let data = GeneratorConfig::tiny().with_seed(21).generate();
        let stats = TrainStats::compute(&data, 30);
        let pipeline = FeaturePipeline::standard();
        let training = TrainingSet::build(
            &data,
            &stats,
            &pipeline,
            &SamplingConfig {
                window: 30,
                omega: 5,
                negatives_per_positive: 5,
                seed: 1,
            },
        );
        let cfg = TsPprConfig::new(data.num_users(), data.num_items())
            .with_k(6)
            .with_max_sweeps(5);
        let (model, _) = TsPprTrainer::new(cfg).train(&training);
        let rec = TsPprRecommender::new(model, FeaturePipeline::standard());

        let user = UserId(0);
        let window = WindowState::warmed(30, data.sequence(user).events());
        let ctx = RecContext {
            user,
            window: &window,
            stats: &stats,
            omega: 5,
        };
        let fast = rec.recommend(&ctx, 5);
        // Compare with the default trait path (per-item `score`).
        let mut scored: Vec<(f64, ItemId)> = ctx
            .candidates()
            .into_iter()
            .map(|v| (rec.score(&ctx, v), v))
            .collect();
        let slow = rrc_features::recommend::top_n(&mut scored, 5);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
        assert_eq!(rec.name(), "TS-PPR");
    }

    #[test]
    #[should_panic(expected = "pipeline dimension")]
    fn dimension_mismatch_rejected() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = TsPprModel::init(&mut rng, 1, 1, 2, 4, 0.1, 0.1);
        let _ = TsPprRecommender::new(model, FeaturePipeline::standard().without("IP"));
    }
}
