//! The TS-PPR model state: latent factors `U`, `V` and the per-user
//! transforms `A_u`.

use crate::params::ModelParams;
use rrc_linalg::{DMatrix, GaussianSampler};
use rrc_sequence::{ItemId, UserId};

/// A (possibly trained) TS-PPR model.
///
/// `U` and `V` are stored as row-major matrices (`num_users × K`,
/// `num_items × K`) so a user/item factor is a contiguous row; each user's
/// `A_u` is a `K × F` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TsPprModel {
    k: usize,
    f_dim: usize,
    u: DMatrix,
    v: DMatrix,
    a: Vec<DMatrix>,
}

impl TsPprModel {
    /// Initialise per Algorithm 1: `U, V ~ N(0, γI)`, `A_u ~ N(0, λI)`
    /// (standard deviations `√γ`, `√λ`).
    pub fn init<R: rand::Rng + ?Sized>(
        rng: &mut R,
        num_users: usize,
        num_items: usize,
        k: usize,
        f_dim: usize,
        gamma: f64,
        lambda: f64,
    ) -> Self {
        assert!(k > 0 && f_dim > 0, "K and F must be positive");
        let mut factor_init = GaussianSampler::new(0.0, gamma.max(0.0).sqrt());
        let mut transform_init = GaussianSampler::new(0.0, lambda.max(0.0).sqrt());
        TsPprModel {
            k,
            f_dim,
            u: factor_init.sample_matrix(rng, num_users, k),
            v: factor_init.sample_matrix(rng, num_items, k),
            a: (0..num_users)
                .map(|_| transform_init.sample_matrix(rng, k, f_dim))
                .collect(),
        }
    }

    /// Build from explicit parts (used by `rrc-store` loaders).
    pub fn from_parts(k: usize, f_dim: usize, u: DMatrix, v: DMatrix, a: Vec<DMatrix>) -> Self {
        assert_eq!(u.cols(), k, "U has wrong latent dimension");
        assert_eq!(v.cols(), k, "V has wrong latent dimension");
        assert_eq!(a.len(), u.rows(), "one A_u per user required");
        for m in &a {
            assert_eq!((m.rows(), m.cols()), (k, f_dim), "A_u has wrong shape");
        }
        TsPprModel { k, f_dim, u, v, a }
    }

    /// Decompose into `(K, F, U, V, A)` — the inverse of
    /// [`Self::from_parts`]. The parallel trainers use this to split
    /// ownership of the rows across shard-local storage.
    pub fn into_parts(self) -> (usize, usize, DMatrix, DMatrix, Vec<DMatrix>) {
        (self.k, self.f_dim, self.u, self.v, self.a)
    }

    /// Latent dimension `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Observable feature dimension `F`.
    pub fn f_dim(&self) -> usize {
        self.f_dim
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.u.rows()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.v.rows()
    }

    /// Borrow the full `U` matrix (`num_users × K`, row-major). Read-only
    /// bulk view for persistence (`rrc-store`) and export.
    pub fn u_matrix(&self) -> &DMatrix {
        &self.u
    }

    /// Borrow the full `V` matrix (`num_items × K`, row-major).
    pub fn v_matrix(&self) -> &DMatrix {
        &self.v
    }

    /// Borrow all per-user transforms `A_u` (each `K × F`), indexed by user.
    pub fn transforms(&self) -> &[DMatrix] {
        &self.a
    }

    /// Borrow user `u`'s latent factor.
    #[inline]
    pub fn user_factor(&self, user: UserId) -> &[f64] {
        self.u.row(user.index())
    }

    /// Borrow item `v`'s latent factor.
    #[inline]
    pub fn item_factor(&self, item: ItemId) -> &[f64] {
        self.v.row(item.index())
    }

    /// Borrow user `u`'s transform `A_u`.
    #[inline]
    pub fn transform(&self, user: UserId) -> &DMatrix {
        &self.a[user.index()]
    }

    /// Mutable access for updaters: `(u_row, v_row, A_u)` cannot be
    /// borrowed separately through `&mut self`, so the trainer and the
    /// online SGD step go through these dedicated accessors one update at
    /// a time. Public via [`ModelParams`]; the inherent versions stay
    /// crate-private.
    #[inline]
    pub(crate) fn user_factor_mut(&mut self, user: UserId) -> &mut [f64] {
        self.u.row_mut(user.index())
    }

    #[inline]
    pub(crate) fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64] {
        self.v.row_mut(item.index())
    }

    #[inline]
    pub(crate) fn transform_mut(&mut self, user: UserId) -> &mut DMatrix {
        &mut self.a[user.index()]
    }

    /// Static preference `uᵀv` (Eq. 1) — the time-insensitive part.
    pub fn score_static(&self, user: UserId, item: ItemId) -> f64 {
        dot(self.user_factor(user), self.item_factor(item))
    }

    /// Full time-sensitive preference `r_uvt = uᵀ(v + A_u f)` (Eq. 5).
    /// Shared with every other parameter store via [`ModelParams`].
    ///
    /// # Panics
    /// Panics (debug) if `f.len() != f_dim`.
    pub fn score(&self, user: UserId, item: ItemId, f: &[f64]) -> f64 {
        ModelParams::score(self, user, item, f)
    }

    /// The pairwise margin `r_{uv_it} − r_{uv_jt}` for a quadruple — the
    /// quantity whose sigmoid the training objective maximises. Computed
    /// directly from the factored form of Eq. 6 (one pass, no allocation).
    pub fn margin(
        &self,
        user: UserId,
        pos: ItemId,
        neg: ItemId,
        f_pos: &[f64],
        f_neg: &[f64],
    ) -> f64 {
        ModelParams::margin(self, user, pos, neg, f_pos, f_neg)
    }

    /// Squared Frobenius norms `(‖U‖², ‖V‖², Σ_u ‖A_u‖²)` — the
    /// regularisation terms of Eq. 7, exposed for objective reporting.
    pub fn norms(&self) -> (f64, f64, f64) {
        (
            self.u.frobenius_norm_sq(),
            self.v.frobenius_norm_sq(),
            self.a.iter().map(|m| m.frobenius_norm_sq()).sum(),
        )
    }

    /// True iff every parameter is finite — asserted by the trainer after
    /// each convergence check.
    pub fn is_finite(&self) -> bool {
        self.u.is_finite() && self.v.is_finite() && self.a.iter().all(|m| m.is_finite())
    }
}

impl ModelParams for TsPprModel {
    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn f_dim(&self) -> usize {
        self.f_dim
    }

    #[inline]
    fn user_factor(&self, user: UserId) -> &[f64] {
        TsPprModel::user_factor(self, user)
    }

    #[inline]
    fn item_factor(&self, item: ItemId) -> &[f64] {
        TsPprModel::item_factor(self, item)
    }

    #[inline]
    fn transform(&self, user: UserId) -> &DMatrix {
        TsPprModel::transform(self, user)
    }

    #[inline]
    fn user_factor_mut(&mut self, user: UserId) -> &mut [f64] {
        TsPprModel::user_factor_mut(self, user)
    }

    #[inline]
    fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64] {
        TsPprModel::item_factor_mut(self, item)
    }

    #[inline]
    fn transform_mut(&mut self, user: UserId) -> &mut DMatrix {
        TsPprModel::transform_mut(self, user)
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> TsPprModel {
        let mut rng = StdRng::seed_from_u64(1);
        TsPprModel::init(&mut rng, 3, 5, 4, 2, 0.05, 0.01)
    }

    #[test]
    fn shapes() {
        let m = model();
        assert_eq!(m.k(), 4);
        assert_eq!(m.f_dim(), 2);
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 5);
        assert_eq!(m.user_factor(UserId(0)).len(), 4);
        assert_eq!(m.item_factor(ItemId(4)).len(), 4);
        assert_eq!(m.transform(UserId(2)).rows(), 4);
        assert_eq!(m.transform(UserId(2)).cols(), 2);
        assert!(m.is_finite());
    }

    #[test]
    fn score_decomposes_into_static_plus_dynamic() {
        let m = model();
        let u = UserId(1);
        let v = ItemId(2);
        // With a zero feature vector the dynamic term vanishes.
        assert!((m.score(u, v, &[0.0, 0.0]) - m.score_static(u, v)).abs() < 1e-12);
        // With features, score = static + uᵀ(A f).
        let f = [0.3, 0.7];
        let af = m.transform(u).matvec(&f);
        let dynamic = dot(m.user_factor(u), af.as_slice());
        assert!((m.score(u, v, &f) - (m.score_static(u, v) + dynamic)).abs() < 1e-12);
    }

    #[test]
    fn margin_equals_score_difference() {
        let m = model();
        let u = UserId(0);
        let (vi, vj) = (ItemId(1), ItemId(3));
        let fi = [0.2, 0.9];
        let fj = [0.5, 0.1];
        let direct = m.margin(u, vi, vj, &fi, &fj);
        let via_scores = m.score(u, vi, &fi) - m.score(u, vj, &fj);
        assert!((direct - via_scores).abs() < 1e-12);
    }

    #[test]
    fn init_variance_tracks_gamma_lambda() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = TsPprModel::init(&mut rng, 200, 200, 20, 4, 0.25, 0.04);
        // Empirical variance of U entries ≈ γ = 0.25.
        let (u2, _, a2) = m.norms();
        let u_var = u2 / (200.0 * 20.0);
        assert!((u_var - 0.25).abs() < 0.03, "u_var={u_var}");
        let a_var = a2 / (200.0 * 20.0 * 4.0);
        assert!((a_var - 0.04).abs() < 0.01, "a_var={a_var}");
    }

    #[test]
    fn deterministic_init() {
        let a = TsPprModel::init(&mut StdRng::seed_from_u64(3), 2, 2, 3, 2, 0.1, 0.1);
        let b = TsPprModel::init(&mut StdRng::seed_from_u64(3), 2, 2, 3, 2, 0.1, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one A_u per user")]
    fn from_parts_validates() {
        let u = DMatrix::zeros(2, 3);
        let v = DMatrix::zeros(4, 3);
        TsPprModel::from_parts(3, 2, u, v, vec![DMatrix::zeros(3, 2)]);
    }
}
