//! Plain Personalized Pairwise Ranking (PPR / BPR-MF) — the
//! time-insensitive ancestor of TS-PPR (§4.1).
//!
//! The preference is static: `r_uv = uᵀv` (Eq. 1); the ranking function is
//! `σ(uᵀ(v_i − v_j))` (Eq. 3). The paper argues PPR "is not available in
//! the RRC problem" because it learns one fixed order per user; this
//! implementation exists to quantify that claim as an ablation — it trains
//! on exactly the same pre-sampled quadruples, just ignoring their feature
//! vectors.

use crate::config::TsPprConfig;
use crate::parallel::{
    merge_item_updates, run_on_shards, shard_for, shard_stream_seed, split_block, ParallelConfig,
    TrainMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_features::{RecContext, Recommender, TrainingSet};
use rrc_linalg::{sigmoid, DMatrix, GaussianSampler};
use rrc_sequence::{ItemId, UserId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hyper-parameters for plain PPR. A trimmed-down [`TsPprConfig`] (no λ:
/// there are no transforms).
#[derive(Debug, Clone, PartialEq)]
pub struct PprConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Latent dimension `K`.
    pub k: usize,
    /// Regularisation γ on `U`, `V`.
    pub gamma: f64,
    /// SGD learning rate.
    pub alpha: f64,
    /// Sweep cap (each sweep is `|D|` draws).
    pub max_sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PprConfig {
    /// Defaults matching TS-PPR's shared settings.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        PprConfig {
            num_users,
            num_items,
            k: 40,
            gamma: 0.05,
            alpha: 0.05,
            max_sweeps: 30,
            seed: 0x99,
        }
    }

    /// Borrow the shared fields from a [`TsPprConfig`].
    pub fn from_tsppr(cfg: &TsPprConfig) -> Self {
        PprConfig {
            num_users: cfg.num_users,
            num_items: cfg.num_items,
            k: cfg.k,
            gamma: cfg.gamma,
            alpha: cfg.alpha,
            max_sweeps: cfg.max_sweeps,
            seed: cfg.seed,
        }
    }
}

/// The PPR model: latent `U`, `V` only.
#[derive(Debug, Clone, PartialEq)]
pub struct PprModel {
    k: usize,
    u: DMatrix,
    v: DMatrix,
}

impl PprModel {
    /// Gaussian initialisation `U, V ~ N(0, γI)`.
    pub fn init<R: rand::Rng + ?Sized>(
        rng: &mut R,
        num_users: usize,
        num_items: usize,
        k: usize,
        gamma: f64,
    ) -> Self {
        let mut init = GaussianSampler::new(0.0, gamma.max(0.0).sqrt());
        PprModel {
            k,
            u: init.sample_matrix(rng, num_users, k),
            v: init.sample_matrix(rng, num_items, k),
        }
    }

    /// Latent dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Static preference `uᵀv`.
    pub fn score(&self, user: UserId, item: ItemId) -> f64 {
        self.u
            .row(user.index())
            .iter()
            .zip(self.v.row(item.index()))
            .map(|(a, b)| a * b)
            .sum()
    }

    /// True iff all parameters are finite.
    pub fn is_finite(&self) -> bool {
        self.u.is_finite() && self.v.is_finite()
    }
}

/// SGD trainer for [`PprModel`] over the shared pre-sampled quadruples.
#[derive(Debug, Clone)]
pub struct PprTrainer {
    config: PprConfig,
}

impl PprTrainer {
    /// Create a trainer.
    pub fn new(config: PprConfig) -> Self {
        assert!(config.k > 0 && config.alpha > 0.0, "invalid PPR config");
        PprTrainer { config }
    }

    /// Train on the quadruples, ignoring their features.
    pub fn train(&self, training: &TrainingSet) -> PprModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = PprModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k, cfg.gamma);
        if training.is_empty() {
            return model;
        }
        let steps = cfg.max_sweeps * training.num_quadruples();
        let decay = 1.0 - cfg.alpha * cfg.gamma;
        let mut u_old = vec![0.0; cfg.k];
        for _ in 0..steps {
            let q = training.sample(&mut rng).expect("non-empty");
            let margin = model.score(q.user, q.pos) - model.score(q.user, q.neg);
            let coef = cfg.alpha * (1.0 - sigmoid(margin));
            u_old.copy_from_slice(model.u.row(q.user.index()));
            {
                let vi = model.v.row(q.pos.index()).to_vec();
                let vj = model.v.row(q.neg.index()).to_vec();
                let u = model.u.row_mut(q.user.index());
                for r in 0..cfg.k {
                    u[r] = decay * u[r] + coef * (vi[r] - vj[r]);
                }
            }
            {
                let vi = model.v.row_mut(q.pos.index());
                for r in 0..cfg.k {
                    vi[r] = decay * vi[r] + coef * u_old[r];
                }
            }
            {
                let vj = model.v.row_mut(q.neg.index());
                for r in 0..cfg.k {
                    vj[r] = decay * vj[r] - coef * u_old[r];
                }
            }
        }
        model
    }

    /// Train under a [`ParallelConfig`] — the multi-threaded counterpart of
    /// [`Self::train`]. Sharded mode is byte-identical to the serial
    /// trainer at one shard and deterministic under a fixed `(seed,
    /// shards)` pair at any thread count; Hogwild mode trades
    /// reproducibility for throughput (see [`crate::parallel`]).
    pub fn train_parallel(&self, training: &TrainingSet, par: &ParallelConfig) -> PprModel {
        let model = match par.mode {
            TrainMode::Serial => self.train(training),
            TrainMode::Sharded => self.train_sharded(training, par),
            TrainMode::Hogwild => self.train_hogwild(training, par),
        };
        let steps = self.config.max_sweeps * training.num_quadruples();
        rrc_obs::global()
            .counter("train_steps_total")
            .add(steps as u64);
        model
    }

    /// Sharded-deterministic PPR: users partitioned by
    /// [`shard_for`], item matrix merged at sweep barriers. The arithmetic
    /// and RNG consumption per step replay [`Self::train`] exactly, so one
    /// shard reproduces it bit-for-bit.
    fn train_sharded(&self, training: &TrainingSet, par: &ParallelConfig) -> PprModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = PprModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k, cfg.gamma);
        if training.is_empty() {
            return model;
        }
        let d = training.num_quadruples();
        let total_steps = cfg.max_sweeps * d;
        let alpha = cfg.alpha;
        let decay = 1.0 - alpha * cfg.gamma;
        let k = cfg.k;

        struct Shard {
            users: Vec<UserId>,
            u: DMatrix,
            v: DMatrix,
            rng: StdRng,
            u_old: Vec<f64>,
        }

        let shards = par.shards;
        let PprModel {
            u: u_res, mut v, ..
        } = model;
        let mut shard_users: Vec<Vec<UserId>> = (0..shards).map(|_| Vec::new()).collect();
        for &user in training.users_with_data() {
            shard_users[shard_for(user, shards)].push(user);
        }
        let mut local_of = vec![u32::MAX; cfg.num_users];
        let mut init_rng = Some(rng);
        let mut states: Vec<Shard> = Vec::with_capacity(shards);
        for (s, users) in shard_users.into_iter().enumerate() {
            let mut su = DMatrix::zeros(users.len(), k);
            for (row, &user) in users.iter().enumerate() {
                local_of[user.index()] = row as u32;
                su.row_mut(row).copy_from_slice(u_res.row(user.index()));
            }
            let sv = if users.is_empty() {
                DMatrix::zeros(0, 0)
            } else {
                v.clone()
            };
            states.push(Shard {
                users,
                u: su,
                v: sv,
                rng: match s {
                    0 => init_rng.take().expect("init stream taken once"),
                    _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, s)),
                },
                u_old: vec![0.0; k],
            });
        }
        let mut cum = vec![0u64; shards + 1];
        for s in 0..shards {
            cum[s + 1] = cum[s] + states[s].users.len() as u64;
        }

        // One sweep (|D| draws) per synchronisation block — PPR has no
        // convergence checks, so sweeps are the natural barrier.
        let mut merge_scratch = Vec::new();
        let mut step = 0usize;
        while step < total_steps {
            let block = d.min(total_steps - step);
            let alloc = split_block(block, &cum);
            {
                let v_base = &v;
                let alloc = &alloc;
                let local_of = &local_of;
                run_on_shards(par.threads, &mut states, &|_w, s_idx, st| {
                    let n = alloc[s_idx];
                    if n == 0 {
                        return;
                    }
                    st.v.as_mut_slice().copy_from_slice(v_base.as_slice());
                    for _ in 0..n {
                        let user = st.users[st.rng.gen_range(0..st.users.len())];
                        let positives = training.user_positives(user);
                        let p = &positives[st.rng.gen_range(0..positives.len())];
                        let negs = training.negatives_of(p);
                        let neg = &negs[st.rng.gen_range(0..negs.len())].item;
                        let row = local_of[user.index()] as usize;
                        // score(pos) − score(neg), summed exactly as
                        // PprModel::score does.
                        let margin: f64 =
                            st.u.row(row)
                                .iter()
                                .zip(st.v.row(p.item.index()))
                                .map(|(a, b)| a * b)
                                .sum::<f64>()
                                - st.u
                                    .row(row)
                                    .iter()
                                    .zip(st.v.row(neg.index()))
                                    .map(|(a, b)| a * b)
                                    .sum::<f64>();
                        let coef = alpha * (1.0 - sigmoid(margin));
                        st.u_old.copy_from_slice(st.u.row(row));
                        {
                            let vi = st.v.row(p.item.index()).to_vec();
                            let vj = st.v.row(neg.index()).to_vec();
                            let u = st.u.row_mut(row);
                            for r in 0..k {
                                u[r] = decay * u[r] + coef * (vi[r] - vj[r]);
                            }
                        }
                        {
                            let vi = st.v.row_mut(p.item.index());
                            for (x, u0) in vi.iter_mut().zip(&st.u_old) {
                                *x = decay * *x + coef * u0;
                            }
                        }
                        {
                            let vj = st.v.row_mut(neg.index());
                            for (x, u0) in vj.iter_mut().zip(&st.u_old) {
                                *x = decay * *x - coef * u0;
                            }
                        }
                    }
                });
            }
            let mut actives: Vec<&mut DMatrix> = states
                .iter_mut()
                .enumerate()
                .filter(|(s_idx, _)| alloc[*s_idx] > 0)
                .map(|(_, st)| &mut st.v)
                .collect();
            merge_item_updates(&mut v, &mut actives, &mut merge_scratch);
            step += block;
        }

        let mut u_res = u_res;
        for st in states.iter() {
            for (row, &user) in st.users.iter().enumerate() {
                u_res.row_mut(user.index()).copy_from_slice(st.u.row(row));
            }
        }
        PprModel { k, u: u_res, v }
    }

    /// Hogwild PPR: lock-free updates against a flat `U | V` arena of
    /// atomic `f64` bit patterns (same construction as
    /// [`crate::parallel::ParamArena`], minus the transforms).
    fn train_hogwild(&self, training: &TrainingSet, par: &ParallelConfig) -> PprModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = PprModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k, cfg.gamma);
        if training.is_empty() {
            return model;
        }
        let d = training.num_quadruples();
        let total_steps = cfg.max_sweeps * d;
        let k = cfg.k;
        let alpha = cfg.alpha;
        let decay = 1.0 - alpha * cfg.gamma;

        let cells: Vec<AtomicU64> = model
            .u
            .as_slice()
            .iter()
            .chain(model.v.as_slice())
            .map(|x| AtomicU64::new(x.to_bits()))
            .collect();
        let cells = &cells[..];
        let get = |i: usize| f64::from_bits(cells[i].load(Ordering::Relaxed));
        let set = |i: usize, x: f64| cells[i].store(x.to_bits(), Ordering::Relaxed);
        let u_off = |user: UserId| user.index() * k;
        let v_off = |item: ItemId| (cfg.num_users + item.index()) * k;

        struct Worker {
            rng: StdRng,
            u: Vec<f64>,
            vi: Vec<f64>,
            vj: Vec<f64>,
        }
        let threads = par.threads.max(1);
        let mut workers: Vec<Worker> = (0..threads)
            .map(|w| Worker {
                rng: match w {
                    0 => std::mem::replace(&mut rng, StdRng::seed_from_u64(0)),
                    _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, w)),
                },
                u: vec![0.0; k],
                vi: vec![0.0; k],
                vj: vec![0.0; k],
            })
            .collect();
        let cum: Vec<u64> = (0..=threads as u64).collect();

        let mut step = 0usize;
        while step < total_steps {
            let block = d.min(total_steps - step);
            let alloc = split_block(block, &cum);
            let alloc = &alloc;
            run_on_shards(threads, &mut workers, &|_t, w_idx, wk| {
                let n = alloc[w_idx];
                for _ in 0..n {
                    let q = training.sample(&mut wk.rng).expect("non-empty");
                    let (uo, vio, vjo) = (u_off(q.user), v_off(q.pos), v_off(q.neg));
                    for r in 0..k {
                        wk.u[r] = get(uo + r);
                        wk.vi[r] = get(vio + r);
                        wk.vj[r] = get(vjo + r);
                    }
                    let margin: f64 = (0..k).map(|r| wk.u[r] * (wk.vi[r] - wk.vj[r])).sum();
                    let coef = alpha * (1.0 - sigmoid(margin));
                    for r in 0..k {
                        set(uo + r, decay * wk.u[r] + coef * (wk.vi[r] - wk.vj[r]));
                        set(vio + r, decay * wk.vi[r] + coef * wk.u[r]);
                        set(vjo + r, decay * wk.vj[r] - coef * wk.u[r]);
                    }
                }
            });
            step += block;
        }

        let read = |off: usize, len: usize| (off..off + len).map(get).collect::<Vec<f64>>();
        PprModel {
            k,
            u: DMatrix::from_vec(cfg.num_users, k, read(0, cfg.num_users * k)),
            v: DMatrix::from_vec(cfg.num_items, k, read(cfg.num_users * k, cfg.num_items * k)),
        }
    }
}

/// [`Recommender`] adapter for a trained PPR model.
#[derive(Debug, Clone)]
pub struct PprRecommender {
    model: PprModel,
}

impl PprRecommender {
    /// Wrap a trained model.
    pub fn new(model: PprModel) -> Self {
        PprRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &PprModel {
        &self.model
    }
}

impl Recommender for PprRecommender {
    fn name(&self) -> &str {
        "PPR"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        self.model.score(ctx.user, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};

    #[test]
    fn ppr_training_improves_pairwise_accuracy() {
        let data = GeneratorConfig::tiny().with_seed(2).generate();
        let stats = TrainStats::compute(&data, 30);
        let training = TrainingSet::build(
            &data,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig {
                window: 30,
                omega: 5,
                negatives_per_positive: 5,
                seed: 1,
            },
        );
        let cfg = PprConfig {
            k: 8,
            max_sweeps: 20,
            ..PprConfig::new(data.num_users(), data.num_items())
        };
        let init = PprModel::init(
            &mut StdRng::seed_from_u64(cfg.seed),
            cfg.num_users,
            cfg.num_items,
            cfg.k,
            cfg.gamma,
        );
        let trained = PprTrainer::new(cfg).train(&training);
        assert!(trained.is_finite());

        let acc = |m: &PprModel| {
            let mut wins = 0;
            let mut total = 0;
            for q in training.iter_quadruples() {
                if m.score(q.user, q.pos) > m.score(q.user, q.neg) {
                    wins += 1;
                }
                total += 1;
            }
            wins as f64 / total as f64
        };
        let before = acc(&init);
        let after = acc(&trained);
        assert!(after > before, "PPR accuracy {before} → {after}");
        assert!(after > 0.6, "trained PPR accuracy {after}");
    }

    #[test]
    fn from_tsppr_copies_shared_fields() {
        let ts = TsPprConfig::new(10, 20).with_k(7).with_alpha(0.02);
        let p = PprConfig::from_tsppr(&ts);
        assert_eq!(p.k, 7);
        assert_eq!(p.alpha, 0.02);
        assert_eq!(p.num_users, 10);
        assert_eq!(p.num_items, 20);
    }

    #[test]
    fn recommender_name_and_score() {
        let model = PprModel::init(&mut StdRng::seed_from_u64(0), 2, 3, 4, 0.1);
        let rec = PprRecommender::new(model.clone());
        assert_eq!(rec.name(), "PPR");
        assert_eq!(
            rec.model().score(UserId(1), ItemId(2)),
            model.score(UserId(1), ItemId(2))
        );
    }
}
