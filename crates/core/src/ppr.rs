//! Plain Personalized Pairwise Ranking (PPR / BPR-MF) — the
//! time-insensitive ancestor of TS-PPR (§4.1).
//!
//! The preference is static: `r_uv = uᵀv` (Eq. 1); the ranking function is
//! `σ(uᵀ(v_i − v_j))` (Eq. 3). The paper argues PPR "is not available in
//! the RRC problem" because it learns one fixed order per user; this
//! implementation exists to quantify that claim as an ablation — it trains
//! on exactly the same pre-sampled quadruples, just ignoring their feature
//! vectors.

use crate::config::TsPprConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_features::{RecContext, Recommender, TrainingSet};
use rrc_linalg::{sigmoid, DMatrix, GaussianSampler};
use rrc_sequence::{ItemId, UserId};

/// Hyper-parameters for plain PPR. A trimmed-down [`TsPprConfig`] (no λ:
/// there are no transforms).
#[derive(Debug, Clone, PartialEq)]
pub struct PprConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Latent dimension `K`.
    pub k: usize,
    /// Regularisation γ on `U`, `V`.
    pub gamma: f64,
    /// SGD learning rate.
    pub alpha: f64,
    /// Sweep cap (each sweep is `|D|` draws).
    pub max_sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PprConfig {
    /// Defaults matching TS-PPR's shared settings.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        PprConfig {
            num_users,
            num_items,
            k: 40,
            gamma: 0.05,
            alpha: 0.05,
            max_sweeps: 30,
            seed: 0x99,
        }
    }

    /// Borrow the shared fields from a [`TsPprConfig`].
    pub fn from_tsppr(cfg: &TsPprConfig) -> Self {
        PprConfig {
            num_users: cfg.num_users,
            num_items: cfg.num_items,
            k: cfg.k,
            gamma: cfg.gamma,
            alpha: cfg.alpha,
            max_sweeps: cfg.max_sweeps,
            seed: cfg.seed,
        }
    }
}

/// The PPR model: latent `U`, `V` only.
#[derive(Debug, Clone, PartialEq)]
pub struct PprModel {
    k: usize,
    u: DMatrix,
    v: DMatrix,
}

impl PprModel {
    /// Gaussian initialisation `U, V ~ N(0, γI)`.
    pub fn init<R: rand::Rng + ?Sized>(
        rng: &mut R,
        num_users: usize,
        num_items: usize,
        k: usize,
        gamma: f64,
    ) -> Self {
        let mut init = GaussianSampler::new(0.0, gamma.max(0.0).sqrt());
        PprModel {
            k,
            u: init.sample_matrix(rng, num_users, k),
            v: init.sample_matrix(rng, num_items, k),
        }
    }

    /// Latent dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Static preference `uᵀv`.
    pub fn score(&self, user: UserId, item: ItemId) -> f64 {
        self.u
            .row(user.index())
            .iter()
            .zip(self.v.row(item.index()))
            .map(|(a, b)| a * b)
            .sum()
    }

    /// True iff all parameters are finite.
    pub fn is_finite(&self) -> bool {
        self.u.is_finite() && self.v.is_finite()
    }
}

/// SGD trainer for [`PprModel`] over the shared pre-sampled quadruples.
#[derive(Debug, Clone)]
pub struct PprTrainer {
    config: PprConfig,
}

impl PprTrainer {
    /// Create a trainer.
    pub fn new(config: PprConfig) -> Self {
        assert!(config.k > 0 && config.alpha > 0.0, "invalid PPR config");
        PprTrainer { config }
    }

    /// Train on the quadruples, ignoring their features.
    pub fn train(&self, training: &TrainingSet) -> PprModel {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = PprModel::init(&mut rng, cfg.num_users, cfg.num_items, cfg.k, cfg.gamma);
        if training.is_empty() {
            return model;
        }
        let steps = cfg.max_sweeps * training.num_quadruples();
        let decay = 1.0 - cfg.alpha * cfg.gamma;
        let mut u_old = vec![0.0; cfg.k];
        for _ in 0..steps {
            let q = training.sample(&mut rng).expect("non-empty");
            let margin = model.score(q.user, q.pos) - model.score(q.user, q.neg);
            let coef = cfg.alpha * (1.0 - sigmoid(margin));
            u_old.copy_from_slice(model.u.row(q.user.index()));
            {
                let vi = model.v.row(q.pos.index()).to_vec();
                let vj = model.v.row(q.neg.index()).to_vec();
                let u = model.u.row_mut(q.user.index());
                for r in 0..cfg.k {
                    u[r] = decay * u[r] + coef * (vi[r] - vj[r]);
                }
            }
            {
                let vi = model.v.row_mut(q.pos.index());
                for r in 0..cfg.k {
                    vi[r] = decay * vi[r] + coef * u_old[r];
                }
            }
            {
                let vj = model.v.row_mut(q.neg.index());
                for r in 0..cfg.k {
                    vj[r] = decay * vj[r] - coef * u_old[r];
                }
            }
        }
        model
    }
}

/// [`Recommender`] adapter for a trained PPR model.
#[derive(Debug, Clone)]
pub struct PprRecommender {
    model: PprModel,
}

impl PprRecommender {
    /// Wrap a trained model.
    pub fn new(model: PprModel) -> Self {
        PprRecommender { model }
    }

    /// Borrow the model.
    pub fn model(&self) -> &PprModel {
        &self.model
    }
}

impl Recommender for PprRecommender {
    fn name(&self) -> &str {
        "PPR"
    }

    fn score(&self, ctx: &RecContext<'_>, item: ItemId) -> f64 {
        self.model.score(ctx.user, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};

    #[test]
    fn ppr_training_improves_pairwise_accuracy() {
        let data = GeneratorConfig::tiny().with_seed(2).generate();
        let stats = TrainStats::compute(&data, 30);
        let training = TrainingSet::build(
            &data,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig {
                window: 30,
                omega: 5,
                negatives_per_positive: 5,
                seed: 1,
            },
        );
        let cfg = PprConfig {
            k: 8,
            max_sweeps: 20,
            ..PprConfig::new(data.num_users(), data.num_items())
        };
        let init = PprModel::init(
            &mut StdRng::seed_from_u64(cfg.seed),
            cfg.num_users,
            cfg.num_items,
            cfg.k,
            cfg.gamma,
        );
        let trained = PprTrainer::new(cfg).train(&training);
        assert!(trained.is_finite());

        let acc = |m: &PprModel| {
            let mut wins = 0;
            let mut total = 0;
            for q in training.iter_quadruples() {
                if m.score(q.user, q.pos) > m.score(q.user, q.neg) {
                    wins += 1;
                }
                total += 1;
            }
            wins as f64 / total as f64
        };
        let before = acc(&init);
        let after = acc(&trained);
        assert!(after > before, "PPR accuracy {before} → {after}");
        assert!(after > 0.6, "trained PPR accuracy {after}");
    }

    #[test]
    fn from_tsppr_copies_shared_fields() {
        let ts = TsPprConfig::new(10, 20).with_k(7).with_alpha(0.02);
        let p = PprConfig::from_tsppr(&ts);
        assert_eq!(p.k, 7);
        assert_eq!(p.alpha, 0.02);
        assert_eq!(p.num_users, 10);
        assert_eq!(p.num_items, 20);
    }

    #[test]
    fn recommender_name_and_score() {
        let model = PprModel::init(&mut StdRng::seed_from_u64(0), 2, 3, 4, 0.1);
        let rec = PprRecommender::new(model.clone());
        assert_eq!(rec.name(), "PPR");
        assert_eq!(
            rec.model().score(UserId(1), ItemId(2)),
            model.score(UserId(1), ItemId(2))
        );
    }
}
