//! Online serving layer for TS-PPR.
//!
//! The RRC problem is defined over a *live* window (§3), and the paper's
//! motivation calls for "fast online algorithms". [`OnlineTsPpr`] keeps one
//! [`WindowState`] per user, serves Top-N repeat recommendations at any
//! moment, and — optionally — keeps learning: every observed eligible
//! repeat becomes fresh pairwise SGD steps against negatives sampled from
//! the live window (the online continuation of Algorithm 1).

use crate::model::TsPprModel;
use crate::params::ModelParams;
use crate::train::{sgd_step, SgdConsts, SgdScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_features::{FeatureContext, FeaturePipeline, Quadruple, RecContext, TrainStats};
use rrc_sequence::{classify, ConsumptionKind, Dataset, ItemId, UserId, WindowState};

/// Online-update settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Window capacity `|W|`.
    pub window: usize,
    /// Minimum gap Ω.
    pub omega: usize,
    /// Negatives sampled per observed eligible repeat (0 disables online
    /// learning — the model is then frozen and only the windows advance).
    pub negatives_per_event: usize,
    /// SGD learning rate for online steps.
    pub alpha: f64,
    /// Regularisation on factors for online steps.
    pub gamma: f64,
    /// Regularisation on transforms for online steps.
    pub lambda: f64,
    /// RNG seed for negative sampling.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            window: 100,
            omega: 10,
            negatives_per_event: 5,
            alpha: 0.01, // gentler than offline training: each event is seen once
            gamma: 0.05,
            lambda: 0.01,
            seed: 0x0411e,
        }
    }
}

/// Top-N repeat recommendations for one user against any parameter store.
///
/// This is the single-user serving primitive: it owns no state, so callers
/// that partition users across threads (the `rrc-serve` shards) and the
/// all-users-in-one-place [`OnlineTsPpr`] share exactly this code path.
pub fn recommend_single<M: ModelParams + ?Sized>(
    model: &M,
    pipeline: &FeaturePipeline,
    stats: &TrainStats,
    omega: usize,
    user: UserId,
    window: &WindowState,
    n: usize,
) -> Vec<ItemId> {
    let ctx = RecContext {
        user,
        window,
        stats,
        omega,
    };
    let fctx = FeatureContext { window, stats };
    let mut fbuf = Vec::with_capacity(pipeline.len());
    let mut scored: Vec<(f64, ItemId)> = ctx
        .candidates()
        .into_iter()
        .map(|v| {
            pipeline.extract_into(&fctx, v, &mut fbuf);
            (model.score(user, v, &fbuf), v)
        })
        .collect();
    rrc_features::recommend::top_n(&mut scored, n)
}

/// Ingest one consumption event for one user: classifies it against the
/// window, takes online SGD steps when it is an eligible repeat (and
/// `cfg.negatives_per_event > 0`), then advances the window. Returns the
/// classification and the number of SGD updates taken.
///
/// The single-user counterpart of [`OnlineTsPpr::observe`], usable with
/// externally-owned windows and any [`ModelParams`] store.
#[allow(clippy::too_many_arguments)]
pub fn observe_single<M: ModelParams + ?Sized>(
    model: &mut M,
    pipeline: &FeaturePipeline,
    stats: &TrainStats,
    cfg: &OnlineConfig,
    user: UserId,
    window: &mut WindowState,
    rng: &mut StdRng,
    item: ItemId,
) -> (ConsumptionKind, u64) {
    let kind = classify(window, item, cfg.omega);
    let mut updates = 0;
    if kind == ConsumptionKind::EligibleRepeat && cfg.negatives_per_event > 0 {
        updates = online_step_single(model, pipeline, stats, cfg, user, window, rng, item);
    }
    window.push(item);
    (kind, updates)
}

/// One online learning round for an observed eligible repeat: pairwise SGD
/// against `cfg.negatives_per_event` negatives sampled from the live
/// window (the online continuation of Algorithm 1). Every update goes
/// through the crate's single [`sgd_step`](crate::train) kernel — the same
/// code path as the serial and sharded offline trainers, so the
/// incremental stream trainer inherits their bit-for-bit determinism.
/// Returns the number of SGD updates taken.
#[allow(clippy::too_many_arguments)]
pub fn online_step_single<M: ModelParams + ?Sized>(
    model: &mut M,
    pipeline: &FeaturePipeline,
    stats: &TrainStats,
    cfg: &OnlineConfig,
    user: UserId,
    window: &WindowState,
    rng: &mut StdRng,
    pos: ItemId,
) -> u64 {
    // Sample negatives from the current eligible candidates.
    let mut candidates = window.eligible_candidates(cfg.omega);
    candidates.retain(|&v| v != pos);
    if candidates.is_empty() {
        return 0;
    }
    let fctx = FeatureContext { window, stats };
    let f_pos = pipeline.extract(&fctx, pos);
    let s = cfg.negatives_per_event.min(candidates.len());
    let mut negatives = Vec::with_capacity(s);
    for k in 0..s {
        let j = rng.gen_range(k..candidates.len());
        candidates.swap(k, j);
        let neg = candidates[k];
        negatives.push((neg, pipeline.extract(&fctx, neg)));
    }

    let consts = SgdConsts::for_online(cfg, model.k());
    let mut scratch = SgdScratch::new(model.k(), model.f_dim());
    let t = window.time();
    let mut updates = 0;
    for (neg, f_neg) in negatives {
        let q = Quadruple {
            user,
            pos,
            neg,
            t,
            f_pos: &f_pos,
            f_neg: &f_neg,
        };
        sgd_step(model, &q, &consts, &mut scratch);
        updates += 1;
    }
    updates
}

/// A live recommender: model + per-user window registry + online updates.
pub struct OnlineTsPpr {
    model: TsPprModel,
    pipeline: FeaturePipeline,
    stats: TrainStats,
    config: OnlineConfig,
    windows: Vec<WindowState>,
    rng: StdRng,
    events_observed: u64,
    online_updates: u64,
}

impl OnlineTsPpr {
    /// Start serving from a trained model. Windows begin empty; warm them
    /// with [`OnlineTsPpr::warm_from`] or by replaying history through
    /// [`OnlineTsPpr::observe`].
    pub fn new(
        model: TsPprModel,
        pipeline: FeaturePipeline,
        stats: TrainStats,
        config: OnlineConfig,
    ) -> Self {
        assert!(config.omega < config.window, "omega must be < window");
        assert_eq!(
            model.f_dim(),
            pipeline.len(),
            "pipeline dimension must match the model"
        );
        let num_users = model.num_users();
        OnlineTsPpr {
            rng: StdRng::seed_from_u64(config.seed),
            windows: (0..num_users)
                .map(|_| WindowState::new(config.window))
                .collect(),
            model,
            pipeline,
            stats,
            config,
            events_observed: 0,
            online_updates: 0,
        }
    }

    /// Warm every user's window from their (training) history without
    /// triggering online updates.
    pub fn warm_from(&mut self, history: &Dataset) {
        assert_eq!(
            history.num_users(),
            self.windows.len(),
            "history must cover the same users"
        );
        for (user, seq) in history.iter() {
            let w = &mut self.windows[user.index()];
            for &item in seq.events() {
                w.push(item);
            }
        }
    }

    /// The user's live window.
    pub fn window(&self, user: UserId) -> &WindowState {
        &self.windows[user.index()]
    }

    /// Mutable access to the user's live window (for callers that manage
    /// warm-up or state migration themselves).
    pub fn window_mut(&mut self, user: UserId) -> &mut WindowState {
        &mut self.windows[user.index()]
    }

    /// Borrow the (possibly online-updated) model.
    pub fn model(&self) -> &TsPprModel {
        &self.model
    }

    /// The serving configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Borrow the feature pipeline.
    pub fn pipeline(&self) -> &FeaturePipeline {
        &self.pipeline
    }

    /// Borrow the training-time statistics features are computed against.
    pub fn stats(&self) -> &TrainStats {
        &self.stats
    }

    /// Decompose into `(model, pipeline, stats, config, per-user windows)`
    /// so a sharded engine can take ownership of the state without
    /// replaying history.
    pub fn into_parts(
        self,
    ) -> (
        TsPprModel,
        FeaturePipeline,
        TrainStats,
        OnlineConfig,
        Vec<WindowState>,
    ) {
        (
            self.model,
            self.pipeline,
            self.stats,
            self.config,
            self.windows,
        )
    }

    /// Events consumed via [`OnlineTsPpr::observe`].
    pub fn events_observed(&self) -> u64 {
        self.events_observed
    }

    /// Online SGD steps taken so far.
    pub fn online_updates(&self) -> u64 {
        self.online_updates
    }

    /// Top-N repeat recommendations for `user` right now.
    pub fn recommend(&self, user: UserId, n: usize) -> Vec<ItemId> {
        recommend_single(
            &self.model,
            &self.pipeline,
            &self.stats,
            self.config.omega,
            user,
            &self.windows[user.index()],
            n,
        )
    }

    /// Ingest one consumption event: advances the user's window, and — when
    /// the event is an eligible repeat and online learning is enabled —
    /// takes pairwise SGD steps against freshly-sampled window negatives.
    /// Returns the event's classification.
    pub fn observe(&mut self, user: UserId, item: ItemId) -> ConsumptionKind {
        let (kind, updates) = observe_single(
            &mut self.model,
            &self.pipeline,
            &self.stats,
            &self.config,
            user,
            &mut self.windows[user.index()],
            &mut self.rng,
            item,
        );
        self.events_observed += 1;
        self.online_updates += updates;
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsPprConfig;
    use crate::train::TsPprTrainer;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{SamplingConfig, TrainingSet};

    fn serving_fixture(negatives_per_event: usize) -> (OnlineTsPpr, Dataset, Vec<Vec<ItemId>>) {
        let data = GeneratorConfig::tiny().with_seed(51).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 30);
        let pipeline = FeaturePipeline::standard();
        let training = TrainingSet::build(
            &split.train,
            &stats,
            &pipeline,
            &SamplingConfig {
                window: 30,
                omega: 5,
                negatives_per_positive: 5,
                seed: 2,
            },
        );
        let (model, _) = TsPprTrainer::new(
            TsPprConfig::new(data.num_users(), data.num_items())
                .with_k(8)
                .with_max_sweeps(10),
        )
        .train(&training);
        let mut online = OnlineTsPpr::new(
            model,
            FeaturePipeline::standard(),
            stats,
            OnlineConfig {
                window: 30,
                omega: 5,
                negatives_per_event,
                ..OnlineConfig::default()
            },
        );
        online.warm_from(&split.train);
        let tests: Vec<Vec<ItemId>> = split.test.iter().map(|s| s.events().to_vec()).collect();
        (online, split.train, tests)
    }

    #[test]
    fn windows_track_observed_events() {
        let (mut online, train, tests) = serving_fixture(0);
        let user = UserId(0);
        let before_time = online.window(user).time();
        assert_eq!(before_time, train.sequence(user).len());
        for &item in &tests[0] {
            online.observe(user, item);
        }
        assert_eq!(online.window(user).time(), before_time + tests[0].len());
        assert_eq!(online.events_observed(), tests[0].len() as u64);
        // Frozen model: no updates.
        assert_eq!(online.online_updates(), 0);
    }

    #[test]
    fn recommendations_come_from_eligible_candidates() {
        let (online, _, _) = serving_fixture(0);
        for u in 0..3u32 {
            let user = UserId(u);
            let list = online.recommend(user, 5);
            let eligible = online.window(user).eligible_candidates(5);
            for v in &list {
                assert!(eligible.contains(v));
            }
        }
    }

    #[test]
    fn online_learning_takes_steps_and_stays_finite() {
        let (mut online, _, tests) = serving_fixture(3);
        let frozen_model = online.model().clone();
        for (u, events) in tests.iter().enumerate() {
            for &item in events {
                online.observe(UserId(u as u32), item);
            }
        }
        assert!(online.online_updates() > 0, "no online steps happened");
        assert!(online.model().is_finite());
        assert_ne!(online.model(), &frozen_model, "model should have moved");
    }

    #[test]
    fn online_classification_matches_offline_scan() {
        let (mut online, train, tests) = serving_fixture(0);
        let user = UserId(1);
        // Replaying the test suffix through observe() must classify exactly
        // as a RepeatScan continuing from the warmed window.
        let warmed = WindowState::warmed(30, train.sequence(user).events());
        let scan = rrc_sequence::RepeatScan::with_window(&tests[user.index()], warmed, 5);
        let expected: Vec<ConsumptionKind> = scan.map(|e| e.kind).collect();
        let got: Vec<ConsumptionKind> = tests[user.index()]
            .iter()
            .map(|&item| online.observe(user, item))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "omega must be < window")]
    fn invalid_config_rejected() {
        let (online, _, _) = serving_fixture(0);
        let model = online.model().clone();
        let stats = TrainStats::compute(&Dataset::new(vec![], 60), 30);
        let _ = OnlineTsPpr::new(
            model,
            FeaturePipeline::standard(),
            stats,
            OnlineConfig {
                window: 10,
                omega: 10,
                ..OnlineConfig::default()
            },
        );
    }
}
