//! Training checkpoints: everything a trainer needs to continue a run
//! **bit-identically** to one that was never interrupted.
//!
//! The types live here so the trainers can emit and consume snapshots
//! without the core crate knowing how they are stored; `rrc-store` owns
//! the on-disk encoding. A snapshot is taken only at a convergence-check
//! boundary (serial) or a block barrier (sharded) — the points where the
//! loop state collapses to: the model, the RNG stream(s), the step
//! counter, the previous small-batch `r̃`, and the check history. The
//! scratch buffers are overwritten from scratch every SGD step, so they
//! are deliberately not captured.

use crate::config::TsPprConfig;
use crate::model::TsPprModel;
use crate::parallel::TrainMode;
use crate::train::ConvergencePoint;
use rrc_features::TrainingSet;
use std::time::Duration;

/// One resumable training snapshot.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Mode of the run that produced the snapshot ([`TrainMode::Hogwild`]
    /// runs are not checkpointable — their schedule is nondeterministic).
    pub mode: TrainMode,
    /// Shard count of the producing run (1 for serial).
    pub shards: usize,
    /// SGD steps completed.
    pub step: usize,
    /// Small-batch `r̃` from the last convergence check, the comparison
    /// value for the next `Δr̃` test.
    pub prev_r_tilde: Option<f64>,
    /// Wall-clock training time accumulated so far. Carried so a resumed
    /// run's report keeps a monotone time axis; wall time is the one field
    /// that is *not* bit-reproducible across runs.
    pub elapsed: Duration,
    /// Full convergence-check history up to the snapshot.
    pub checks: Vec<ConvergencePoint>,
    /// xoshiro256++ state per shard (index 0 is the serial stream).
    pub rng_states: Vec<[u64; 4]>,
    /// The model parameters at the snapshot.
    pub model: TsPprModel,
    /// Fingerprint of the producing configuration + training set
    /// ([`TrainCheckpoint::fingerprint_of`]); resuming under a different
    /// configuration is refused instead of silently diverging.
    pub fingerprint: u64,
}

impl TrainCheckpoint {
    /// Fingerprint the run-defining inputs: every [`TsPprConfig`] field
    /// that shapes the SGD trajectory plus the training-set dimensions.
    /// FNV-1a over the raw bit patterns — stable across runs and
    /// platforms, not meant to be cryptographic.
    pub fn fingerprint_of(config: &TsPprConfig, training: &TrainingSet) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for v in [
            config.num_users as u64,
            config.num_items as u64,
            config.k as u64,
            config.lambda.to_bits(),
            config.gamma.to_bits(),
            config.alpha.to_bits(),
            config.max_sweeps as u64,
            config.min_sweeps as u64,
            config.convergence_eps.to_bits(),
            config.check_fraction.to_bits(),
            config.check_interval_fraction.to_bits(),
            config.seed,
            config.identity_transform as u64,
            training.f_dim() as u64,
            training.num_quadruples() as u64,
            training.users_with_data().len() as u64,
        ] {
            eat(v);
        }
        h
    }

    /// Check that this snapshot can resume a run over
    /// `(config, training)` in `mode` with `shards` shards.
    pub fn compatible_with(
        &self,
        config: &TsPprConfig,
        training: &TrainingSet,
        mode: TrainMode,
        shards: usize,
    ) -> Result<(), String> {
        if self.mode != mode {
            return Err(format!(
                "checkpoint was written by a {} run, cannot resume as {}",
                self.mode, mode
            ));
        }
        if self.shards != shards {
            return Err(format!(
                "checkpoint has {} shard stream(s), run would use {}",
                self.shards, shards
            ));
        }
        let expect = TrainCheckpoint::fingerprint_of(config, training);
        if self.fingerprint != expect {
            return Err(format!(
                "configuration fingerprint mismatch (checkpoint {:#018x}, run {:#018x}) — \
                 resuming would silently diverge from the original run",
                self.fingerprint, expect
            ));
        }
        if self.rng_states.len() != self.shards {
            return Err(format!(
                "checkpoint carries {} RNG stream(s) for {} shard(s)",
                self.rng_states.len(),
                self.shards
            ));
        }
        Ok(())
    }
}

/// How a trainer should emit checkpoints during a run.
pub struct CheckpointOptions<'a> {
    /// Emit a snapshot every N convergence checks (0 disables emission).
    pub every_checks: usize,
    /// Receives each snapshot. Returning `false` aborts training on the
    /// spot — the hook the resume smoke uses to simulate a SIGKILL right
    /// after a checkpoint hits disk.
    pub sink: &'a mut dyn FnMut(&TrainCheckpoint) -> bool,
}

impl std::fmt::Debug for CheckpointOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointOptions")
            .field("every_checks", &self.every_checks)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};

    fn training() -> (TsPprConfig, TrainingSet) {
        let data = GeneratorConfig::gowalla_like(0.02).generate();
        let split = data.split(0.7);
        let stats = TrainStats::compute(&split.train, 100);
        let training = TrainingSet::build(
            &split.train,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig::default(),
        );
        let config = TsPprConfig::gowalla_defaults(data.num_users(), data.num_items());
        (config, training)
    }

    #[test]
    fn fingerprint_tracks_run_defining_fields() {
        let (config, training) = training();
        let base = TrainCheckpoint::fingerprint_of(&config, &training);
        assert_eq!(base, TrainCheckpoint::fingerprint_of(&config, &training));
        let reseeded = config.clone().with_seed(config.seed ^ 1);
        assert_ne!(base, TrainCheckpoint::fingerprint_of(&reseeded, &training));
        let rescaled = config.clone().with_k(config.k + 1);
        assert_ne!(base, TrainCheckpoint::fingerprint_of(&rescaled, &training));
    }

    #[test]
    fn incompatible_resume_is_refused() {
        let (config, training) = training();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let model = TsPprModel::init(&mut rng, config.num_users, config.num_items, 4, 4, 0.1, 0.1);
        let ck = TrainCheckpoint {
            mode: TrainMode::Serial,
            shards: 1,
            step: 10,
            prev_r_tilde: None,
            elapsed: Duration::ZERO,
            checks: Vec::new(),
            rng_states: vec![[1, 2, 3, 4]],
            model,
            fingerprint: TrainCheckpoint::fingerprint_of(&config, &training),
        };
        assert!(ck
            .compatible_with(&config, &training, TrainMode::Serial, 1)
            .is_ok());
        assert!(ck
            .compatible_with(&config, &training, TrainMode::Sharded, 1)
            .is_err());
        assert!(ck
            .compatible_with(&config, &training, TrainMode::Serial, 2)
            .is_err());
        let other = config.clone().with_alpha(config.alpha * 2.0);
        assert!(ck
            .compatible_with(&other, &training, TrainMode::Serial, 1)
            .is_err());
    }
}
