//! Parameter-store abstraction over TS-PPR model weights.
//!
//! [`ModelParams`] is the capability the scoring and online-learning code
//! actually needs: row-level access to `U`, `V`, and the per-user `A_u`.
//! [`TsPprModel`](crate::TsPprModel) implements it directly; a serving
//! shard implements it as a *copy-on-write overlay* over a shared
//! `Arc<TsPprModel>` snapshot (see the `rrc-serve` crate), which is what
//! lets many shards take online SGD steps concurrently against one
//! immutable published model.
//!
//! The preference function (Eq. 5) and pairwise margin (Eq. 6) ship as
//! provided methods so every implementation scores identically.

use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, UserId};

/// Row-level access to TS-PPR parameters, plus the scoring rules built on
/// them.
pub trait ModelParams {
    /// Latent dimension `K`.
    fn k(&self) -> usize;

    /// Observable feature dimension `F`.
    fn f_dim(&self) -> usize;

    /// Borrow user `u`'s latent factor (length `K`).
    fn user_factor(&self, user: UserId) -> &[f64];

    /// Borrow item `v`'s latent factor (length `K`).
    fn item_factor(&self, item: ItemId) -> &[f64];

    /// Borrow user `u`'s transform `A_u` (`K × F`).
    fn transform(&self, user: UserId) -> &DMatrix;

    /// Mutable user factor (overlay implementations materialise the row on
    /// first write).
    fn user_factor_mut(&mut self, user: UserId) -> &mut [f64];

    /// Mutable item factor.
    fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64];

    /// Mutable transform.
    fn transform_mut(&mut self, user: UserId) -> &mut DMatrix;

    /// Full time-sensitive preference `r_uvt = uᵀ(v + A_u f)` (Eq. 5).
    fn score(&self, user: UserId, item: ItemId, f: &[f64]) -> f64 {
        debug_assert_eq!(f.len(), self.f_dim(), "feature dimension mismatch");
        let u = self.user_factor(user);
        let v = self.item_factor(item);
        let a = self.transform(user);
        // uᵀv + uᵀ(A f), computed without allocating: Σ_r u_r (v_r + (A f)_r).
        let mut acc = 0.0;
        for r in 0..self.k() {
            let af: f64 = a.row(r).iter().zip(f).map(|(x, y)| x * y).sum();
            acc += u[r] * (v[r] + af);
        }
        acc
    }

    /// The pairwise margin `r_{uv_it} − r_{uv_jt}` (factored Eq. 6, one
    /// pass, no allocation).
    fn margin(&self, user: UserId, pos: ItemId, neg: ItemId, f_pos: &[f64], f_neg: &[f64]) -> f64 {
        debug_assert_eq!(f_pos.len(), self.f_dim());
        debug_assert_eq!(f_neg.len(), self.f_dim());
        let u = self.user_factor(user);
        let vi = self.item_factor(pos);
        let vj = self.item_factor(neg);
        let a = self.transform(user);
        let mut acc = 0.0;
        for r in 0..self.k() {
            let arow = a.row(r);
            let mut adf = 0.0;
            for c in 0..self.f_dim() {
                adf += arow[c] * (f_pos[c] - f_neg[c]);
            }
            acc += u[r] * (vi[r] - vj[r] + adf);
        }
        acc
    }
}
