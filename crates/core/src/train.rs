//! The SGD trainer of Algorithm 1 with the paper's small-batch `Δr̃`
//! convergence check (§5.6.1).

use crate::checkpoint::{CheckpointOptions, TrainCheckpoint};
use crate::config::TsPprConfig;
use crate::model::TsPprModel;
use crate::parallel::TrainMode;
use crate::params::ModelParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_features::{Quadruple, TrainingSet};
use rrc_linalg::{ln_sigmoid, sigmoid};
use std::time::{Duration, Instant};

/// One convergence-check measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// SGD step at which the check ran.
    pub step: usize,
    /// Mean pairwise margin `r̃` over the small batch — the paper's
    /// convergence statistic (Fig. 12's y-axis).
    pub r_tilde: f64,
    /// Mean `−ln σ(margin)` over the small batch (the data term of Eq. 7),
    /// for loss-curve diagnostics.
    pub nll: f64,
    /// Wall-clock time since training started, so the convergence curve
    /// (Fig. 12) can be plotted against time as well as steps.
    pub elapsed: Duration,
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Total SGD steps performed.
    pub steps: usize,
    /// Whether `|Δr̃| ≤ ε` was reached before the sweep cap.
    pub converged: bool,
    /// Total training wall-clock time.
    pub elapsed: Duration,
    /// The `r̃` trace, one point per check — reproduces Fig. 12.
    pub checks: Vec<ConvergencePoint>,
}

impl TrainReport {
    /// The final `r̃`, or 0 if no check ran.
    pub fn final_r_tilde(&self) -> f64 {
        self.checks.last().map_or(0.0, |c| c.r_tilde)
    }
}

/// SGD trainer for [`TsPprModel`].
#[derive(Debug, Clone)]
pub struct TsPprTrainer {
    config: TsPprConfig,
}

impl TsPprTrainer {
    /// Create a trainer; the configuration is validated here.
    pub fn new(config: TsPprConfig) -> Self {
        config.validate();
        TsPprTrainer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TsPprConfig {
        &self.config
    }

    /// Run Algorithm 1 on a pre-sampled training set and return the trained
    /// model with its convergence trace.
    ///
    /// An empty training set returns the freshly-initialised model and an
    /// empty report (nothing to learn from).
    pub fn train(&self, training: &TrainingSet) -> (TsPprModel, TrainReport) {
        self.train_with(training, None, None)
    }

    /// [`Self::train`] with checkpointing: resume from a prior snapshot
    /// and/or emit snapshots while running.
    ///
    /// A resumed run replays the exact trajectory of an uninterrupted one:
    /// snapshots are taken only at convergence-check boundaries, where the
    /// loop state is fully described by (model, RNG stream, step,
    /// previous `r̃`, check history) — the scratch buffers are rebuilt
    /// from scratch every step. Only wall-clock times differ.
    ///
    /// # Panics
    /// Panics when `resume` is incompatible with this configuration and
    /// training set (see [`TrainCheckpoint::compatible_with`]) — silently
    /// diverging from the original run would be worse.
    pub fn train_with(
        &self,
        training: &TrainingSet,
        resume: Option<&TrainCheckpoint>,
        mut checkpoint: Option<CheckpointOptions<'_>>,
    ) -> (TsPprModel, TrainReport) {
        // Instrumentation: the whole run is a span, each sweep of |D|
        // steps and each convergence check land in their own
        // span-duration histograms on the global registry (handles are
        // pre-registered so the SGD loop stays lock-free).
        let obs = rrc_obs::global();
        let _train_span = obs.span("tsppr.train");
        let _train_prof = rrc_obs::ProfGuard::enter("train");
        let sweep_hist = obs.span_histogram("tsppr.train.sweep");
        let check_hist = obs.span_histogram("tsppr.train.check");
        let steps_total = obs.counter("tsppr_train_steps_total");
        let train_start = Instant::now();

        let cfg = &self.config;
        if let Some(ck) = resume {
            ck.compatible_with(cfg, training, TrainMode::Serial, 1)
                .unwrap_or_else(|why| panic!("cannot resume serial training: {why}"));
        }
        // The accumulated wall clock of the interrupted run(s), so the
        // resumed report's time axis stays monotone.
        let elapsed_base = resume.map_or(Duration::ZERO, |ck| ck.elapsed);

        let (mut model, mut rng) = match resume {
            Some(ck) => (ck.model.clone(), StdRng::from_state(ck.rng_states[0])),
            None => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                let model = TsPprModel::init(
                    &mut rng,
                    cfg.num_users,
                    cfg.num_items,
                    cfg.k,
                    training.f_dim().max(1),
                    cfg.gamma,
                    cfg.lambda,
                );
                (model, rng)
            }
        };
        let start_step = resume.map_or(0, |ck| ck.step);
        let mut report = TrainReport {
            steps: start_step,
            converged: false,
            elapsed: Duration::ZERO,
            checks: resume.map_or_else(Vec::new, |ck| ck.checks.clone()),
        };
        if training.is_empty() {
            report.elapsed = elapsed_base + train_start.elapsed();
            return (model, report);
        }
        if cfg.identity_transform && resume.is_none() {
            assert_eq!(
                cfg.k,
                training.f_dim(),
                "identity_transform requires K == F (§4.2.1 case 2)"
            );
            for u in 0..cfg.num_users {
                *model.transform_mut(rrc_sequence::UserId(u as u32)) =
                    rrc_linalg::DMatrix::identity(cfg.k);
            }
        }

        let d = training.num_quadruples();
        let check_interval = ((d as f64 * cfg.check_interval_fraction) as usize).max(1);
        let max_steps = cfg.max_sweeps.saturating_mul(d).max(check_interval);
        let min_steps = cfg.min_sweeps.saturating_mul(d).min(max_steps);
        let small_batch = training.small_batch(cfg.check_fraction);
        let fingerprint = TrainCheckpoint::fingerprint_of(cfg, training);

        let mut scratch = SgdScratch::new(cfg.k, training.f_dim());
        let consts = SgdConsts::from_config(cfg);
        let mut prev_r_tilde: Option<f64> = resume.and_then(|ck| ck.prev_r_tilde);
        let mut sweep_started = Instant::now();

        'sgd: for step in (start_step + 1)..=max_steps {
            {
                let _p = rrc_obs::ProfGuard::enter("sweep");
                let q = training
                    .sample(&mut rng)
                    .expect("non-empty training set always samples");
                sgd_step(&mut model, &q, &consts, &mut scratch);
            }

            report.steps = step;
            if step % d == 0 {
                sweep_hist.record_duration(sweep_started.elapsed());
                sweep_started = Instant::now();
            }
            if step % check_interval == 0 {
                let _prof = rrc_obs::ProfGuard::enter("check");
                let (r_tilde, nll) = {
                    let _check_timer = check_hist.timer();
                    batch_statistics(&model, &small_batch)
                };
                report.checks.push(ConvergencePoint {
                    step,
                    r_tilde,
                    nll,
                    elapsed: elapsed_base + train_start.elapsed(),
                });
                debug_assert!(model.is_finite(), "parameters diverged at step {step}");
                if let Some(prev) = prev_r_tilde {
                    if step >= min_steps && (r_tilde - prev).abs() <= cfg.convergence_eps {
                        report.converged = true;
                        break;
                    }
                }
                prev_r_tilde = Some(r_tilde);
                if let Some(opts) = checkpoint.as_mut() {
                    if opts.every_checks > 0
                        && report.checks.len().is_multiple_of(opts.every_checks)
                    {
                        let snapshot = TrainCheckpoint {
                            mode: TrainMode::Serial,
                            shards: 1,
                            step,
                            prev_r_tilde,
                            elapsed: elapsed_base + train_start.elapsed(),
                            checks: report.checks.clone(),
                            rng_states: vec![rng.state()],
                            model: model.clone(),
                            fingerprint,
                        };
                        if !(opts.sink)(&snapshot) {
                            // Simulated kill: stop mid-run; only the
                            // emitted snapshots survive.
                            break 'sgd;
                        }
                    }
                }
            }
        }
        steps_total.add((report.steps - start_step) as u64);
        report.elapsed = elapsed_base + train_start.elapsed();
        (model, report)
    }
}

/// Per-step scratch buffers reused across SGD steps, shared between the
/// serial trainer and every shard/worker of the parallel trainers.
#[derive(Debug, Clone)]
pub(crate) struct SgdScratch {
    pub(crate) u_old: Vec<f64>,
    pub(crate) grad_u: Vec<f64>,
    pub(crate) df: Vec<f64>,
}

impl SgdScratch {
    pub(crate) fn new(k: usize, f_dim: usize) -> Self {
        SgdScratch {
            u_old: vec![0.0; k],
            grad_u: vec![0.0; k],
            df: vec![0.0; f_dim],
        }
    }
}

/// The per-step constants of Algorithm 1, precomputed once per run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SgdConsts {
    pub(crate) k: usize,
    pub(crate) alpha: f64,
    pub(crate) decay_factor: f64,
    pub(crate) decay_transform: f64,
    pub(crate) identity_transform: bool,
}

impl SgdConsts {
    pub(crate) fn from_config(cfg: &TsPprConfig) -> Self {
        SgdConsts {
            k: cfg.k,
            alpha: cfg.alpha,
            decay_factor: 1.0 - cfg.alpha * cfg.gamma,
            decay_transform: 1.0 - cfg.alpha * cfg.lambda,
            identity_transform: cfg.identity_transform,
        }
    }

    /// The same constants derived from an online-serving configuration:
    /// the incremental (per-event) trainers take exactly the offline step,
    /// just with the online learning rate and regularisers.
    pub(crate) fn for_online(cfg: &crate::online::OnlineConfig, k: usize) -> Self {
        SgdConsts {
            k,
            alpha: cfg.alpha,
            decay_factor: 1.0 - cfg.alpha * cfg.gamma,
            decay_transform: 1.0 - cfg.alpha * cfg.lambda,
            identity_transform: false,
        }
    }
}

/// One SGD step of Algorithm 1 (lines 5–9, Eqs. 12–15) against any
/// parameter store. This is the *only* implementation of the update in the
/// crate: the serial trainer applies it to [`TsPprModel`] and the
/// sharded-deterministic trainer applies it to shard-local rows, which is
/// what makes a 1-shard parallel run bit-identical to a serial run.
#[inline]
pub(crate) fn sgd_step<P: ModelParams + ?Sized>(
    params: &mut P,
    q: &Quadruple<'_>,
    c: &SgdConsts,
    s: &mut SgdScratch,
) {
    // Margin and the common coefficient α(1 − p(v_i >_ut v_j)).
    let margin = params.margin(q.user, q.pos, q.neg, q.f_pos, q.f_neg);
    let coef = c.alpha * (1.0 - sigmoid(margin));

    // df = f_i − f_j; grad_u = (v_i − v_j) + A_u df   (Eq. 12).
    for ((d, &fp), &fn_) in s.df.iter_mut().zip(q.f_pos).zip(q.f_neg) {
        *d = fp - fn_;
    }
    {
        let a = params.transform(q.user);
        let vi = params.item_factor(q.pos);
        let vj = params.item_factor(q.neg);
        for r in 0..c.k {
            s.grad_u[r] = vi[r] - vj[r] + dot(a.row(r), &s.df);
        }
        s.u_old.copy_from_slice(params.user_factor(q.user));
    }

    // u ← (1 − αγ)u + coef · grad_u   (line 6).
    {
        let u = params.user_factor_mut(q.user);
        for (x, g) in u.iter_mut().zip(&s.grad_u) {
            *x = c.decay_factor * *x + coef * g;
        }
    }
    // v_i ← (1 − αγ)v_i + coef · u    (line 7, Eq. 13).
    {
        let vi = params.item_factor_mut(q.pos);
        for (x, u0) in vi.iter_mut().zip(&s.u_old) {
            *x = c.decay_factor * *x + coef * u0;
        }
    }
    // v_j ← (1 − αγ)v_j − coef · u    (line 8, Eq. 14).
    {
        let vj = params.item_factor_mut(q.neg);
        for (x, u0) in vj.iter_mut().zip(&s.u_old) {
            *x = c.decay_factor * *x - coef * u0;
        }
    }
    // A_u ← (1 − αλ)A_u + coef · u ⊗ df  (line 9, Eq. 15); frozen
    // to I under the identity-transform simplification.
    if !c.identity_transform {
        let a = params.transform_mut(q.user);
        a.scale(c.decay_transform);
        a.rank1_update(coef, &s.u_old, &s.df);
    }
}

/// Partial sums `(Σ margin, Σ −ln σ(margin))` over a slice of quadruples —
/// the additive kernel behind [`batch_statistics`]. The parallel trainers
/// compute one partial per chunk and combine them in a fixed order, so a
/// single-chunk evaluation reproduces the serial sum bit-for-bit.
pub(crate) fn batch_partial<P: ModelParams + ?Sized>(
    params: &P,
    batch: &[Quadruple<'_>],
) -> (f64, f64) {
    let mut sum_margin = 0.0;
    let mut sum_nll = 0.0;
    for q in batch {
        let m = params.margin(q.user, q.pos, q.neg, q.f_pos, q.f_neg);
        sum_margin += m;
        sum_nll -= ln_sigmoid(m);
    }
    (sum_margin, sum_nll)
}

/// Mean margin `r̃` and mean `−ln σ(margin)` over a batch of quadruples.
pub(crate) fn batch_statistics<P: ModelParams + ?Sized>(
    params: &P,
    batch: &[Quadruple<'_>],
) -> (f64, f64) {
    if batch.is_empty() {
        return (0.0, 0.0);
    }
    let (sum_margin, sum_nll) = batch_partial(params, batch);
    let n = batch.len() as f64;
    (sum_margin / n, sum_nll / n)
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_datagen::GeneratorConfig;
    use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
    use rrc_sequence::Dataset;

    fn fixture() -> (Dataset, TrainStats, TrainingSet) {
        let data = GeneratorConfig::tiny().with_seed(11).generate();
        let stats = TrainStats::compute(&data, 30);
        let pipeline = FeaturePipeline::standard();
        let sampling = SamplingConfig {
            window: 30,
            omega: 5,
            negatives_per_positive: 5,
            seed: 3,
        };
        let training = TrainingSet::build(&data, &stats, &pipeline, &sampling);
        (data, stats, training)
    }

    fn config(data: &Dataset) -> TsPprConfig {
        TsPprConfig::new(data.num_users(), data.num_items())
            .with_k(8)
            .with_max_sweeps(20)
            .with_seed(5)
    }

    #[test]
    fn training_increases_r_tilde() {
        let (data, _, training) = fixture();
        assert!(!training.is_empty());
        let (_, report) = TsPprTrainer::new(config(&data)).train(&training);
        assert!(report.checks.len() >= 2, "expected multiple checks");
        let first = report.checks.first().unwrap().r_tilde;
        let last = report.final_r_tilde();
        assert!(
            last > first,
            "r̃ should increase during training: {first} → {last}"
        );
        // Positive margin after training: positives beat negatives on
        // average.
        assert!(last > 0.0, "final r̃ = {last}");
    }

    #[test]
    fn nll_decreases() {
        let (data, _, training) = fixture();
        let (_, report) = TsPprTrainer::new(config(&data)).train(&training);
        let first = report.checks.first().unwrap().nll;
        let last = report.checks.last().unwrap().nll;
        assert!(last < first, "nll should decrease: {first} → {last}");
        assert!(last < std::f64::consts::LN_2, "below chance-level loss");
    }

    #[test]
    fn trained_model_is_finite_and_deterministic() {
        let (data, _, training) = fixture();
        let (m1, r1) = TsPprTrainer::new(config(&data)).train(&training);
        let (m2, r2) = TsPprTrainer::new(config(&data)).train(&training);
        assert!(m1.is_finite());
        assert_eq!(m1, m2);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn different_seed_different_model() {
        let (data, _, training) = fixture();
        let (m1, _) = TsPprTrainer::new(config(&data)).train(&training);
        let (m2, _) = TsPprTrainer::new(config(&data).with_seed(77)).train(&training);
        assert_ne!(m1, m2);
    }

    #[test]
    fn empty_training_set_returns_initial_model() {
        let data = Dataset::new(vec![rrc_sequence::Sequence::from_raw(vec![0, 1, 2])], 3);
        let stats = TrainStats::compute(&data, 10);
        let training = TrainingSet::build(
            &data,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig {
                window: 10,
                omega: 2,
                negatives_per_positive: 3,
                seed: 0,
            },
        );
        assert!(training.is_empty());
        let (model, report) = TsPprTrainer::new(config(&data)).train(&training);
        assert_eq!(report.steps, 0);
        assert!(!report.converged);
        assert!(report.checks.is_empty());
        assert!(model.is_finite());
    }

    #[test]
    fn identity_transform_freezes_a_matrices() {
        let (data, _, training) = fixture();
        let cfg = config(&data).with_k(4).with_identity_transform(true);
        let (model, _) = TsPprTrainer::new(cfg).train(&training);
        let eye = rrc_linalg::DMatrix::identity(4);
        for u in 0..data.num_users() {
            assert_eq!(
                model.transform(rrc_sequence::UserId(u as u32)),
                &eye,
                "A_u must remain the identity"
            );
        }
        // The model still learns: positive mean margin on training data.
        let mut sum = 0.0;
        let mut n = 0.0;
        for q in training.iter_quadruples() {
            sum += model.margin(q.user, q.pos, q.neg, q.f_pos, q.f_neg);
            n += 1.0;
        }
        assert!(sum / n > 0.0, "identity-transform model failed to learn");
    }

    #[test]
    #[should_panic(expected = "identity_transform requires K == F")]
    fn identity_transform_requires_k_eq_f() {
        let (data, _, training) = fixture();
        let cfg = config(&data).with_k(8).with_identity_transform(true);
        let _ = TsPprTrainer::new(cfg).train(&training);
    }

    #[test]
    fn report_carries_wall_clock_and_feeds_global_spans() {
        let (data, _, training) = fixture();
        let check_hist = rrc_obs::global().span_histogram("tsppr.train.check");
        let sweep_hist = rrc_obs::global().span_histogram("tsppr.train.sweep");
        let (checks_before, sweeps_before) =
            (check_hist.snapshot().count(), sweep_hist.snapshot().count());
        let (_, report) = TsPprTrainer::new(config(&data)).train(&training);
        assert!(report.elapsed > Duration::ZERO);
        // Per-check wall clock is monotone and bounded by the total.
        let mut prev = Duration::ZERO;
        for c in &report.checks {
            assert!(c.elapsed >= prev, "elapsed must be monotone");
            prev = c.elapsed;
        }
        assert!(report.checks.last().unwrap().elapsed <= report.elapsed);
        // Every check (and at least one full sweep) landed in the global
        // span histograms. Other tests run concurrently against the same
        // global registry, so only lower bounds are checkable.
        assert!(check_hist.snapshot().count() >= checks_before + report.checks.len() as u64);
        assert!(sweep_hist.snapshot().count() > sweeps_before);
        assert!(rrc_obs::global().counter("tsppr_train_steps_total").get() >= report.steps as u64);
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        let (data, _, training) = fixture();
        let trainer = TsPprTrainer::new(config(&data));
        let (full_model, full_report) = trainer.train(&training);

        // Interrupted run: snapshot at every check, simulated kill right
        // after the second snapshot lands.
        let mut snaps: Vec<TrainCheckpoint> = Vec::new();
        let mut sink = |ck: &TrainCheckpoint| {
            snaps.push(ck.clone());
            snaps.len() < 2
        };
        let (_, killed) = trainer.train_with(
            &training,
            None,
            Some(CheckpointOptions {
                every_checks: 1,
                sink: &mut sink,
            }),
        );
        assert_eq!(snaps.len(), 2);
        assert!(!killed.converged);
        assert!(killed.steps < full_report.steps, "kill must interrupt");

        let (resumed_model, resumed_report) = trainer.train_with(&training, Some(&snaps[1]), None);
        assert_eq!(resumed_model, full_model, "resumed parameters diverged");
        assert_eq!(resumed_report.steps, full_report.steps);
        assert_eq!(resumed_report.converged, full_report.converged);
        assert_eq!(resumed_report.checks.len(), full_report.checks.len());
        for (a, b) in resumed_report.checks.iter().zip(&full_report.checks) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.r_tilde.to_bits(), b.r_tilde.to_bits());
            assert_eq!(a.nll.to_bits(), b.nll.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "cannot resume serial training")]
    fn incompatible_checkpoint_is_refused() {
        let (data, _, training) = fixture();
        let trainer = TsPprTrainer::new(config(&data));
        let mut snaps: Vec<TrainCheckpoint> = Vec::new();
        let mut sink = |ck: &TrainCheckpoint| {
            snaps.push(ck.clone());
            false
        };
        let _ = trainer.train_with(
            &training,
            None,
            Some(CheckpointOptions {
                every_checks: 1,
                sink: &mut sink,
            }),
        );
        // A different seed is a different trajectory — refuse to resume.
        let other = TsPprTrainer::new(config(&data).with_seed(999));
        let _ = other.train_with(&training, Some(&snaps[0]), None);
    }

    #[test]
    fn convergence_stops_before_sweep_cap() {
        let (data, _, training) = fixture();
        // A generous epsilon forces early convergence.
        let mut cfg = config(&data);
        cfg.convergence_eps = 10.0;
        cfg.min_sweeps = 0;
        let (_, report) = TsPprTrainer::new(cfg).train(&training);
        assert!(report.converged);
        assert_eq!(report.checks.len(), 2); // converges at the 2nd check
    }

    #[test]
    fn trained_margin_separates_on_training_quadruples() {
        let (data, _, training) = fixture();
        let (model, _) = TsPprTrainer::new(config(&data)).train(&training);
        let mut wins = 0usize;
        let mut total = 0usize;
        for q in training.iter_quadruples() {
            if model.margin(q.user, q.pos, q.neg, q.f_pos, q.f_neg) > 0.0 {
                wins += 1;
            }
            total += 1;
        }
        let acc = wins as f64 / total as f64;
        assert!(acc > 0.7, "pairwise training accuracy {acc}");
    }
}
