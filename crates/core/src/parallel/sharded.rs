//! Sharded-deterministic parallel SGD (see the module docs in
//! [`super`]).
//!
//! # Why the output is bit-identical to the serial trainer at one shard
//!
//! Every source of nondeterminism is pinned:
//!
//! 1. **Initialisation** consumes the same RNG stream as the serial
//!    trainer, and shard 0 *inherits* that stream afterwards — exactly as
//!    the serial loop continues it. Shards `s ≥ 1` get independent streams
//!    seeded `seed ^ mix64(s)`.
//! 2. **Sampling** inside a shard replays [`TrainingSet::sample`]'s three
//!    `gen_range` draws verbatim, restricted to the shard's user list. With
//!    one shard that list *is* `users_with_data()` in the same order, so
//!    every draw lands on the same quadruple.
//! 3. **Updates** go through the one shared [`sgd_step`] kernel, applied to
//!    shard-local rows that were bitwise copies of the global parameters.
//! 4. **Merging** is row-sparse: each shard records which item rows its
//!    steps touched, and only those rows are merged — adopt the first
//!    active shard's row, then add the remaining touchers' deltas in fixed
//!    shard order. Rows a shard never wrote are bitwise copies of the
//!    global matrix (the merge re-syncs every shard's local copy), so
//!    skipping them is exact, and with a single active shard adoption *is*
//!    the serial update.
//! 5. **Convergence checks** run at the serial cadence (every
//!    `|D| · check_interval_fraction` steps) over the merged parameters,
//!    with the batch summed in `shards` fixed chunks — one chunk being the
//!    serial sum bit-for-bit.
//!
//! Threads never enter the picture: they only *schedule* shards
//! ([`super::run_on_shards`]), so any thread count produces the same bytes
//! for a fixed `(seed, shards)` pair.

use super::{
    batch_statistics_chunked, run_on_shards, shard_for, shard_stream_seed, split_block,
    ParallelConfig, TrainMode,
};
use crate::checkpoint::{CheckpointOptions, TrainCheckpoint};
use crate::config::TsPprConfig;
use crate::model::TsPprModel;
use crate::params::ModelParams;
use crate::train::{sgd_step, ConvergencePoint, SgdConsts, SgdScratch, TrainReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_features::TrainingSet;
use rrc_linalg::DMatrix;
use rrc_sequence::{ItemId, UserId};
use std::time::{Duration, Instant};

/// One shard's private state: the users it owns, their `u` rows and `A_u`
/// transforms, a block-local copy of the item matrix, and its RNG stream.
/// `stamp`/`touched` record which item rows the current block's SGD steps
/// wrote (`stamp[r] == epoch` ⟺ touched), so the barrier merge can stay
/// row-sparse instead of walking the full item matrix.
struct ShardState {
    users: Vec<UserId>,
    u: DMatrix,
    a: Vec<DMatrix>,
    v: DMatrix,
    rng: StdRng,
    scratch: SgdScratch,
    stamp: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
}

/// [`ModelParams`] over one shard's storage, used by the shared
/// [`sgd_step`] kernel. User lookups go through the global→local row map;
/// a shard only ever samples users it owns, so the map is total here.
struct ShardParams<'a> {
    k: usize,
    f_dim: usize,
    local_of: &'a [u32],
    u: &'a mut DMatrix,
    a: &'a mut [DMatrix],
    v: &'a mut DMatrix,
    stamp: &'a mut [u32],
    touched: &'a mut Vec<u32>,
    epoch: u32,
}

impl ModelParams for ShardParams<'_> {
    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn f_dim(&self) -> usize {
        self.f_dim
    }

    #[inline]
    fn user_factor(&self, user: UserId) -> &[f64] {
        self.u.row(self.local_of[user.index()] as usize)
    }

    #[inline]
    fn item_factor(&self, item: ItemId) -> &[f64] {
        self.v.row(item.index())
    }

    #[inline]
    fn transform(&self, user: UserId) -> &DMatrix {
        &self.a[self.local_of[user.index()] as usize]
    }

    #[inline]
    fn user_factor_mut(&mut self, user: UserId) -> &mut [f64] {
        self.u.row_mut(self.local_of[user.index()] as usize)
    }

    #[inline]
    fn item_factor_mut(&mut self, item: ItemId) -> &mut [f64] {
        let r = item.index();
        if self.stamp[r] != self.epoch {
            self.stamp[r] = self.epoch;
            self.touched.push(r as u32);
        }
        self.v.row_mut(r)
    }

    #[inline]
    fn transform_mut(&mut self, user: UserId) -> &mut DMatrix {
        &mut self.a[self.local_of[user.index()] as usize]
    }
}

/// Read-only view of the merged parameters at a block barrier: `V` is
/// already merged, `u`/`A_u` rows still live in their owning shards, users
/// without training data keep their resident (initial) rows.
struct MergedView<'a> {
    k: usize,
    f_dim: usize,
    owner: &'a [u32],
    local_of: &'a [u32],
    states: &'a [ShardState],
    u_res: &'a DMatrix,
    a_res: &'a [DMatrix],
    v: &'a DMatrix,
}

impl ModelParams for MergedView<'_> {
    #[inline]
    fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn f_dim(&self) -> usize {
        self.f_dim
    }

    #[inline]
    fn user_factor(&self, user: UserId) -> &[f64] {
        match self.owner[user.index()] {
            u32::MAX => self.u_res.row(user.index()),
            s => self.states[s as usize]
                .u
                .row(self.local_of[user.index()] as usize),
        }
    }

    #[inline]
    fn item_factor(&self, item: ItemId) -> &[f64] {
        self.v.row(item.index())
    }

    #[inline]
    fn transform(&self, user: UserId) -> &DMatrix {
        match self.owner[user.index()] {
            u32::MAX => &self.a_res[user.index()],
            s => &self.states[s as usize].a[self.local_of[user.index()] as usize],
        }
    }

    fn user_factor_mut(&mut self, _user: UserId) -> &mut [f64] {
        unreachable!("MergedView is read-only")
    }

    fn item_factor_mut(&mut self, _item: ItemId) -> &mut [f64] {
        unreachable!("MergedView is read-only")
    }

    fn transform_mut(&mut self, _user: UserId) -> &mut DMatrix {
        unreachable!("MergedView is read-only")
    }
}

/// Train under the sharded-deterministic regime — same contract as
/// [`crate::TsPprTrainer::train_with`] — resuming from a snapshot and/or
/// emitting snapshots at block barriers.
///
/// Snapshots are taken only at convergence-check barriers, where the
/// invariant "every non-empty shard's local `V` is a bitwise copy of the
/// merged global `V`" holds — so a resumed run rebuilds shard state from
/// the snapshot model exactly as the uninterrupted run left it, and only
/// the per-shard RNG streams carry history.
pub(super) fn train_with(
    cfg: &TsPprConfig,
    par: &ParallelConfig,
    training: &TrainingSet,
    resume: Option<&TrainCheckpoint>,
    mut checkpoint: Option<CheckpointOptions<'_>>,
) -> (TsPprModel, TrainReport) {
    let obs = rrc_obs::global();
    let _train_span = obs.span("tsppr.train.sharded");
    let _train_prof = rrc_obs::ProfGuard::enter("train");
    let block_hist = obs.span_histogram("tsppr.train.worker_block");
    let check_hist = obs.span_histogram("tsppr.train.check");
    let steps_total = obs.counter("tsppr_train_steps_total");
    let train_start = Instant::now();

    if let Some(ck) = resume {
        ck.compatible_with(cfg, training, TrainMode::Sharded, par.shards)
            .unwrap_or_else(|why| panic!("cannot resume sharded training: {why}"));
    }
    let elapsed_base = resume.map_or(Duration::ZERO, |ck| ck.elapsed);

    // Initialisation is byte-identical to the serial trainer; a resumed
    // run restarts from the snapshot parameters instead and never touches
    // the init stream (its continuation lives in the snapshot's per-shard
    // RNG states).
    let (mut model, mut init_rng) = match resume {
        Some(ck) => (ck.model.clone(), None),
        None => {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let model = TsPprModel::init(
                &mut rng,
                cfg.num_users,
                cfg.num_items,
                cfg.k,
                training.f_dim().max(1),
                cfg.gamma,
                cfg.lambda,
            );
            (model, Some(rng))
        }
    };
    let start_step = resume.map_or(0, |ck| ck.step);
    let mut report = TrainReport {
        steps: start_step,
        converged: false,
        elapsed: Duration::ZERO,
        checks: resume.map_or_else(Vec::new, |ck| ck.checks.clone()),
    };
    if training.is_empty() {
        report.elapsed = elapsed_base + train_start.elapsed();
        return (model, report);
    }
    if cfg.identity_transform && resume.is_none() {
        assert_eq!(
            cfg.k,
            training.f_dim(),
            "identity_transform requires K == F (§4.2.1 case 2)"
        );
        for u in 0..cfg.num_users {
            *model.transform_mut(UserId(u as u32)) = DMatrix::identity(cfg.k);
        }
    }

    let d = training.num_quadruples();
    let check_interval = ((d as f64 * cfg.check_interval_fraction) as usize).max(1);
    let max_steps = cfg.max_sweeps.saturating_mul(d).max(check_interval);
    let min_steps = cfg.min_sweeps.saturating_mul(d).min(max_steps);
    let small_batch = training.small_batch(cfg.check_fraction);
    let consts = SgdConsts::from_config(cfg);
    let f_dim = training.f_dim().max(1);

    // Partition users-with-data by the canonical routing hash; the order
    // inside each shard follows users_with_data(), so one shard reproduces
    // the serial sampling list exactly.
    let shards = par.shards;
    let (k, _, mut u_res, mut v, mut a_res) = model.into_parts();
    let mut shard_users: Vec<Vec<UserId>> = (0..shards).map(|_| Vec::new()).collect();
    for &user in training.users_with_data() {
        shard_users[shard_for(user, shards)].push(user);
    }
    let mut owner = vec![u32::MAX; cfg.num_users];
    let mut local_of = vec![u32::MAX; cfg.num_users];
    let mut states: Vec<ShardState> = Vec::with_capacity(shards);
    for (s, users) in shard_users.into_iter().enumerate() {
        let mut su = DMatrix::zeros(users.len(), k);
        let mut sa = Vec::with_capacity(users.len());
        for (row, &user) in users.iter().enumerate() {
            owner[user.index()] = s as u32;
            local_of[user.index()] = row as u32;
            su.row_mut(row).copy_from_slice(u_res.row(user.index()));
            sa.push(std::mem::replace(
                &mut a_res[user.index()],
                DMatrix::zeros(0, 0),
            ));
        }
        let sv = if users.is_empty() {
            DMatrix::zeros(0, 0)
        } else {
            v.clone()
        };
        let srng = match resume {
            Some(ck) => StdRng::from_state(ck.rng_states[s]),
            None => match s {
                0 => init_rng.take().expect("init stream taken once"),
                _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, s)),
            },
        };
        let stamp = if users.is_empty() {
            Vec::new()
        } else {
            vec![0u32; cfg.num_items]
        };
        states.push(ShardState {
            users,
            u: su,
            a: sa,
            v: sv,
            rng: srng,
            scratch: SgdScratch::new(k, training.f_dim()),
            stamp,
            touched: Vec::new(),
            epoch: 0,
        });
    }

    // Block steps split proportionally to shard user counts — the serial
    // trainer draws users uniformly, so equal expected steps per user.
    let mut cum = vec![0u64; shards + 1];
    for s in 0..shards {
        cum[s + 1] = cum[s] + states[s].users.len() as u64;
    }

    // Barrier-merge scratch: `dirty` is the deduplicated union of touched
    // rows across active shards this block, `old_row` holds a pre-merge
    // copy of the global row for delta computation.
    let mut dirty: Vec<u32> = Vec::new();
    let mut dirty_stamp = vec![0u32; cfg.num_items];
    let mut dirty_epoch = 0u32;
    let mut old_row = vec![0.0f64; k];
    let fingerprint = TrainCheckpoint::fingerprint_of(cfg, training);
    let mut prev_r_tilde: Option<f64> = resume.and_then(|ck| ck.prev_r_tilde);
    // Snapshots are only taken at check barriers, so a resumed step count
    // is always a multiple of the check interval and the block structure
    // below realigns with the uninterrupted run.
    let mut step = start_step;
    'blocks: while step < max_steps {
        let block = check_interval.min(max_steps - step);
        let alloc = split_block(block, &cum);
        {
            let alloc = &alloc;
            let local_of = &local_of;
            run_on_shards(par.threads, &mut states, &|_w, s_idx, st| {
                let n = alloc[s_idx];
                if n == 0 {
                    return;
                }
                let _block_timer = block_hist.timer();
                // Workers are their own threads: the path restarts at
                // train/block rather than nesting under the caller.
                let _prof = rrc_obs::ProfGuard::enter_path(&["train", "block"]);
                st.epoch += 1;
                st.touched.clear();
                let mut params = ShardParams {
                    k,
                    f_dim,
                    local_of,
                    u: &mut st.u,
                    a: &mut st.a,
                    v: &mut st.v,
                    stamp: &mut st.stamp,
                    touched: &mut st.touched,
                    epoch: st.epoch,
                };
                for _ in 0..n {
                    // TrainingSet::sample, restricted to this shard's users
                    // — same three draws, same order.
                    let user = st.users[st.rng.gen_range(0..st.users.len())];
                    let positives = training.user_positives(user);
                    let p = &positives[st.rng.gen_range(0..positives.len())];
                    let negs = training.negatives_of(p);
                    let neg = &negs[st.rng.gen_range(0..negs.len())];
                    let q = training.quadruple(p, neg);
                    sgd_step(&mut params, &q, &consts, &mut st.scratch);
                }
            });
        }

        // Row-sparse merge. Invariant entering the block: every non-empty
        // shard's local `v` is a bitwise copy of the global `v`, so the
        // global row pre-merge is exactly what each shard started from.
        let merge_prof = rrc_obs::ProfGuard::enter("merge");
        let actives: Vec<usize> = (0..shards).filter(|&s| alloc[s] > 0).collect();
        dirty_epoch += 1;
        dirty.clear();
        for &s in &actives {
            for &r in &states[s].touched {
                if dirty_stamp[r as usize] != dirty_epoch {
                    dirty_stamp[r as usize] = dirty_epoch;
                    dirty.push(r);
                }
            }
        }
        if let Some((&a0, rest)) = actives.split_first() {
            for &r in &dirty {
                let r = r as usize;
                old_row.copy_from_slice(v.row(r));
                // Adopt the first active shard's row (bitwise — equal to
                // `old_row` when that shard never wrote it), then add the
                // other touchers' deltas in shard order.
                v.row_mut(r).copy_from_slice(states[a0].v.row(r));
                for &s in rest {
                    let st = &states[s];
                    if st.stamp[r] != st.epoch {
                        continue;
                    }
                    let local = st.v.row(r);
                    for (b, (l, o)) in v.row_mut(r).iter_mut().zip(local.iter().zip(&old_row)) {
                        *b += l - o;
                    }
                }
            }
            // Re-sync every non-empty shard's local copy on the merged
            // rows, restoring the invariant for the next block.
            for st in states.iter_mut() {
                if st.users.is_empty() {
                    continue;
                }
                for &r in &dirty {
                    let r = r as usize;
                    st.v.row_mut(r).copy_from_slice(v.row(r));
                }
            }
        }
        drop(merge_prof);
        step += block;
        report.steps = step;

        if step.is_multiple_of(check_interval) {
            let _prof = rrc_obs::ProfGuard::enter("check");
            let view = MergedView {
                k,
                f_dim,
                owner: &owner,
                local_of: &local_of,
                states: &states,
                u_res: &u_res,
                a_res: &a_res,
                v: &v,
            };
            let (r_tilde, nll) = {
                let _check_timer = check_hist.timer();
                batch_statistics_chunked(&view, &small_batch, shards, par.threads)
            };
            report.checks.push(ConvergencePoint {
                step,
                r_tilde,
                nll,
                elapsed: elapsed_base + train_start.elapsed(),
            });
            if let Some(prev) = prev_r_tilde {
                if step >= min_steps && (r_tilde - prev).abs() <= cfg.convergence_eps {
                    report.converged = true;
                    break;
                }
            }
            prev_r_tilde = Some(r_tilde);
            if let Some(opts) = checkpoint.as_mut() {
                if opts.every_checks > 0 && report.checks.len().is_multiple_of(opts.every_checks) {
                    let snapshot = TrainCheckpoint {
                        mode: TrainMode::Sharded,
                        shards,
                        step,
                        prev_r_tilde,
                        elapsed: elapsed_base + train_start.elapsed(),
                        checks: report.checks.clone(),
                        rng_states: states.iter().map(|st| st.rng.state()).collect(),
                        model: snapshot_model(
                            k, f_dim, &states, &owner, &local_of, &u_res, &a_res, &v,
                        ),
                        fingerprint,
                    };
                    if !(opts.sink)(&snapshot) {
                        // Simulated kill: stop mid-run; only the emitted
                        // snapshots survive.
                        break 'blocks;
                    }
                }
            }
        }
    }

    // Gather shard-owned rows back into the resident matrices.
    for st in states.iter_mut() {
        for (row, &user) in st.users.iter().enumerate() {
            u_res.row_mut(user.index()).copy_from_slice(st.u.row(row));
            a_res[user.index()] = std::mem::replace(&mut st.a[row], DMatrix::zeros(0, 0));
        }
    }
    let model = TsPprModel::from_parts(k, f_dim, u_res, v, a_res);
    debug_assert!(model.is_finite(), "parameters diverged");
    steps_total.add((report.steps - start_step) as u64);
    report.elapsed = elapsed_base + train_start.elapsed();
    (model, report)
}

/// Assemble the full model at a check barrier *without* disturbing the
/// shard states: resident rows for unowned users, shard-local rows (and a
/// clone of the merged `V`) for owned ones — exactly what the final gather
/// would produce if training stopped here.
#[allow(clippy::too_many_arguments)]
fn snapshot_model(
    k: usize,
    f_dim: usize,
    states: &[ShardState],
    owner: &[u32],
    local_of: &[u32],
    u_res: &DMatrix,
    a_res: &[DMatrix],
    v: &DMatrix,
) -> TsPprModel {
    let mut u = u_res.clone();
    let mut a = Vec::with_capacity(a_res.len());
    for user in 0..a_res.len() {
        match owner[user] {
            u32::MAX => a.push(a_res[user].clone()),
            s => {
                let st = &states[s as usize];
                let row = local_of[user] as usize;
                u.row_mut(user).copy_from_slice(st.u.row(row));
                a.push(st.a[row].clone());
            }
        }
    }
    TsPprModel::from_parts(k, f_dim, u, v.clone(), a)
}
