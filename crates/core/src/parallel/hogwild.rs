//! Hogwild-style lock-free parallel SGD (see the module docs in
//! [`super`]).
//!
//! All workers hammer one shared [`ParamArena`] with no coordination inside
//! a block. A BPR-family step touches one user row, one `A_u`, and two item
//! rows out of millions of parameters, so concurrent steps almost never
//! overlap; when they do, one update wins and the other is partially lost —
//! statistical noise at SGD's own noise floor (Niu et al., 2011). The arena
//! stores every `f64` as an `AtomicU64` of its bits, accessed with
//! `Relaxed` loads/stores: this is the defined-behaviour formulation of the
//! classic `UnsafeCell<f64>` arena — identical codegen on x86-64/aarch64,
//! no torn reads/writes, no UB. Races lose whole updates, never bits.
//!
//! There is no determinism guarantee in this mode; the payoff is raw
//! throughput with zero merge cost at barriers (checks just materialise a
//! snapshot).

use super::{
    batch_statistics_chunked, run_on_shards, shard_stream_seed, split_block, ParallelConfig,
};
use crate::config::TsPprConfig;
use crate::model::TsPprModel;
use crate::train::{ConvergencePoint, SgdConsts, TrainReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rrc_features::{Quadruple, TrainingSet};
use rrc_linalg::{sigmoid, DMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A flat shared parameter store: every `f64` of `U | V | A` lives in an
/// `AtomicU64` holding its bit pattern. Readers and writers use `Relaxed`
/// atomics, so concurrent access is defined behaviour; lost updates under
/// contention are accepted (that's the Hogwild bargain).
pub struct ParamArena {
    k: usize,
    f_dim: usize,
    num_users: usize,
    num_items: usize,
    cells: Vec<AtomicU64>,
}

impl ParamArena {
    /// Move a model's parameters into the arena.
    pub fn from_model(model: TsPprModel) -> Self {
        let (k, f_dim, u, v, a) = model.into_parts();
        let num_users = u.rows();
        let num_items = v.rows();
        let mut cells = Vec::with_capacity((num_users + num_items) * k + num_users * k * f_dim);
        let mut push = |xs: &[f64]| {
            for &x in xs {
                cells.push(AtomicU64::new(x.to_bits()));
            }
        };
        push(u.as_slice());
        push(v.as_slice());
        for m in &a {
            push(m.as_slice());
        }
        ParamArena {
            k,
            f_dim,
            num_users,
            num_items,
            cells,
        }
    }

    /// Materialise the current parameters as a model (used at check
    /// barriers and for the final result). Concurrent writers make the
    /// snapshot fuzzy at the scale of single lost updates — call it only at
    /// barriers for an exact image.
    pub fn to_model(&self) -> TsPprModel {
        let read_vec = |off: usize, len: usize| -> Vec<f64> {
            (off..off + len).map(|i| self.get(i)).collect()
        };
        let u = DMatrix::from_vec(self.num_users, self.k, read_vec(0, self.num_users * self.k));
        let v = DMatrix::from_vec(
            self.num_items,
            self.k,
            read_vec(self.v_off(0), self.num_items * self.k),
        );
        let kf = self.k * self.f_dim;
        let a = (0..self.num_users)
            .map(|user| DMatrix::from_vec(self.k, self.f_dim, read_vec(self.a_off(user), kf)))
            .collect();
        TsPprModel::from_parts(self.k, self.f_dim, u, v, a)
    }

    #[inline]
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }

    #[inline]
    fn set(&self, i: usize, x: f64) {
        self.cells[i].store(x.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn u_off(&self, user: usize) -> usize {
        user * self.k
    }

    #[inline]
    fn v_off(&self, item: usize) -> usize {
        (self.num_users + item) * self.k
    }

    #[inline]
    fn a_off(&self, user: usize) -> usize {
        (self.num_users + self.num_items) * self.k + user * self.k * self.f_dim
    }

    #[inline]
    fn read(&self, off: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.get(off + j);
        }
    }
}

/// Per-worker scratch: local copies of the rows a step touches.
struct HogScratch {
    u: Vec<f64>,
    vi: Vec<f64>,
    vj: Vec<f64>,
    a: Vec<f64>,
    df: Vec<f64>,
    grad: Vec<f64>,
}

impl HogScratch {
    fn new(k: usize, f_dim: usize) -> Self {
        HogScratch {
            u: vec![0.0; k],
            vi: vec![0.0; k],
            vj: vec![0.0; k],
            a: vec![0.0; k * f_dim],
            df: vec![0.0; f_dim],
            grad: vec![0.0; k],
        }
    }
}

struct Worker {
    rng: StdRng,
    scratch: HogScratch,
}

/// One SGD step against the shared arena: read the touched rows into local
/// scratch, compute the update (same arithmetic as
/// [`crate::train`]'s `sgd_step`), store the new rows back. Reads and
/// writes race benignly with other workers.
fn hogwild_step(arena: &ParamArena, q: &Quadruple<'_>, c: &SgdConsts, s: &mut HogScratch) {
    let k = c.k;
    let f = arena.f_dim;
    let uo = arena.u_off(q.user.index());
    let vio = arena.v_off(q.pos.index());
    let vjo = arena.v_off(q.neg.index());
    let ao = arena.a_off(q.user.index());
    arena.read(uo, &mut s.u);
    arena.read(vio, &mut s.vi);
    arena.read(vjo, &mut s.vj);
    if !c.identity_transform {
        arena.read(ao, &mut s.a);
    }
    for ((d, &fp), &fn_) in s.df.iter_mut().zip(q.f_pos).zip(q.f_neg) {
        *d = fp - fn_;
    }
    // margin = Σ_r u_r (v_i − v_j + A_u df)_r  (Eq. 6); under the identity
    // transform A_u df = df (K == F).
    let mut margin = 0.0;
    for r in 0..k {
        let adf = if c.identity_transform {
            s.df[r]
        } else {
            s.a[r * f..(r + 1) * f]
                .iter()
                .zip(&s.df)
                .map(|(x, y)| x * y)
                .sum()
        };
        let g = s.vi[r] - s.vj[r] + adf;
        s.grad[r] = g;
        margin += s.u[r] * g;
    }
    let coef = c.alpha * (1.0 - sigmoid(margin));
    for r in 0..k {
        arena.set(uo + r, c.decay_factor * s.u[r] + coef * s.grad[r]);
        arena.set(vio + r, c.decay_factor * s.vi[r] + coef * s.u[r]);
        arena.set(vjo + r, c.decay_factor * s.vj[r] - coef * s.u[r]);
    }
    if !c.identity_transform {
        for r in 0..k {
            let cu = coef * s.u[r];
            for cc in 0..f {
                let idx = r * f + cc;
                arena.set(ao + idx, c.decay_transform * s.a[idx] + cu * s.df[cc]);
            }
        }
    }
}

/// Train under the Hogwild regime. Same contract as
/// [`crate::TsPprTrainer::train`], minus reproducibility.
pub(super) fn train(
    cfg: &TsPprConfig,
    par: &ParallelConfig,
    training: &TrainingSet,
) -> (TsPprModel, TrainReport) {
    let obs = rrc_obs::global();
    let _train_span = obs.span("tsppr.train.hogwild");
    let _train_prof = rrc_obs::ProfGuard::enter("train");
    let block_hist = obs.span_histogram("tsppr.train.worker_block");
    let check_hist = obs.span_histogram("tsppr.train.check");
    let steps_total = obs.counter("tsppr_train_steps_total");
    let train_start = Instant::now();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = TsPprModel::init(
        &mut rng,
        cfg.num_users,
        cfg.num_items,
        cfg.k,
        training.f_dim().max(1),
        cfg.gamma,
        cfg.lambda,
    );
    let mut report = TrainReport {
        steps: 0,
        converged: false,
        elapsed: Duration::ZERO,
        checks: Vec::new(),
    };
    if training.is_empty() {
        report.elapsed = train_start.elapsed();
        return (model, report);
    }
    if cfg.identity_transform {
        assert_eq!(
            cfg.k,
            training.f_dim(),
            "identity_transform requires K == F (§4.2.1 case 2)"
        );
        for u in 0..cfg.num_users {
            *model.transform_mut(rrc_sequence::UserId(u as u32)) = DMatrix::identity(cfg.k);
        }
    }

    let d = training.num_quadruples();
    let check_interval = ((d as f64 * cfg.check_interval_fraction) as usize).max(1);
    let max_steps = cfg.max_sweeps.saturating_mul(d).max(check_interval);
    let min_steps = cfg.min_sweeps.saturating_mul(d).min(max_steps);
    let small_batch = training.small_batch(cfg.check_fraction);
    let consts = SgdConsts::from_config(cfg);

    let arena = ParamArena::from_model(model);
    let threads = par.threads.max(1);
    let mut workers: Vec<Worker> = (0..threads)
        .map(|w| Worker {
            rng: match w {
                0 => std::mem::replace(&mut rng, StdRng::seed_from_u64(0)),
                _ => StdRng::seed_from_u64(shard_stream_seed(cfg.seed, w)),
            },
            scratch: HogScratch::new(cfg.k, training.f_dim()),
        })
        .collect();
    // Equal split: every worker draws from the full training set.
    let cum: Vec<u64> = (0..=threads as u64).collect();

    let mut prev_r_tilde: Option<f64> = None;
    let mut step = 0usize;
    while step < max_steps {
        let block = check_interval.min(max_steps - step);
        let alloc = split_block(block, &cum);
        {
            let alloc = &alloc;
            let arena = &arena;
            run_on_shards(threads, &mut workers, &|_t, w_idx, wk| {
                let n = alloc[w_idx];
                if n == 0 {
                    return;
                }
                let _block_timer = block_hist.timer();
                let _prof = rrc_obs::ProfGuard::enter_path(&["train", "block"]);
                for _ in 0..n {
                    let q = training
                        .sample(&mut wk.rng)
                        .expect("non-empty training set always samples");
                    hogwild_step(arena, &q, &consts, &mut wk.scratch);
                }
            });
        }
        step += block;
        report.steps = step;

        if step.is_multiple_of(check_interval) {
            let _prof = rrc_obs::ProfGuard::enter("check");
            let snapshot = arena.to_model();
            let (r_tilde, nll) = {
                let _check_timer = check_hist.timer();
                batch_statistics_chunked(&snapshot, &small_batch, threads, threads)
            };
            report.checks.push(ConvergencePoint {
                step,
                r_tilde,
                nll,
                elapsed: train_start.elapsed(),
            });
            debug_assert!(snapshot.is_finite(), "parameters diverged at step {step}");
            if let Some(prev) = prev_r_tilde {
                if step >= min_steps && (r_tilde - prev).abs() <= cfg.convergence_eps {
                    report.converged = true;
                    break;
                }
            }
            prev_r_tilde = Some(r_tilde);
        }
    }

    let model = arena.to_model();
    steps_total.add(report.steps as u64);
    report.elapsed = train_start.elapsed();
    (model, report)
}
