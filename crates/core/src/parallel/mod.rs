//! Parallel SGD training for TS-PPR (and, via the same machinery, the
//! plain-PPR ablation and the FPMC baseline).
//!
//! Two modes, one trade-off:
//!
//! * **Sharded-deterministic** ([`TrainMode::Sharded`]) — users are
//!   partitioned by the same SplitMix64 hash the `rrc-serve` engine routes
//!   with ([`shard_for`]), so each shard *owns* its users' `u` rows and
//!   `A_u` transforms outright and mutates them lock-free. The shared item
//!   matrix `V` is copied into each shard at the start of every
//!   synchronisation block and the per-shard item updates are merged back
//!   at the block barrier in fixed shard order ([`merge_item_updates`]).
//!   The result is a pure function of `(seed, shard count)` — byte-identical
//!   across runs and across *thread* counts, because threads only schedule
//!   shards. With one shard the machinery degenerates to exactly the serial
//!   trainer: same RNG stream, same update order, bit-identical parameters.
//!
//! * **Hogwild** ([`TrainMode::Hogwild`]) — all workers update one shared
//!   parameter arena ([`ParamArena`]) with no locks at all, in the style of
//!   Niu et al.'s HOGWILD!. BPR-family updates are sparse — one user row,
//!   one `A_u`, two item rows per step — so collisions are rare and the
//!   occasional lost update is statistical noise. Maximum throughput, no
//!   reproducibility guarantee.
//!
//! Both modes keep the paper's training loop shape: steps are grouped into
//! blocks of one convergence-check interval (`|D| · check_interval_fraction`
//! draws), and the small-batch `Δr̃` check of §5.6.1 runs at every block
//! barrier over the merged parameters, exactly as often as the serial
//! trainer checks.

mod hogwild;
mod sharded;

pub use hogwild::ParamArena;

use crate::config::TsPprConfig;
use crate::model::TsPprModel;
use crate::params::ModelParams;
use crate::train::{batch_partial, TrainReport, TsPprTrainer};
use rrc_features::{Quadruple, TrainingSet};
use rrc_linalg::DMatrix;
use rrc_sequence::UserId;

/// How to run the SGD loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMode {
    /// The single-threaded trainer of Algorithm 1 (the reference).
    Serial,
    /// Deterministic user-sharded training: lock-free within a block,
    /// merged at block barriers, byte-identical for a fixed seed and shard
    /// count regardless of thread count.
    Sharded,
    /// Lock-free shared-memory updates tolerating benign races.
    Hogwild,
}

impl std::fmt::Display for TrainMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrainMode::Serial => "serial",
            TrainMode::Sharded => "sharded",
            TrainMode::Hogwild => "hogwild",
        })
    }
}

impl std::str::FromStr for TrainMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(TrainMode::Serial),
            "sharded" => Ok(TrainMode::Sharded),
            "hogwild" => Ok(TrainMode::Hogwild),
            other => Err(format!(
                "unknown train mode {other:?} (expected serial | sharded | hogwild)"
            )),
        }
    }
}

/// Parallelism settings shared by every parallel trainer in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Execution mode.
    pub mode: TrainMode,
    /// Worker threads. Threads schedule shards; they never affect the
    /// sharded-deterministic output.
    pub threads: usize,
    /// Logical shards — the determinism unit of [`TrainMode::Sharded`].
    /// Defaults to `threads`; fix it explicitly to get byte-identical
    /// output across machines with different core counts.
    pub shards: usize,
}

impl ParallelConfig {
    /// A configuration for `mode` with `threads` workers and (for sharded
    /// mode) one shard per worker.
    pub fn new(mode: TrainMode, threads: usize) -> Self {
        let threads = threads.max(1);
        ParallelConfig {
            mode,
            threads,
            shards: threads,
        }
    }

    /// The serial reference configuration.
    pub fn serial() -> Self {
        Self::new(TrainMode::Serial, 1)
    }

    /// Sharded-deterministic with `threads` workers and shards.
    pub fn sharded(threads: usize) -> Self {
        Self::new(TrainMode::Sharded, threads)
    }

    /// Hogwild with `threads` workers.
    pub fn hogwild(threads: usize) -> Self {
        Self::new(TrainMode::Hogwild, threads)
    }

    /// Builder-style shard count override (sharded mode only).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Parallel SGD trainer for [`TsPprModel`] — the multi-threaded counterpart
/// of [`TsPprTrainer`], producing the same `(model, report)` pair.
#[derive(Debug, Clone)]
pub struct ParallelTrainer {
    config: TsPprConfig,
    parallel: ParallelConfig,
}

impl ParallelTrainer {
    /// Create a trainer; both configurations are validated here.
    pub fn new(config: TsPprConfig, parallel: ParallelConfig) -> Self {
        config.validate();
        assert!(parallel.threads >= 1, "at least one thread required");
        assert!(parallel.shards >= 1, "at least one shard required");
        ParallelTrainer { config, parallel }
    }

    /// The model configuration in use.
    pub fn config(&self) -> &TsPprConfig {
        &self.config
    }

    /// The parallelism settings in use.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Run Algorithm 1 on a pre-sampled training set under the configured
    /// mode and return the trained model with its convergence trace.
    pub fn train(&self, training: &TrainingSet) -> (TsPprModel, TrainReport) {
        self.train_with(training, None, None)
    }

    /// [`Self::train`] with checkpointing: resume from a snapshot and/or
    /// emit snapshots while running (see
    /// [`TsPprTrainer::train_with`](crate::TsPprTrainer::train_with)).
    ///
    /// Supported for [`TrainMode::Serial`] (one RNG stream) and
    /// [`TrainMode::Sharded`] (one stream per shard, snapshots at block
    /// barriers) — the two modes with a bitwise-reproducibility guarantee.
    ///
    /// # Panics
    /// Panics for [`TrainMode::Hogwild`] when `resume` or `checkpoint` is
    /// set: a hogwild schedule is nondeterministic, so a "resumed" run
    /// could not honour the bit-identity contract these options promise.
    /// Also panics when `resume` is incompatible with this configuration
    /// (see [`crate::TrainCheckpoint::compatible_with`]).
    pub fn train_with(
        &self,
        training: &TrainingSet,
        resume: Option<&crate::TrainCheckpoint>,
        checkpoint: Option<crate::CheckpointOptions<'_>>,
    ) -> (TsPprModel, TrainReport) {
        let started_at = resume.map_or(0, |ck| ck.step);
        let (model, report) = match self.parallel.mode {
            TrainMode::Serial => {
                TsPprTrainer::new(self.config.clone()).train_with(training, resume, checkpoint)
            }
            TrainMode::Sharded => {
                sharded::train_with(&self.config, &self.parallel, training, resume, checkpoint)
            }
            TrainMode::Hogwild => {
                assert!(
                    resume.is_none() && checkpoint.is_none(),
                    "hogwild training is nondeterministic and cannot honour the \
                     bit-identical checkpoint/resume contract; use serial or sharded mode"
                );
                hogwild::train(&self.config, &self.parallel, training)
            }
        };
        // Workspace-wide training counter (mode-agnostic), alongside the
        // trainer-specific `tsppr_train_steps_total`. Counts only steps
        // performed by *this* process, not those replayed from a resume.
        rrc_obs::global()
            .counter("train_steps_total")
            .add((report.steps - started_at) as u64);
        (model, report)
    }
}

/// The shard that owns `user` out of `shards` — the canonical user→shard
/// routing function of the workspace, shared with the `rrc-serve` engine so
/// offline training and online serving agree on ownership.
///
/// SplitMix64-finalises the id before reducing so that consecutive dense
/// user ids scatter. Pure: depends on nothing but its arguments.
#[inline]
pub fn shard_for(user: UserId, shards: usize) -> usize {
    assert!(shards > 0, "at least one shard required");
    (mix64(user.0 as u64) % shards as u64) as usize
}

/// SplitMix64 finaliser — a fixed, well-tested 64-bit mixer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG stream seed of shard (or hogwild worker) `s`. Shard 0 does not
/// use this: it inherits the initialisation stream, exactly as the serial
/// trainer continues it — that inheritance is what makes the 1-shard case
/// bit-identical to serial. Shared with the parallel PPR and FPMC trainers.
#[inline]
pub fn shard_stream_seed(seed: u64, s: usize) -> u64 {
    debug_assert!(s > 0, "shard 0 inherits the init stream");
    seed ^ mix64(s as u64)
}

/// Split `block` steps across shards proportionally to their weights, by
/// telescoping cumulative quotas: shard `s` receives
/// `⌊block·cum[s+1]/total⌋ − ⌊block·cum[s]/total⌋` steps. The allocations
/// sum to exactly `block`, are deterministic, and a shard with zero weight
/// receives zero steps. `cum` is the cumulative weight vector
/// `[0, w₀, w₀+w₁, …]` (length `shards + 1`, last entry > 0).
pub fn split_block(block: usize, cum: &[u64]) -> Vec<usize> {
    let total = *cum.last().expect("non-empty cumulative weights") as u128;
    assert!(total > 0, "cannot split a block over zero total weight");
    (0..cum.len() - 1)
        .map(|s| {
            let hi = block as u128 * cum[s + 1] as u128 / total;
            let lo = block as u128 * cum[s] as u128 / total;
            (hi - lo) as usize
        })
        .collect()
}

/// Run `f(worker, index, state)` over every state, striping states across
/// at most `threads` scoped workers (worker `w` owns states `w`, `w+T`,
/// `w+2T`, …). States are mutated independently, so the result is the same
/// under any thread count; with one thread (or one state) everything runs
/// inline on the calling thread in index order. Shared with the parallel
/// PPR and FPMC trainers.
pub fn run_on_shards<S, F>(threads: usize, states: &mut [S], f: &F)
where
    S: Send,
    F: Fn(usize, usize, &mut S) + Sync,
{
    let threads = threads.max(1).min(states.len().max(1));
    if threads <= 1 {
        for (i, s) in states.iter_mut().enumerate() {
            f(0, i, s);
        }
        return;
    }
    let mut stripes: Vec<Vec<&mut S>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, s) in states.iter_mut().enumerate() {
        stripes[i % threads].push(s);
    }
    std::thread::scope(|scope| {
        for (w, stripe) in stripes.into_iter().enumerate() {
            scope.spawn(move || {
                for (j, s) in stripe.into_iter().enumerate() {
                    f(w, j * threads + w, s);
                }
            });
        }
    });
}

/// Merge per-shard copies of a shared (item) matrix back into `base` at a
/// block barrier.
///
/// The first local is adopted wholesale (its untouched rows are bitwise
/// copies of `base`, so this is exact); every further local contributes its
/// delta against the old base:
///
/// ```text
/// base ← locals[0] + Σ_{s ≥ 1} (locals[s] − base_old)
/// ```
///
/// Summation runs in shard order, so the result is deterministic; with a
/// single shard the merge is an exact swap, which preserves the 1-shard ≡
/// serial bit-identity. `scratch` is reused across calls to avoid
/// reallocating the old-base snapshot.
pub fn merge_item_updates(base: &mut DMatrix, locals: &mut [&mut DMatrix], scratch: &mut Vec<f64>) {
    assert!(!locals.is_empty(), "need at least one shard-local matrix");
    if locals.len() == 1 {
        std::mem::swap(base, locals[0]);
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(base.as_slice());
    base.as_mut_slice().copy_from_slice(locals[0].as_slice());
    for local in locals[1..].iter() {
        let dst = base.as_mut_slice();
        let src = local.as_slice();
        for ((d, &l), &old) in dst.iter_mut().zip(src).zip(scratch.iter()) {
            *d += l - old;
        }
    }
}

/// Contiguous chunk boundaries splitting `len` items into `chunks` pieces
/// whose sizes telescope (so they sum to exactly `len`).
pub(crate) fn chunk_bounds(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    (0..chunks)
        .map(|c| (c * len / chunks)..((c + 1) * len / chunks))
        .collect()
}

/// [`batch_statistics`](crate::train) evaluated in `chunks` deterministic
/// pieces, optionally across threads. Partial sums are combined in chunk
/// order, so the result depends on the chunk count but never on the thread
/// count; with one chunk it reproduces the serial sum bit-for-bit.
pub(crate) fn batch_statistics_chunked<P: ModelParams + Sync + ?Sized>(
    params: &P,
    batch: &[Quadruple<'_>],
    chunks: usize,
    threads: usize,
) -> (f64, f64) {
    if batch.is_empty() {
        return (0.0, 0.0);
    }
    let bounds = chunk_bounds(batch.len(), chunks);
    let mut partials = vec![(0.0, 0.0); bounds.len()];
    if threads <= 1 || bounds.len() <= 1 {
        for (c, r) in bounds.iter().enumerate() {
            partials[c] = batch_partial(params, &batch[r.clone()]);
        }
    } else {
        let threads = threads.min(bounds.len());
        let computed = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let bounds = &bounds;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut c = w;
                        while c < bounds.len() {
                            out.push((c, batch_partial(params, &batch[bounds[c].clone()])));
                            c += threads;
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("stats worker panicked"))
                .collect::<Vec<_>>()
        });
        for (c, p) in computed {
            partials[c] = p;
        }
    }
    let (mut sum_margin, mut sum_nll) = (0.0, 0.0);
    for (m, n) in partials {
        sum_margin += m;
        sum_nll += n;
    }
    let n = batch.len() as f64;
    (sum_margin / n, sum_nll / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_block_telescopes_exactly() {
        let cum = [0u64, 3, 3, 10, 11];
        for block in [0usize, 1, 7, 100, 12345] {
            let alloc = split_block(block, &cum);
            assert_eq!(alloc.iter().sum::<usize>(), block);
            assert_eq!(alloc[1], 0, "zero-weight shard must get zero steps");
        }
        assert_eq!(split_block(10, &[0, 5]), vec![10]);
    }

    #[test]
    fn run_on_shards_touches_every_state_once() {
        for threads in [1, 2, 3, 8] {
            let mut states = vec![0u32; 7];
            run_on_shards(threads, &mut states, &|_, i, s| {
                assert!(i < 7);
                *s += 1;
            });
            assert!(states.iter().all(|&s| s == 1), "{states:?}");
        }
    }

    #[test]
    fn merge_single_shard_is_exact_swap() {
        let mut base = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut local = DMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let expect = local.clone();
        let mut scratch = Vec::new();
        merge_item_updates(&mut base, &mut [&mut local], &mut scratch);
        assert_eq!(base, expect);
    }

    #[test]
    fn merge_sums_deltas_in_shard_order() {
        let base0 = DMatrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let mut base = base0.clone();
        let mut l0 = DMatrix::from_vec(1, 3, vec![2.0, 1.0, 1.0]); // +1 on col 0
        let mut l1 = DMatrix::from_vec(1, 3, vec![1.0, 0.5, 1.0]); // −0.5 on col 1
        let mut scratch = Vec::new();
        merge_item_updates(&mut base, &mut [&mut l0, &mut l1], &mut scratch);
        assert_eq!(base.as_slice(), &[2.0, 0.5, 1.0]);
    }

    #[test]
    fn mode_round_trips_through_strings() {
        for mode in [TrainMode::Serial, TrainMode::Sharded, TrainMode::Hogwild] {
            assert_eq!(mode.to_string().parse::<TrainMode>(), Ok(mode));
        }
        assert!("turbo".parse::<TrainMode>().is_err());
    }

    #[test]
    fn routing_matches_serve_semantics() {
        for shards in 1..9 {
            for u in 0..500u32 {
                let s = shard_for(UserId(u), shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(UserId(u), shards));
            }
        }
    }
}
