//! TS-PPR: Time-Sensitive Personalized Pairwise Ranking for repeat
//! consumption — the primary contribution of the reproduced paper (§4).
//!
//! The model scores a temporal user–item interaction as
//!
//! ```text
//! r_uvt = uᵀ v + uᵀ A_u f_uvt          (Eq. 5)
//! ```
//!
//! where `u ∈ ℝᴷ` and `v ∈ ℝᴷ` are latent user/item factors, `f_uvt ∈ ℝᶠ`
//! is the observable behavioral feature vector of the interaction, and
//! `A_u ∈ ℝᴷˣᶠ` is a *personalised* linear map from observable space into
//! latent preference space. The static term `uᵀv` preserves long-term
//! taste; the time-sensitive term `uᵀ A_u f_uvt` injects the user's own
//! weighting of quality/reconsumption-ratio/recency/familiarity at time
//! `t`.
//!
//! Training minimises the pairwise logistic loss over pre-sampled
//! quadruples `(u, v_i, v_j, t)` (Eq. 7) by stochastic gradient descent
//! (Algorithm 1), with the paper's small-batch `Δr̃` convergence check.
//!
//! The crate also ships the plain [`ppr`] (BPR-style) model — the
//! time-insensitive ancestor the paper argues cannot solve the RRC problem
//! — as a like-for-like ablation, and [`checkpoint`] types so trainers can
//! emit resumable snapshots (serialization lives in `rrc-store`).
//!
//! ```no_run
//! use rrc_core::{TsPprConfig, TsPprTrainer};
//! use rrc_features::{FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
//! use rrc_datagen::GeneratorConfig;
//!
//! let data = GeneratorConfig::gowalla_like(0.01).generate();
//! let split = data.split(0.7);
//! let stats = TrainStats::compute(&split.train, 100);
//! let pipeline = FeaturePipeline::standard();
//! let sampling = SamplingConfig::default();
//! let training = TrainingSet::build(&split.train, &stats, &pipeline, &sampling);
//!
//! let config = TsPprConfig::gowalla_defaults(data.num_users(), data.num_items());
//! let (model, report) = TsPprTrainer::new(config).train(&training);
//! println!("converged after {} checks", report.checks.len());
//! # let _ = model;
//! ```

pub mod checkpoint;
pub mod config;
pub mod model;
pub mod online;
pub mod parallel;
pub mod params;
pub mod ppr;
pub mod recommend;
pub mod train;

pub use checkpoint::{CheckpointOptions, TrainCheckpoint};
pub use config::TsPprConfig;
pub use model::TsPprModel;
pub use online::{observe_single, online_step_single, recommend_single, OnlineConfig, OnlineTsPpr};
pub use parallel::{shard_for, ParallelConfig, ParallelTrainer, TrainMode};
pub use params::ModelParams;
pub use ppr::{PprConfig, PprModel, PprRecommender, PprTrainer};
pub use recommend::TsPprRecommender;
pub use train::{ConvergencePoint, TrainReport, TsPprTrainer};
