//! Property-based tests for feature extraction and training-set sampling.

use proptest::prelude::*;
use rrc_features::{FeatureContext, FeaturePipeline, SamplingConfig, TrainStats, TrainingSet};
use rrc_sequence::{Dataset, ItemId, Sequence, WindowState};

fn event_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..15, 20..150)
}

fn dataset(streams: Vec<Vec<u32>>) -> Dataset {
    Dataset::new(streams.into_iter().map(Sequence::from_raw).collect(), 15)
}

proptest! {
    #[test]
    fn standard_features_always_in_unit_interval(events in event_stream()) {
        let d = dataset(vec![events.clone()]);
        let stats = TrainStats::compute(&d, 20);
        let pipeline = FeaturePipeline::standard();
        let mut window = WindowState::new(20);
        for &e in &events {
            window.push(ItemId(e));
            let ctx = FeatureContext { window: &window, stats: &stats };
            for probe in 0..15u32 {
                let f = pipeline.extract(&ctx, ItemId(probe));
                prop_assert_eq!(f.len(), 4);
                for (v, name) in f.iter().zip(pipeline.names()) {
                    prop_assert!((0.0..=1.0).contains(v), "{}={} item {}", name, v, probe);
                    prop_assert!(v.is_finite());
                }
            }
        }
    }

    #[test]
    fn quality_is_monotone_in_frequency(events in event_stream()) {
        let d = dataset(vec![events]);
        let stats = TrainStats::compute(&d, 20);
        // Sort items by frequency; quality must be sorted identically.
        let mut items: Vec<u32> = (0..15).collect();
        items.sort_by_key(|&i| stats.frequency(ItemId(i)));
        for pair in items.windows(2) {
            let (a, b) = (ItemId(pair[0]), ItemId(pair[1]));
            if stats.frequency(a) <= stats.frequency(b) {
                prop_assert!(stats.quality(a) <= stats.quality(b) + 1e-12);
            }
        }
    }

    #[test]
    fn recon_ratio_bounded_and_zero_for_unseen(events in event_stream()) {
        let d = dataset(vec![events]);
        let stats = TrainStats::compute(&d, 20);
        for i in 0..15u32 {
            let r = stats.recon_ratio(ItemId(i));
            prop_assert!((0.0..=1.0).contains(&r));
            if stats.frequency(ItemId(i)) == 0 {
                prop_assert_eq!(r, 0.0);
            }
            if stats.frequency(ItemId(i)) == 1 {
                // A single observation can never be a repeat.
                prop_assert_eq!(r, 0.0);
            }
        }
    }

    #[test]
    fn training_set_quadruples_respect_omega(
        streams in prop::collection::vec(event_stream(), 1..4),
        omega in 1usize..8,
        s in 1usize..6,
    ) {
        let d = dataset(streams);
        let stats = TrainStats::compute(&d, 20);
        let set = TrainingSet::build(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig { window: 20, omega, negatives_per_positive: s, seed: 9 },
        );
        for q in set.iter_quadruples() {
            // Both the positive and the negative were at least omega steps
            // old at time t, so their hyperbolic recency (index 2) is at
            // most 1/(omega+1).
            let cap = 1.0 / (omega as f64 + 1.0) + 1e-12;
            prop_assert!(q.f_pos[2] <= cap, "pos recency {} > {}", q.f_pos[2], cap);
            prop_assert!(q.f_neg[2] <= cap, "neg recency {} > {}", q.f_neg[2], cap);
            prop_assert!(q.t < 150);
        }
        // Quadruple count bounded by positives * s.
        prop_assert!(set.num_quadruples() <= set.num_positives() * s);
    }

    #[test]
    fn small_batch_is_subset_and_scales(events in event_stream()) {
        let d = dataset(vec![events]);
        let stats = TrainStats::compute(&d, 20);
        let set = TrainingSet::build(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig { window: 20, omega: 3, negatives_per_positive: 4, seed: 1 },
        );
        let b01 = set.small_batch(0.1).len();
        let b05 = set.small_batch(0.5).len();
        let b10 = set.small_batch(1.0).len();
        prop_assert!(b01 <= b05);
        prop_assert!(b05 <= b10);
        prop_assert_eq!(b10, set.num_quadruples());
    }
}
