//! Training-set construction: the paper's pre-sample strategy (§4.2.2,
//! Fig. 3).
//!
//! For every *eligible repeat* `(u, v_i, t)` in the training split (Eq. 8:
//! `v_i = x_t^u`, `v_i ∈ W_{u,t-1}`, and at least Ω steps old), up to `S`
//! negatives `v_j` are drawn uniformly without replacement from the other
//! eligible candidates of the same window, and the time-sensitive feature
//! vectors `f_{u v t}` of the positive and each negative are extracted *at
//! build time* — training then never touches a window again.
//!
//! Storage is grouped by positive event rather than flat quadruples so that
//! Algorithm 1's three-stage uniform sampling (user → repeat consumption →
//! negative) can be implemented exactly.

use crate::extractor::{FeatureContext, FeaturePipeline};
use crate::train_stats::TrainStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrc_sequence::{classify, ConsumptionKind, Dataset, ItemId, UserId, WindowState};
use std::ops::Range;

/// Parameters of training-set construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Window capacity `|W|`.
    pub window: usize,
    /// Minimum gap Ω (`0 < Ω < |W|`).
    pub omega: usize,
    /// Negatives per positive, the paper's `S`.
    pub negatives_per_positive: usize,
    /// Seed for negative sampling.
    pub seed: u64,
}

impl Default for SamplingConfig {
    /// The paper's defaults: `|W| = 100`, `Ω = 10`, `S = 10`.
    fn default() -> Self {
        SamplingConfig {
            window: 100,
            omega: 10,
            negatives_per_positive: 10,
            seed: 0x5eed,
        }
    }
}

/// One positive training event: user `u` reconsumed `item` at step `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositiveEvent {
    /// The reconsuming user.
    pub user: UserId,
    /// The reconsumed item `v_i`.
    pub item: ItemId,
    /// The consumption step `t`.
    pub t: usize,
    /// Index of `f_{u v_i t}` in the feature table.
    pub f_pos: u32,
    /// The contiguous range of this positive's negatives in the negative
    /// table.
    pub neg_range: Range<u32>,
}

/// One sampled negative `v_j` for some positive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negative {
    /// The non-reconsumed candidate `v_j`.
    pub item: ItemId,
    /// Index of `f_{u v_j t}` in the feature table.
    pub f_neg: u32,
}

/// A fully-materialised training quadruple `(u, v_i, v_j, t)` with borrowed
/// feature vectors, as handed to the SGD inner loop.
#[derive(Debug, Clone, Copy)]
pub struct Quadruple<'a> {
    /// The user `u`.
    pub user: UserId,
    /// The positive item `v_i`.
    pub pos: ItemId,
    /// The negative item `v_j`.
    pub neg: ItemId,
    /// The time step `t`.
    pub t: usize,
    /// `f_{u v_i t}`.
    pub f_pos: &'a [f64],
    /// `f_{u v_j t}`.
    pub f_neg: &'a [f64],
}

/// The pre-sampled training set `D` with its pre-extracted feature table.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    f_dim: usize,
    features: Vec<f64>,
    positives: Vec<PositiveEvent>,
    negatives: Vec<Negative>,
    /// `user_pos_ranges[u]` is the contiguous range of user `u`'s positives.
    user_pos_ranges: Vec<Range<u32>>,
    /// Users that contributed at least one quadruple (for stage-1 sampling).
    users_with_data: Vec<UserId>,
}

impl TrainingSet {
    /// Walk the training split and build the pre-sampled set.
    pub fn build(
        train: &Dataset,
        stats: &TrainStats,
        pipeline: &FeaturePipeline,
        cfg: &SamplingConfig,
    ) -> Self {
        assert!(
            cfg.omega < cfg.window,
            "omega must satisfy 0 < omega < window"
        );
        assert!(!pipeline.is_empty(), "feature pipeline must be non-empty");
        let f_dim = pipeline.len();
        let mut set = TrainingSet {
            f_dim,
            features: Vec::new(),
            positives: Vec::new(),
            negatives: Vec::new(),
            user_pos_ranges: Vec::with_capacity(train.num_users()),
            users_with_data: Vec::new(),
        };
        let mut fbuf = Vec::with_capacity(f_dim);

        for (user, seq) in train.iter() {
            let pos_start = set.positives.len() as u32;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (user.0 as u64).wrapping_mul(0x9E37));
            let mut window = WindowState::new(cfg.window);
            for (t_idx, &item) in seq.events().iter().enumerate() {
                if classify(&window, item, cfg.omega) == ConsumptionKind::EligibleRepeat {
                    let mut candidates = window.eligible_candidates(cfg.omega);
                    candidates.retain(|&v| v != item);
                    if !candidates.is_empty() {
                        let ctx = FeatureContext {
                            window: &window,
                            stats,
                        };
                        pipeline.extract_into(&ctx, item, &mut fbuf);
                        let f_pos = set.push_feature(&fbuf);
                        let neg_start = set.negatives.len() as u32;
                        let s = cfg.negatives_per_positive.min(candidates.len());
                        // Partial Fisher–Yates: the first `s` slots become a
                        // uniform sample without replacement.
                        for k in 0..s {
                            let j = rng.gen_range(k..candidates.len());
                            candidates.swap(k, j);
                            let neg = candidates[k];
                            pipeline.extract_into(&ctx, neg, &mut fbuf);
                            let f_neg = set.push_feature(&fbuf);
                            set.negatives.push(Negative { item: neg, f_neg });
                        }
                        set.positives.push(PositiveEvent {
                            user,
                            item,
                            t: t_idx,
                            f_pos,
                            neg_range: neg_start..set.negatives.len() as u32,
                        });
                    }
                }
                window.push(item);
            }
            let pos_end = set.positives.len() as u32;
            set.user_pos_ranges.push(pos_start..pos_end);
            if pos_end > pos_start {
                set.users_with_data.push(user);
            }
        }
        set
    }

    /// An empty set with the given feature dimension, ready for raw
    /// construction by alternative samplers (e.g. the novel-item sampler in
    /// [`crate::novel`]). Call [`Self::push_feature_raw`] /
    /// [`Self::push_positive_raw`] per event and [`Self::finish_user_raw`]
    /// once per user, *in ascending user order*.
    pub fn empty(f_dim: usize, num_users: usize) -> Self {
        assert!(f_dim > 0, "feature dimension must be positive");
        TrainingSet {
            f_dim,
            features: Vec::new(),
            positives: Vec::new(),
            negatives: Vec::new(),
            user_pos_ranges: Vec::with_capacity(num_users),
            users_with_data: Vec::new(),
        }
    }

    /// Append one feature vector to the table, returning its index.
    pub fn push_feature_raw(&mut self, f: &[f64]) -> u32 {
        self.push_feature(f)
    }

    /// Append one positive event with its pre-extracted negatives
    /// (`(item, feature-index)` pairs). The negatives' feature indices must
    /// have been produced by [`Self::push_feature_raw`] on this set.
    pub fn push_positive_raw(
        &mut self,
        user: UserId,
        item: ItemId,
        t: usize,
        f_pos: u32,
        negs: &[(ItemId, u32)],
    ) {
        assert!(!negs.is_empty(), "a positive needs at least one negative");
        let neg_start = self.negatives.len() as u32;
        for &(neg_item, f_neg) in negs {
            self.negatives.push(Negative {
                item: neg_item,
                f_neg,
            });
        }
        self.positives.push(PositiveEvent {
            user,
            item,
            t,
            f_pos,
            neg_range: neg_start..self.negatives.len() as u32,
        });
    }

    /// Close user `user`'s positive range. Must be called once per user in
    /// ascending dense-id order, after all their positives are pushed.
    pub fn finish_user_raw(&mut self, user: UserId) {
        assert_eq!(
            self.user_pos_ranges.len(),
            user.index(),
            "finish_user_raw must be called in ascending user order"
        );
        let start = self
            .user_pos_ranges
            .last()
            .map(|r: &Range<u32>| r.end)
            .unwrap_or(0);
        let end = self.positives.len() as u32;
        self.user_pos_ranges.push(start..end);
        if end > start {
            self.users_with_data.push(user);
        }
    }

    fn push_feature(&mut self, f: &[f64]) -> u32 {
        debug_assert_eq!(f.len(), self.f_dim);
        let idx = (self.features.len() / self.f_dim) as u32;
        self.features.extend_from_slice(f);
        idx
    }

    /// Feature dimension `F`.
    pub fn f_dim(&self) -> usize {
        self.f_dim
    }

    /// Borrow feature vector `idx` from the table.
    #[inline]
    pub fn feature(&self, idx: u32) -> &[f64] {
        let start = idx as usize * self.f_dim;
        &self.features[start..start + self.f_dim]
    }

    /// All positive events.
    pub fn positives(&self) -> &[PositiveEvent] {
        &self.positives
    }

    /// The negatives of one positive event.
    pub fn negatives_of(&self, pos: &PositiveEvent) -> &[Negative] {
        &self.negatives[pos.neg_range.start as usize..pos.neg_range.end as usize]
    }

    /// Number of positive events.
    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// Total quadruple count `|D|` (= total negatives).
    pub fn num_quadruples(&self) -> usize {
        self.negatives.len()
    }

    /// True iff no quadruples were produced.
    pub fn is_empty(&self) -> bool {
        self.negatives.is_empty()
    }

    /// Users that contributed at least one quadruple.
    pub fn users_with_data(&self) -> &[UserId] {
        &self.users_with_data
    }

    /// One user's positive events.
    pub fn user_positives(&self, user: UserId) -> &[PositiveEvent] {
        let r = &self.user_pos_ranges[user.index()];
        &self.positives[r.start as usize..r.end as usize]
    }

    /// Materialise a quadruple from a positive and one of its negatives.
    pub fn quadruple<'a>(&'a self, pos: &'a PositiveEvent, neg: &Negative) -> Quadruple<'a> {
        Quadruple {
            user: pos.user,
            pos: pos.item,
            neg: neg.item,
            t: pos.t,
            f_pos: self.feature(pos.f_pos),
            f_neg: self.feature(neg.f_neg),
        }
    }

    /// Algorithm 1's three-stage uniform draw: user → one of their repeat
    /// consumptions → one of its negatives. Returns `None` only when the
    /// set is empty.
    pub fn sample<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<Quadruple<'a>> {
        if self.users_with_data.is_empty() {
            return None;
        }
        let user = self.users_with_data[rng.gen_range(0..self.users_with_data.len())];
        let positives = self.user_positives(user);
        let pos = &positives[rng.gen_range(0..positives.len())];
        let negs = self.negatives_of(pos);
        let neg = &negs[rng.gen_range(0..negs.len())];
        Some(self.quadruple(pos, neg))
    }

    /// Iterate every quadruple in deterministic order (used for exact
    /// objective evaluation in tests and reports).
    pub fn iter_quadruples(&self) -> impl Iterator<Item = Quadruple<'_>> {
        self.positives.iter().flat_map(move |p| {
            self.negatives_of(p)
                .iter()
                .map(move |n| self.quadruple(p, n))
        })
    }

    /// The paper's convergence-check batch: each user's first `frac` of
    /// quadruples (at least one per contributing user). `frac = 0.1`
    /// reproduces "each user's first 10% training quadruples".
    pub fn small_batch(&self, frac: f64) -> Vec<Quadruple<'_>> {
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
        let mut batch = Vec::new();
        for &user in &self.users_with_data {
            let positives = self.user_positives(user);
            let total: usize = positives.iter().map(|p| self.negatives_of(p).len()).sum();
            let want = ((total as f64 * frac).floor() as usize).max(1);
            let mut taken = 0;
            'outer: for p in positives {
                for n in self.negatives_of(p) {
                    batch.push(self.quadruple(p, n));
                    taken += 1;
                    if taken >= want {
                        break 'outer;
                    }
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    fn build_fixture(s: usize) -> TrainingSet {
        // User 0: "1 2 3 4 1" — the final 1 is an eligible repeat at Ω=2
        //         with candidates {2} (3, 4 are within Ω).
        // User 1: "5 6 7 8 9 5 6" — 5 and 6 return after gaps of 5 → two
        //         positives with richer candidate sets.
        let d = Dataset::new(
            vec![
                Sequence::from_raw(vec![1, 2, 3, 4, 1]),
                Sequence::from_raw(vec![5, 6, 7, 8, 9, 5, 6]),
            ],
            10,
        );
        let stats = TrainStats::compute(&d, 10);
        let pipeline = FeaturePipeline::standard();
        TrainingSet::build(
            &d,
            &stats,
            &pipeline,
            &SamplingConfig {
                window: 10,
                omega: 2,
                negatives_per_positive: s,
                seed: 1,
            },
        )
    }

    #[test]
    fn positives_identified_correctly() {
        let set = build_fixture(10);
        assert_eq!(set.num_positives(), 3);
        let items: Vec<u32> = set.positives().iter().map(|p| p.item.0).collect();
        assert_eq!(items, vec![1, 5, 6]);
        let ts: Vec<usize> = set.positives().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![4, 5, 6]);
        assert_eq!(set.users_with_data(), &[UserId(0), UserId(1)]);
    }

    #[test]
    fn negatives_come_from_eligible_candidates() {
        let set = build_fixture(10);
        // Positive (u0, item 1, t 4): eligible candidates at t=4 with Ω=2
        // are items seen at steps <= 1: {1, 2}; minus the positive → {2}.
        let p0 = &set.positives()[0];
        let negs = set.negatives_of(p0);
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0].item, ItemId(2));
        // Positive (u1, item 5, t 5): candidates = items at steps <= 2 =
        // {5, 6, 7} minus 5 → {6, 7}.
        let p1 = &set.positives()[1];
        let mut n1: Vec<u32> = set.negatives_of(p1).iter().map(|n| n.item.0).collect();
        n1.sort_unstable();
        assert_eq!(n1, vec![6, 7]);
    }

    #[test]
    fn s_caps_negative_count() {
        let set = build_fixture(1);
        for p in set.positives() {
            assert_eq!(set.negatives_of(p).len(), 1);
        }
        assert_eq!(set.num_quadruples(), 3);
    }

    #[test]
    fn negatives_are_distinct_within_positive() {
        let set = build_fixture(10);
        for p in set.positives() {
            let mut items: Vec<ItemId> = set.negatives_of(p).iter().map(|n| n.item).collect();
            let before = items.len();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), before, "duplicate negative sampled");
            assert!(!items.contains(&p.item), "positive sampled as negative");
        }
    }

    #[test]
    fn features_have_pipeline_dimension() {
        let set = build_fixture(10);
        assert_eq!(set.f_dim(), 4);
        for q in set.iter_quadruples() {
            assert_eq!(q.f_pos.len(), 4);
            assert_eq!(q.f_neg.len(), 4);
            assert!(q.f_pos.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn positive_features_reflect_event_time() {
        let set = build_fixture(10);
        // Positive (u0, item 1, t 4): last seen at step 0, so the
        // hyperbolic recency (index 2) is 1/4.
        let p0 = &set.positives()[0];
        let f = set.feature(p0.f_pos);
        assert!((f[2] - 0.25).abs() < 1e-12, "recency = {}", f[2]);
        // Familiarity (index 3): one occurrence in a 4-event window.
        assert!((f[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_returns_valid_quadruples() {
        let set = build_fixture(10);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let q = set.sample(&mut rng).unwrap();
            assert_ne!(q.pos, q.neg);
            assert!(set
                .user_positives(q.user)
                .iter()
                .any(|p| p.item == q.pos && p.t == q.t));
        }
    }

    #[test]
    fn empty_training_data_yields_empty_set() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2])], 3);
        let stats = TrainStats::compute(&d, 10);
        let set = TrainingSet::build(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig {
                window: 10,
                omega: 2,
                negatives_per_positive: 5,
                seed: 0,
            },
        );
        assert!(set.is_empty());
        assert!(set.sample(&mut StdRng::seed_from_u64(0)).is_none());
        assert!(set.small_batch(0.1).is_empty());
    }

    #[test]
    fn small_batch_takes_first_fraction_per_user() {
        let set = build_fixture(10);
        let batch = set.small_batch(0.1);
        // Every contributing user appears at least once.
        let users: std::collections::HashSet<UserId> = batch.iter().map(|q| q.user).collect();
        assert_eq!(users.len(), 2);
        // At 10% of tiny counts, exactly one per user.
        assert_eq!(batch.len(), 2);
        // frac = 1.0 returns everything.
        assert_eq!(set.small_batch(1.0).len(), set.num_quadruples());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build_fixture(2);
        let b = build_fixture(2);
        let qa: Vec<(u32, u32)> = a.iter_quadruples().map(|q| (q.pos.0, q.neg.0)).collect();
        let qb: Vec<(u32, u32)> = b.iter_quadruples().map(|q| (q.pos.0, q.neg.0)).collect();
        assert_eq!(qa, qb);
    }

    #[test]
    #[should_panic(expected = "omega must satisfy")]
    fn omega_ge_window_rejected() {
        let d = Dataset::new(vec![Sequence::from_raw(vec![0])], 1);
        let stats = TrainStats::compute(&d, 5);
        let _ = TrainingSet::build(
            &d,
            &stats,
            &FeaturePipeline::standard(),
            &SamplingConfig {
                window: 5,
                omega: 5,
                negatives_per_positive: 1,
                seed: 0,
            },
        );
    }
}
