//! Static per-item statistics computed once over the training split.

use rrc_sequence::{Dataset, ItemId, WindowState};

/// Training-set statistics backing the static features and several
/// baselines:
///
/// * `frequency[v]` — `n_v`, the number of training consumptions of `v`;
/// * `quality[v]` — `q̄_v`, min–max-normalised `ln(1 + n_v)` (Eqs. 16–17);
/// * `recon_ratio[v]` — `r_v`, the fraction of `v`'s training observations
///   that were repeats w.r.t. the window (Eq. 18).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    window_capacity: usize,
    frequency: Vec<u64>,
    quality: Vec<f64>,
    recon_ratio: Vec<f64>,
    total_events: u64,
}

impl TrainStats {
    /// Compute statistics from a training dataset. `window_capacity` is the
    /// `|W|` used to decide which observations count as repeats in Eq. 18.
    pub fn compute(train: &Dataset, window_capacity: usize) -> Self {
        let n = train.num_items();
        let mut frequency = vec![0u64; n];
        let mut repeats = vec![0u64; n];
        let mut total_events = 0u64;

        for (_, seq) in train.iter() {
            let mut window = WindowState::new(window_capacity);
            for &item in seq.events() {
                frequency[item.index()] += 1;
                if window.contains(item) {
                    repeats[item.index()] += 1;
                }
                window.push(item);
                total_events += 1;
            }
        }

        // Eq. 16: q_v = ln(1 + n_v); Eq. 17: min-max normalise over items
        // observed in training. Unobserved items keep quality 0.
        let mut quality: Vec<f64> = frequency.iter().map(|&f| (1.0 + f as f64).ln()).collect();
        rrc_linalg_min_max(&mut quality);

        let recon_ratio = frequency
            .iter()
            .zip(repeats.iter())
            .map(|(&f, &r)| if f == 0 { 0.0 } else { r as f64 / f as f64 })
            .collect();

        TrainStats {
            window_capacity,
            frequency,
            quality,
            recon_ratio,
            total_events,
        }
    }

    /// The `|W|` these statistics were computed with.
    pub fn window_capacity(&self) -> usize {
        self.window_capacity
    }

    /// Number of items in the id space.
    pub fn num_items(&self) -> usize {
        self.frequency.len()
    }

    /// Total training events.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Raw training frequency `n_v`.
    #[inline]
    pub fn frequency(&self, item: ItemId) -> u64 {
        self.frequency[item.index()]
    }

    /// Normalised item quality `q̄_v ∈ [0, 1]` (Eqs. 16–17).
    #[inline]
    pub fn quality(&self, item: ItemId) -> f64 {
        self.quality[item.index()]
    }

    /// Unnormalised popularity score `ln(1 + n_v)` — the **Pop** baseline's
    /// ranking key.
    #[inline]
    pub fn log_popularity(&self, item: ItemId) -> f64 {
        (1.0 + self.frequency[item.index()] as f64).ln()
    }

    /// Item reconsumption ratio `r_v ∈ [0, 1]` (Eq. 18).
    #[inline]
    pub fn recon_ratio(&self, item: ItemId) -> f64 {
        self.recon_ratio[item.index()]
    }
}

/// Local min–max normalisation (kept here so this crate does not depend on
/// `rrc-linalg`; the semantics match `rrc_linalg::min_max_normalize`).
fn rrc_linalg_min_max(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = max - min;
    if range <= 0.0 {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    values.iter_mut().for_each(|v| *v = (*v - min) / range);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrc_sequence::Sequence;

    fn dataset() -> Dataset {
        Dataset::new(
            vec![
                // user 0: 0 is consumed 3x (2 repeats with W=5), 1 once.
                Sequence::from_raw(vec![0, 1, 0, 0]),
                // user 1: 2 twice (1 repeat), 0 once more.
                Sequence::from_raw(vec![2, 2, 0]),
            ],
            4,
        )
    }

    #[test]
    fn frequency_counts() {
        let s = TrainStats::compute(&dataset(), 5);
        assert_eq!(s.frequency(ItemId(0)), 4);
        assert_eq!(s.frequency(ItemId(1)), 1);
        assert_eq!(s.frequency(ItemId(2)), 2);
        assert_eq!(s.frequency(ItemId(3)), 0);
        assert_eq!(s.total_events(), 7);
        assert_eq!(s.num_items(), 4);
    }

    #[test]
    fn quality_is_normalised_and_monotone_in_frequency() {
        let s = TrainStats::compute(&dataset(), 5);
        assert_eq!(s.quality(ItemId(0)), 1.0); // most frequent
        assert_eq!(s.quality(ItemId(3)), 0.0); // unobserved
        assert!(s.quality(ItemId(2)) > s.quality(ItemId(1)));
        assert!(s.quality(ItemId(2)) < s.quality(ItemId(0)));
    }

    #[test]
    fn recon_ratio_matches_hand_count() {
        let s = TrainStats::compute(&dataset(), 5);
        // item 0: 4 observations; repeats at u0:t2, u0:t3 → 2/4.
        assert!((s.recon_ratio(ItemId(0)) - 0.5).abs() < 1e-12);
        // item 1: single observation, never repeated.
        assert_eq!(s.recon_ratio(ItemId(1)), 0.0);
        // item 2: 2 observations, 1 repeat.
        assert!((s.recon_ratio(ItemId(2)) - 0.5).abs() < 1e-12);
        // unobserved item.
        assert_eq!(s.recon_ratio(ItemId(3)), 0.0);
    }

    #[test]
    fn recon_ratio_respects_window_capacity() {
        // 0 . . 0 with window 2: the second 0 is out of the window → not a
        // repeat under W=2, but a repeat under W=5.
        let d = Dataset::new(vec![Sequence::from_raw(vec![0, 1, 2, 0])], 3);
        let narrow = TrainStats::compute(&d, 2);
        let wide = TrainStats::compute(&d, 5);
        assert_eq!(narrow.recon_ratio(ItemId(0)), 0.0);
        assert_eq!(wide.recon_ratio(ItemId(0)), 0.5);
    }

    #[test]
    fn log_popularity_unnormalised() {
        let s = TrainStats::compute(&dataset(), 5);
        assert!((s.log_popularity(ItemId(0)) - (5.0f64).ln()).abs() < 1e-12);
        assert!((s.log_popularity(ItemId(3)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_frequencies_normalise_to_zero() {
        let d = Dataset::new(
            vec![Sequence::from_raw(vec![0]), Sequence::from_raw(vec![1])],
            2,
        );
        let s = TrainStats::compute(&d, 5);
        assert_eq!(s.quality(ItemId(0)), 0.0);
        assert_eq!(s.quality(ItemId(1)), 0.0);
    }
}
